package ctrlplane

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
)

// Role is a replica's current consensus role.
type Role uint8

const (
	Follower Role = iota
	Candidate
	Leader
)

// String names the role.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// ErrNotLeader is returned by Propose on a replica that does not hold
// the lease (or lost it while the proposal was in flight).
var ErrNotLeader = errors.New("ctrlplane: not the leaseholder")

// Config tunes one control-plane replica.
type Config struct {
	// Self is this replica's advertised address — its identity in votes
	// and leader announcements. Must appear in Peers.
	Self string
	// Peers is the full replica set, including Self.
	Peers []string
	// LeaseTTL is the leader lease: the leader acts only while a quorum
	// answered its heartbeat round within this window, and followers
	// refuse votes while they heard a leader within it. Default 1s.
	LeaseTTL time.Duration
	// HeartbeatEvery paces leader rounds (default LeaseTTL/4).
	HeartbeatEvery time.Duration
	// RPCTimeout bounds one peer exchange (default LeaseTTL/2).
	RPCTimeout time.Duration
	// CompactKeep is the log length that triggers compaction: once more
	// than this many entries sit in the log, everything committed is
	// folded into the snapshot state (default 128).
	CompactKeep int
	// CleanupAfter enables autopilot: a peer silent for this long is
	// removed from the replica set via a committed config entry, one at
	// a time, never below 2 replicas (0 = off).
	CleanupAfter time.Duration
	// OnLead fires (from a dedicated notifier goroutine, in order with
	// OnDepose) once the replica holds the lease AND its term-opening
	// entry committed — the point at which the committed state is fully
	// known and a coordinator may act on it.
	OnLead func(term uint64)
	// OnDepose fires when an activated leader steps down.
	OnDepose func()
	// Journal receives election/lease/commit transitions (nil-safe).
	Journal *obs.Journal
	// Reg optionally receives the replica's gauges (ctrl_term, ctrl_role,
	// ctrl_commit_index, ctrl_last_index, ctrl_map_version, per-peer
	// ctrl_peer_match and ctrl_leader_is).
	Reg *obs.Registry
	// Logf receives decisions (nil = silent).
	Logf func(format string, args ...any)
	// Dialer is the replica dial seam (nil: net.DialTimeout).
	Dialer dialFunc
	// Listener, when set, serves in place of listening on Self (tests
	// bind :0 first to learn the address).
	Listener net.Listener
}

func (c *Config) fill() error {
	if c.Self == "" {
		return fmt.Errorf("ctrlplane: Self address required")
	}
	found := false
	for _, p := range c.Peers {
		if p == c.Self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("ctrlplane: Self %q not in Peers %v", c.Self, c.Peers)
	}
	if c.LeaseTTL < 0 || c.HeartbeatEvery < 0 || c.RPCTimeout < 0 || c.CleanupAfter < 0 {
		return fmt.Errorf("ctrlplane: negative durations in config")
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = c.LeaseTTL / 4
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = c.LeaseTTL / 2
	}
	if c.CompactKeep <= 0 {
		c.CompactKeep = 128
	}
	return nil
}

// PeerStatus is one peer's replication view from the leader.
type PeerStatus struct {
	Addr  string `json:"addr"`
	Match uint64 `json:"match"`
	Next  uint64 `json:"next"`
}

// NodeStatus is a point-in-time snapshot for CLI/metrics.
type NodeStatus struct {
	Self        string       `json:"self"`
	Role        Role         `json:"-"`
	RoleName    string       `json:"role"`
	Term        uint64       `json:"term"`
	Leader      string       `json:"leader,omitempty"`
	CommitIndex uint64       `json:"commit_index"`
	LastIndex   uint64       `json:"last_index"`
	SnapBase    uint64       `json:"snap_base"`
	LeaseValid  bool         `json:"lease_valid"`
	MapVersion  uint32       `json:"map_version"`
	Peers       []PeerStatus `json:"peers,omitempty"`
}

// Node is one control-plane replica: log, state machine, elections and
// (as leader) the replication/heartbeat pump. All state is in-memory —
// see the package comment for the restart model.
type Node struct {
	cfg Config

	mu       sync.Mutex
	role     Role
	term     uint64
	votedFor string
	leader   string    // last known leader (its Self address)
	heard    time.Time // last valid append/snapshot from that leader

	log       raftLog
	state     *State // applied through lastApplied
	snapState *State // state at log.base (what snapshots ship)

	commitIndex uint64
	lastApplied uint64
	commitCh    chan struct{} // closed+remade on commit/role changes

	// leader-only replication state
	next     map[string]uint64
	match    map[string]uint64
	peerSeen map[string]time.Time
	lease    time.Time
	hasLease bool   // first quorum round of this term done
	leadIdx  uint64 // index of this term's noop entry
	// activated gates OnLead: lease held AND leadIdx committed.
	activated bool
	// pendingConfig is an uncommitted autopilot removal's index (0 none).
	pendingConfig uint64

	electionAt time.Time // follower/candidate: when to start an election
	// voteOKAt is the end of the restart vote quarantine: state is
	// in-memory, so a replica that restarts mid-election has forgotten any
	// vote it cast this term; refusing all votes for the first LeaseTTL
	// after boot keeps it from granting a second vote in the same term
	// (which could elect two leaders in one term and silently break the
	// log-matching invariant). The first self-campaign is already gated by
	// electionAt >= boot + LeaseTTL, so quarantine covers self-votes too.
	voteOKAt time.Time

	notifyCond *sync.Cond
	notifyDirt bool
	stopping   bool

	ln       net.Listener
	stop     chan struct{}
	stopOnce sync.Once
	kick     chan struct{}
	wg       sync.WaitGroup
	rnd      *rand.Rand
}

// seedSeq decorrelates election jitter between replicas created within
// the same clock tick (tests start all three in one instant). The
// counter is spread across all 64 bits with a splitmix-style odd
// multiplier before mixing: math/rand reduces the seed mod 2^31-1, so a
// plain "counter<<32" collapses to "counter*2" and replicas end up with
// near-identical jitter streams — their election timers then fire
// within the vote RPC's flight time and two survivors split the vote
// round after round (draws advance in lockstep, so one close pair of
// streams keeps colliding).
var seedSeq atomic.Uint64

const seedMix = 0x9E3779B97F4A7C15 // 2^64 / golden ratio, odd

// NewNode builds a replica (not yet started).
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:      cfg,
		state:    NewState(cfg.Peers),
		commitCh: make(chan struct{}),
		next:     map[string]uint64{},
		match:    map[string]uint64{},
		peerSeen: map[string]time.Time{},
		stop:     make(chan struct{}),
		kick:     make(chan struct{}, 1),
		rnd:      rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(seedSeq.Add(1)*seedMix))),
	}
	n.snapState = n.state.Clone()
	n.notifyCond = sync.NewCond(&n.mu)
	n.voteOKAt = time.Now().Add(cfg.LeaseTTL)
	n.resetElectionLocked()
	if cfg.Reg != nil {
		n.registerMetrics(cfg.Reg)
	}
	return n, nil
}

// Start binds the listener and launches the serve/tick/notify loops.
func (n *Node) Start() error {
	ln := n.cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", n.cfg.Self)
		if err != nil {
			return err
		}
	}
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(3)
	go n.serve(ln)
	go n.run()
	go n.notifier()
	return nil
}

// Stop shuts the replica down: steps down if leading (firing OnDepose),
// closes the listener and waits for every loop.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.mu.Lock()
	n.stopping = true
	if n.role != Follower {
		n.becomeFollowerLocked(n.term, "")
	}
	ln := n.ln
	n.notifyCond.Broadcast()
	n.wakeCommitLocked()
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	n.wg.Wait()
}

// Addr returns the listen address (resolved; differs from Self when a
// :0 Listener was injected).
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln != nil {
		return n.ln.Addr().String()
	}
	return n.cfg.Self
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Status snapshots the replica for CLI and tests.
func (n *Node) Status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := NodeStatus{
		Self:        n.cfg.Self,
		Role:        n.role,
		RoleName:    n.role.String(),
		Term:        n.term,
		Leader:      n.leader,
		CommitIndex: n.commitIndex,
		LastIndex:   n.log.lastIndex(),
		SnapBase:    n.log.base,
		LeaseValid:  n.leaseValidLocked(),
		MapVersion:  n.state.MapVersion(),
	}
	if n.role == Leader {
		for _, p := range n.peersLocked() {
			if p == n.cfg.Self {
				continue
			}
			st.Peers = append(st.Peers, PeerStatus{Addr: p, Match: n.match[p], Next: n.next[p]})
		}
		sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Addr < st.Peers[j].Addr })
	}
	return st
}

// IsLeader reports whether the replica currently holds a valid lease.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaseValidLocked()
}

// StateSnapshot returns a copy of the applied state (leadership
// activation reads the committed map and in-flight move from here).
func (n *Node) StateSnapshot() *State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state.Clone()
}

// peersLocked is the committed replica set (autopilot may have shrunk
// it below the configured one).
func (n *Node) peersLocked() []string { return n.state.Peers }

func (n *Node) quorumLocked() int { return len(n.peersLocked())/2 + 1 }

func (n *Node) leaseValidLocked() bool {
	return n.role == Leader && n.hasLease && time.Now().Before(n.lease)
}

// resetElectionLocked schedules the next election attempt at a
// randomized point in [LeaseTTL, 2*LeaseTTL): never before a live
// leader's lease could still be valid (the vote-refusal window), and
// spread so replicas rarely collide.
func (n *Node) resetElectionLocked() {
	ttl := n.cfg.LeaseTTL
	n.electionAt = time.Now().Add(ttl + time.Duration(n.rnd.Int63n(int64(ttl))))
}

func (n *Node) wakeCommitLocked() {
	close(n.commitCh)
	n.commitCh = make(chan struct{})
}

func (n *Node) markNotifyLocked() {
	n.notifyDirt = true
	n.notifyCond.Broadcast()
}

// becomeFollowerLocked steps down to follower at term t (adopting it if
// newer), recording the deposition if we were an activated leader.
func (n *Node) becomeFollowerLocked(t uint64, leader string) {
	wasLeader := n.role == Leader
	if t > n.term {
		n.term = t
		n.votedFor = ""
	}
	n.role = Follower
	n.leader = leader
	n.hasLease = false
	if wasLeader {
		n.cfg.Journal.Record(obs.EvCtrlDepose, n.cfg.Self, -1,
			"stepped down at term %d (leader now %q)", n.term, leader)
		n.logf("ctrlplane: %s deposed at term %d", n.cfg.Self, n.term)
	}
	if n.activated {
		n.activated = false
		n.markNotifyLocked()
	}
	n.resetElectionLocked()
	n.wakeCommitLocked()
}

// run is the tick loop: followers watch the election deadline, leaders
// pump heartbeat/replication rounds. Followers wake at their exact
// (randomized) election deadline rather than polling it on a coarse
// ticker: replicas start their tickers near-simultaneously, so a shared
// HeartbeatEvery grid quantizes campaign starts into the same buckets
// and two survivors of a leader kill split the vote round after round —
// the jitter only helps if it is honored precisely.
func (n *Node) run() {
	defer n.wg.Done()
	t := time.NewTimer(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		case <-n.kick:
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
		}
		n.mu.Lock()
		role := n.role
		due := time.Now().After(n.electionAt)
		n.mu.Unlock()
		switch {
		case role == Leader:
			n.leaderRound()
		case due:
			n.runElection()
		}
		n.mu.Lock()
		next := n.cfg.HeartbeatEvery
		if n.role != Leader {
			// Sleep to the deadline; a heartbeat moving it later just
			// means one early wake-up and a re-arm.
			if d := time.Until(n.electionAt); d > 0 {
				next = d
			} else {
				next = time.Millisecond
			}
		}
		n.mu.Unlock()
		t.Reset(next)
	}
}

// runElection campaigns for the next term: one parallel vote round.
func (n *Node) runElection() {
	n.mu.Lock()
	if n.stopping {
		n.mu.Unlock()
		return
	}
	n.role = Candidate
	n.term++
	term := n.term
	n.votedFor = n.cfg.Self
	n.leader = ""
	n.hasLease = false
	n.resetElectionLocked()
	req := voteReq{
		Term:      term,
		Candidate: n.cfg.Self,
		LastIndex: n.log.lastIndex(),
		LastTerm:  n.log.lastTerm(),
	}
	peers := append([]string(nil), n.peersLocked()...)
	n.mu.Unlock()

	payload := req.marshal()
	type res struct {
		peer string
		resp *voteResp
	}
	ch := make(chan res, len(peers))
	sent := 0
	for _, p := range peers {
		if p == n.cfg.Self {
			continue
		}
		sent++
		go func(p string) {
			raw, err := ctrlRequest(n.cfg.Dialer, p, n.cfg.RPCTimeout, protocol.OpCtrlVote, payload)
			if err != nil {
				ch <- res{p, nil}
				return
			}
			v, err := parseVoteResp(raw)
			if err != nil {
				v = nil
			}
			ch <- res{p, v}
		}(p)
	}
	granted := 1 // self
	maxTerm := term
	now := time.Now()
	seen := map[string]bool{}
	for i := 0; i < sent; i++ {
		r := <-ch
		if r.resp == nil {
			continue
		}
		if r.resp.Term > maxTerm {
			maxTerm = r.resp.Term
		}
		if r.resp.Granted {
			granted++
		}
		seen[r.peer] = true
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.term != term || n.role != Candidate {
		return // something moved on while we campaigned
	}
	if maxTerm > term {
		n.becomeFollowerLocked(maxTerm, "")
		return
	}
	for p := range seen {
		n.peerSeen[p] = now
	}
	if granted >= n.quorumLocked() {
		n.becomeLeaderLocked()
		return
	}
	n.role = Follower
	n.resetElectionLocked()
}

// becomeLeaderLocked initializes leader state and appends the
// term-opening noop entry. The votes themselves were a quorum contact,
// so the first lease window starts now.
func (n *Node) becomeLeaderLocked() {
	n.role = Leader
	n.leader = n.cfg.Self
	n.hasLease = true
	n.lease = time.Now().Add(n.cfg.LeaseTTL)
	n.activated = false
	n.pendingConfig = 0
	now := time.Now()
	for _, p := range n.peersLocked() {
		if p == n.cfg.Self {
			continue
		}
		n.next[p] = n.log.lastIndex() + 1
		n.match[p] = 0
		n.peerSeen[p] = now
	}
	n.log.append(Entry{
		Index:  n.log.lastIndex() + 1,
		Term:   n.term,
		Kind:   EntryNoop,
		Shard:  -1,
		Detail: "term opened",
	})
	n.leadIdx = n.log.lastIndex()
	n.cfg.Journal.Record(obs.EvCtrlElect, n.cfg.Self, -1,
		"won election at term %d (log %d)", n.term, n.leadIdx)
	n.cfg.Journal.Record(obs.EvCtrlLease, n.cfg.Self, -1,
		"vote quorum granted the first lease at term %d (ttl %v)", n.term, n.cfg.LeaseTTL)
	n.logf("ctrlplane: %s elected leader at term %d", n.cfg.Self, n.term)
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// leaderRound runs one heartbeat/replication round: per-peer
// AppendEntries (or InstallSnapshot when the peer is behind the
// compaction base) in parallel, then lease renewal, commit advancement
// and autopilot under the lock.
func (n *Node) leaderRound() {
	type job struct {
		peer string
		op   protocol.Opcode
		pay  []byte
		sent int // entries shipped (append) for match accounting
		prev uint64
		base uint64 // snapshot index (snapshot jobs)
	}
	n.mu.Lock()
	if n.role != Leader {
		n.mu.Unlock()
		return
	}
	term := n.term
	t0 := time.Now()
	var jobs []job
	for _, p := range n.peersLocked() {
		if p == n.cfg.Self {
			continue
		}
		ni := n.next[p]
		if ni == 0 {
			ni = n.log.lastIndex() + 1
			n.next[p] = ni
		}
		if ni <= n.log.base {
			sr := snapReq{
				Term:      term,
				Leader:    n.cfg.Self,
				SnapIndex: n.log.base,
				SnapTerm:  n.log.baseTerm,
				State:     marshalState(n.snapState),
			}
			jobs = append(jobs, job{peer: p, op: protocol.OpCtrlSnapshot,
				pay: sr.marshal(), base: n.log.base})
			continue
		}
		prev := ni - 1
		prevTerm, _ := n.log.termAt(prev)
		ents := n.log.slice(ni, 64)
		ar := appendReq{
			Term:      term,
			Leader:    n.cfg.Self,
			PrevIndex: prev,
			PrevTerm:  prevTerm,
			Commit:    n.commitIndex,
			Entries:   ents,
		}
		jobs = append(jobs, job{peer: p, op: protocol.OpCtrlAppend,
			pay: ar.marshal(), sent: len(ents), prev: prev})
	}
	n.mu.Unlock()

	type res struct {
		job
		app  *appendResp
		snap *snapResp
	}
	ch := make(chan res, len(jobs))
	for _, j := range jobs {
		go func(j job) {
			raw, err := ctrlRequest(n.cfg.Dialer, j.peer, n.cfg.RPCTimeout, j.op, j.pay)
			r := res{job: j}
			if err == nil {
				if j.op == protocol.OpCtrlAppend {
					r.app, _ = parseAppendResp(raw)
				} else {
					r.snap, _ = parseSnapResp(raw)
				}
			}
			ch <- r
		}(j)
	}
	results := make([]res, 0, len(jobs))
	for range jobs {
		results = append(results, <-ch)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.term != term || n.role != Leader {
		return
	}
	acks := 1 // self
	now := time.Now()
	for _, r := range results {
		switch {
		case r.app != nil:
			if r.app.Term > n.term {
				n.becomeFollowerLocked(r.app.Term, "")
				return
			}
			acks++
			n.peerSeen[r.peer] = now
			if r.app.OK {
				m := r.prev + uint64(r.sent)
				if m > n.match[r.peer] {
					n.match[r.peer] = m
				}
				n.next[r.peer] = n.match[r.peer] + 1
			} else if r.app.Match > 0 {
				// Log mismatch: back off toward the follower's hint.
				ni := r.app.Match
				if ni > r.prev {
					ni = r.prev
				}
				if ni < 1 {
					ni = 1
				}
				n.next[r.peer] = ni
			}
		case r.snap != nil:
			if r.snap.Term > n.term {
				n.becomeFollowerLocked(r.snap.Term, "")
				return
			}
			acks++
			n.peerSeen[r.peer] = now
			if r.snap.OK {
				if r.base > n.match[r.peer] {
					n.match[r.peer] = r.base
				}
				n.next[r.peer] = r.base + 1
				n.cfg.Journal.Record(obs.EvCtrlSnapshot, n.cfg.Self, -1,
					"snapshot @%d shipped to %s", r.base, r.peer)
			}
		}
	}

	if acks >= n.quorumLocked() {
		wasLease := n.hasLease && now.Before(n.lease)
		n.lease = t0.Add(n.cfg.LeaseTTL)
		if !n.hasLease || !wasLease {
			n.hasLease = true
			n.cfg.Journal.Record(obs.EvCtrlLease, n.cfg.Self, -1,
				"quorum lease acquired at term %d (ttl %v)", n.term, n.cfg.LeaseTTL)
		}
		n.advanceCommitLocked()
		n.autopilotLocked(now)
	} else if !time.Now().Before(n.lease) {
		// Lost quorum past the lease: stop acting as leader. Commits
		// stop failing-fast only once a successor's term reaches us, but
		// the lease expiry already fences installs (edits refuse).
		n.becomeFollowerLocked(n.term, "")
	}
}

// advanceCommitLocked moves commitIndex to the quorum-replicated index,
// respecting the current-term rule, and applies.
func (n *Node) advanceCommitLocked() {
	matches := []uint64{n.log.lastIndex()}
	for _, p := range n.peersLocked() {
		if p == n.cfg.Self {
			continue
		}
		matches = append(matches, n.match[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	q := n.quorumLocked()
	if q > len(matches) {
		return
	}
	cand := matches[q-1]
	if cand <= n.commitIndex {
		return
	}
	// Only entries of the current term commit by counting (Raft §5.4.2);
	// earlier-term entries commit transitively.
	if t, ok := n.log.termAt(cand); !ok || t != n.term {
		return
	}
	n.commitIndex = cand
	n.applyLocked()
}

// applyLocked applies every committed-but-unapplied entry, journals the
// transitions, wakes Propose waiters, gates activation and compacts.
func (n *Node) applyLocked() {
	for n.lastApplied < n.commitIndex {
		i := n.lastApplied + 1
		e := n.log.at(i)
		if e == nil {
			// Compacted past (snapshot install raced): state already
			// covers it.
			n.lastApplied = i
			continue
		}
		n.state.Apply(e)
		n.lastApplied = i
		if e.Kind == EntryConfig {
			n.applyConfigLocked(e)
		}
		if e.Kind != EntryNoop {
			n.cfg.Journal.Record(obs.EvCtrlCommit, n.cfg.Self, int(e.Shard),
				"applied %s @%d term %d (map v%d) %s", e.Kind, e.Index, e.Term,
				n.state.MapVersion(), e.Detail)
		}
	}
	if n.role == Leader && n.hasLease && !n.activated && n.commitIndex >= n.leadIdx {
		n.activated = true
		n.markNotifyLocked()
	}
	n.wakeCommitLocked()
	n.maybeCompactLocked()
}

// applyConfigLocked reacts to a committed replica-set change.
func (n *Node) applyConfigLocked(e *Entry) {
	if e.Src != "remove" {
		return
	}
	delete(n.next, e.Dest)
	delete(n.match, e.Dest)
	delete(n.peerSeen, e.Dest)
	if n.pendingConfig != 0 && e.Index >= n.pendingConfig {
		n.pendingConfig = 0
	}
	n.logf("ctrlplane: %s: peer %s removed (replica set now %v)",
		n.cfg.Self, e.Dest, n.peersLocked())
	if e.Dest == n.cfg.Self && n.role != Follower {
		// We were removed: stop participating.
		n.becomeFollowerLocked(n.term, n.leader)
	}
}

// maybeCompactLocked folds the committed log into the snapshot state
// once it outgrows CompactKeep. Snapshots are taken at the commit index
// — any follower further behind gets the (tiny) full state instead of
// entries.
func (n *Node) maybeCompactLocked() {
	if len(n.log.entries) <= n.cfg.CompactKeep || n.commitIndex <= n.log.base {
		return
	}
	t, ok := n.log.termAt(n.commitIndex)
	if !ok {
		return
	}
	n.snapState = n.state.Clone()
	n.log.compactTo(n.commitIndex, t)
}

// autopilotLocked removes one silent peer from the replica set (leader
// only, one in-flight removal at a time, never below 2 replicas).
func (n *Node) autopilotLocked(now time.Time) {
	if n.cfg.CleanupAfter <= 0 || n.pendingConfig != 0 {
		return
	}
	peers := n.peersLocked()
	if len(peers) <= 2 {
		return
	}
	for _, p := range peers {
		if p == n.cfg.Self {
			continue
		}
		seen, ok := n.peerSeen[p]
		if !ok || now.Sub(seen) < n.cfg.CleanupAfter {
			continue
		}
		e := Entry{
			Index:  n.log.lastIndex() + 1,
			Term:   n.term,
			Kind:   EntryConfig,
			Shard:  -1,
			Src:    "remove",
			Dest:   p,
			Detail: fmt.Sprintf("autopilot: silent for %v", now.Sub(seen).Round(time.Millisecond)),
		}
		n.log.append(e)
		n.pendingConfig = e.Index
		n.cfg.Journal.Record(obs.EvCtrlPeerDead, n.cfg.Self, -1,
			"autopilot removing silent peer %s (term %d, log %d)", p, n.term, e.Index)
		n.logf("ctrlplane: %s: autopilot removing silent peer %s", n.cfg.Self, p)
		return // one at a time
	}
}

// Propose appends e (Kind/Shard/Src/Dest/Map/Detail set by the caller)
// to the replicated log and blocks until it commits at this term,
// returning its index. ErrNotLeader when the replica does not hold the
// lease, or loses it (or the entry) before commit.
func (n *Node) Propose(e Entry) (uint64, error) { return n.propose(0, e) }

// ProposeAt is Propose fenced to one leadership term: it refuses when
// the replica's term moved past the caller's. A coordinator deposed and
// re-elected on the same replica gets a fresh term — its predecessor's
// in-flight commits must not slip into the new incarnation's log.
func (n *Node) ProposeAt(term uint64, e Entry) (uint64, error) { return n.propose(term, e) }

func (n *Node) propose(atTerm uint64, e Entry) (uint64, error) {
	n.mu.Lock()
	if !n.leaseValidLocked() || (atTerm != 0 && n.term != atTerm) {
		n.mu.Unlock()
		return 0, ErrNotLeader
	}
	term := n.term
	e.Term = term
	e.Index = n.log.lastIndex() + 1
	n.log.append(e)
	idx := e.Index
	n.mu.Unlock()
	select {
	case n.kick <- struct{}{}:
	default:
	}

	deadline := time.Now().Add(3 * n.cfg.LeaseTTL)
	for {
		n.mu.Lock()
		if n.term != term || n.role != Leader {
			n.mu.Unlock()
			return 0, ErrNotLeader
		}
		if n.commitIndex >= idx {
			n.mu.Unlock()
			return idx, nil
		}
		ch := n.commitCh
		n.mu.Unlock()
		left := time.Until(deadline)
		if left <= 0 {
			// The entry sits in our log and may STILL commit at this term
			// later (e.g. a slow decrement backoff to a diverged follower
			// outlasting the deadline). Reporting a definite failure here
			// would let the caller keep editing from the pre-commit state
			// and re-mint the same map version with different contents —
			// version-compared installs would then diverge permanently. The
			// outcome is unknown, so stop being leader: the coordinator is
			// deposed with us, and a successor (possibly this replica at a
			// later term) resyncs from whatever actually committed.
			n.mu.Lock()
			if n.term == term && n.role == Leader {
				if n.commitIndex >= idx {
					n.mu.Unlock()
					return idx, nil
				}
				n.logf("ctrlplane: %s: commit of log %d timed out at term %d; outcome unknown, stepping down",
					n.cfg.Self, idx, term)
				n.becomeFollowerLocked(n.term, "")
			}
			n.mu.Unlock()
			return 0, fmt.Errorf("ctrlplane: commit of log %d timed out: %w", idx, ErrNotLeader)
		}
		t := time.NewTimer(left)
		select {
		case <-ch:
		case <-t.C:
		case <-n.stop:
			t.Stop()
			return 0, ErrNotLeader
		}
		t.Stop()
	}
}

// notifier serializes OnLead/OnDepose callbacks: it watches the
// (activated, term) pair and fires transitions in order from one
// goroutine, so a coordinator is always deposed before its successor
// activates. Rapid flip-flops compress to their net effect.
func (n *Node) notifier() {
	defer n.wg.Done()
	var ledTerm uint64 // 0 = not currently led
	for {
		n.mu.Lock()
		for !n.notifyDirt && !n.stopping {
			n.notifyCond.Wait()
		}
		if n.stopping && !n.notifyDirt {
			n.mu.Unlock()
			if ledTerm != 0 && n.cfg.OnDepose != nil {
				n.cfg.OnDepose()
			}
			return
		}
		n.notifyDirt = false
		active := n.activated
		term := n.term
		n.mu.Unlock()

		if ledTerm != 0 && (!active || term != ledTerm) {
			if n.cfg.OnDepose != nil {
				n.cfg.OnDepose()
			}
			ledTerm = 0
		}
		if active && ledTerm == 0 {
			ledTerm = term
			if n.cfg.OnLead != nil {
				n.cfg.OnLead(term)
			}
		}
	}
}

// serve accepts replica connections; each handles one or more framed
// control exchanges.
func (n *Node) serve(ln net.Listener) {
	defer n.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleConn(c)
		}()
	}
}

func (n *Node) handleConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	var msg protocol.Message
	var out []byte
	for {
		c.SetReadDeadline(time.Now().Add(30 * time.Second))
		if err := protocol.ReadMessageInto(br, &msg, nil); err != nil {
			return
		}
		var payload []byte
		status := protocol.StatusOK
		switch msg.Header.Opcode {
		case protocol.OpCtrlVote:
			payload = n.handleVote(msg.Payload)
		case protocol.OpCtrlAppend:
			payload = n.handleAppend(msg.Payload)
		case protocol.OpCtrlSnapshot:
			payload = n.handleSnapshot(msg.Payload)
		default:
			status = protocol.StatusBadRequest
		}
		if payload == nil && status == protocol.StatusOK {
			status = protocol.StatusBadRequest
		}
		hdr := protocol.Header{
			Opcode: msg.Header.Opcode,
			Flags:  protocol.FlagResponse,
			Cookie: msg.Header.Cookie,
			Status: status,
		}
		var err error
		out, err = protocol.AppendMessage(out[:0], &hdr, payload)
		if err != nil {
			return
		}
		c.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if _, err := c.Write(out); err != nil {
			return
		}
	}
}

// handleVote grants a vote iff the candidate's term is current, its log
// is at least as up to date, we have not voted for someone else this
// term, we are past the restart vote quarantine, AND we have not heard
// from a live leader within LeaseTTL — the lease-stickiness rule that
// makes the lease a real mutual-exclusion window rather than a hint.
func (n *Node) handleVote(p []byte) []byte {
	req, err := parseVoteReq(p)
	if err != nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// Stickiness must be judged BEFORE adopting a higher term:
	// becomeFollowerLocked clears n.leader, and candidates always campaign
	// at term+1, so a check after the adoption would never fire — granting
	// votes while a live leader's lease is still valid and breaking the
	// lease's mutual-exclusion window.
	heardRecently := n.leader != "" && n.leader != req.Candidate &&
		time.Since(n.heard) < n.cfg.LeaseTTL
	if req.Term > n.term {
		n.becomeFollowerLocked(req.Term, "")
	}
	resp := voteResp{Term: n.term}
	switch {
	case req.Term < n.term:
	case heardRecently:
		// A live leader's lease may still be valid: refuse (the term was
		// still adopted above, so our log/term bookkeeping stays current).
	case time.Now().Before(n.voteOKAt):
		// Restart quarantine: an in-memory replica that rejoined may have
		// voted in this very term before it crashed; refusing all votes for
		// the first LeaseTTL keeps it from double-voting in an election it
		// no longer remembers (see the package comment's restart model).
	case n.votedFor != "" && n.votedFor != req.Candidate:
	case req.LastTerm < n.log.lastTerm(),
		req.LastTerm == n.log.lastTerm() && req.LastIndex < n.log.lastIndex():
		// Candidate's log is behind ours.
	default:
		n.votedFor = req.Candidate
		resp.Granted = true
		n.resetElectionLocked() // granting defers our own campaign
	}
	return resp.marshal()
}

// handleAppend is the follower half of replication: term checks, the
// log-consistency probe, conflict truncation, append and commit.
func (n *Node) handleAppend(p []byte) []byte {
	req, err := parseAppendReq(p)
	if err != nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := appendResp{Term: n.term}
	if req.Term < n.term {
		return resp.marshal()
	}
	if req.Term > n.term || n.role != Follower || n.leader != req.Leader {
		n.becomeFollowerLocked(req.Term, req.Leader)
	}
	n.leader = req.Leader
	n.heard = time.Now()
	n.resetElectionLocked()
	resp.Term = n.term

	prevIndex, prevTerm, entries := req.PrevIndex, req.PrevTerm, req.Entries
	if prevIndex < n.log.base {
		// The leader's window overlaps our snapshot: entries at or below
		// base are committed here already, skip them.
		for len(entries) > 0 && entries[0].Index <= n.log.base {
			entries = entries[1:]
		}
		prevIndex = n.log.base
		prevTerm = n.log.baseTerm
	}
	if t, ok := n.log.termAt(prevIndex); !ok || t != prevTerm {
		// Mismatch: hint our log end for faster leader backoff.
		resp.Match = n.log.lastIndex() + 1
		return resp.marshal()
	}
	for _, e := range entries {
		if t, ok := n.log.termAt(e.Index); ok && t != e.Term {
			n.log.truncateFrom(e.Index)
			if n.commitIndex > n.log.lastIndex() {
				n.commitIndex = n.log.lastIndex()
			}
		}
		if e.Index == n.log.lastIndex()+1 {
			n.log.append(e)
		}
	}
	resp.OK = true
	resp.Match = prevIndex + uint64(len(entries))
	if req.Commit > n.commitIndex {
		ci := req.Commit
		if li := n.log.lastIndex(); ci > li {
			ci = li
		}
		if ci > n.commitIndex {
			n.commitIndex = ci
			n.applyLocked()
		}
	}
	return resp.marshal()
}

// handleSnapshot installs the leader's state snapshot when it is ahead
// of everything we hold (the late-joiner catch-up path).
func (n *Node) handleSnapshot(p []byte) []byte {
	req, err := parseSnapReq(p)
	if err != nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := snapResp{Term: n.term}
	if req.Term < n.term {
		return resp.marshal()
	}
	if req.Term > n.term || n.role != Follower || n.leader != req.Leader {
		n.becomeFollowerLocked(req.Term, req.Leader)
	}
	n.leader = req.Leader
	n.heard = time.Now()
	n.resetElectionLocked()
	resp.Term = n.term
	if req.SnapIndex <= n.commitIndex {
		resp.OK = true // already have it (or better)
		return resp.marshal()
	}
	st, err := parseState(req.State)
	if err != nil {
		return resp.marshal()
	}
	n.state = st
	n.snapState = st.Clone()
	n.log.reset(req.SnapIndex, req.SnapTerm)
	n.commitIndex = req.SnapIndex
	n.lastApplied = req.SnapIndex
	n.wakeCommitLocked()
	n.cfg.Journal.Record(obs.EvCtrlSnapshot, n.cfg.Self, -1,
		"installed snapshot @%d term %d from %s (map v%d, %d peers)",
		req.SnapIndex, req.SnapTerm, req.Leader, st.MapVersion(), len(st.Peers))
	resp.OK = true
	return resp.marshal()
}

// registerMetrics exposes the replica's consensus position: the /cluster
// aggregation (obs.Fleet) folds these into the control-plane health view.
func (n *Node) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("ctrl_term", "control-plane replica's current term",
		func() float64 { n.mu.Lock(); defer n.mu.Unlock(); return float64(n.term) })
	reg.GaugeFunc("ctrl_role", "control-plane role (0 follower, 1 candidate, 2 leader)",
		func() float64 { n.mu.Lock(); defer n.mu.Unlock(); return float64(n.role) })
	reg.GaugeFunc("ctrl_lease_valid", "1 while this replica holds the quorum lease",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.leaseValidLocked() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("ctrl_commit_index", "highest quorum-committed log index",
		func() float64 { n.mu.Lock(); defer n.mu.Unlock(); return float64(n.commitIndex) })
	reg.GaugeFunc("ctrl_last_index", "highest appended log index",
		func() float64 { n.mu.Lock(); defer n.mu.Unlock(); return float64(n.log.lastIndex()) })
	reg.GaugeFunc("ctrl_map_version", "committed shard-map version in the replicated state",
		func() float64 { n.mu.Lock(); defer n.mu.Unlock(); return float64(n.state.MapVersion()) })
	for _, p := range n.cfg.Peers {
		peer := p
		reg.GaugeFunc("ctrl_leader_is", "1 when this replica believes the labeled peer leads",
			func() float64 {
				n.mu.Lock()
				defer n.mu.Unlock()
				if n.leader == peer {
					return 1
				}
				return 0
			}, obs.L("peer", peer))
		if p == n.cfg.Self {
			continue
		}
		reg.GaugeFunc("ctrl_peer_match", "highest log index known replicated on the labeled peer (leader view)",
			func() float64 {
				n.mu.Lock()
				defer n.mu.Unlock()
				if n.role != Leader {
					return 0
				}
				return float64(n.match[peer])
			}, obs.L("peer", peer))
	}
}
