package ctrlplane

import "encoding/binary"

// MoveState is the replicated record of an in-flight MoveShard: enough
// for a follower that wins the lease to resume or roll back the move.
type MoveState struct {
	Shard     int32
	Src, Dest string
	// Phase is how far the move's commits got: MovePhasePrepare (window
	// committed) or MovePhaseCutover (destination authoritative).
	Phase uint8
}

// Move phases (mirrors shard.MovePhase values).
const (
	MovePhasePrepare uint8 = 1
	MovePhaseCutover uint8 = 2
)

// State is the replicated state machine: the latest committed shard
// map, the in-flight move (nil when none) and the replica set. It is
// deliberately tiny — snapshots ship it whole in one frame.
type State struct {
	// MapRaw is the latest committed shard map, marshaled (shard.Map
	// wire format; its first 4 bytes are the version). Nil before the
	// first seed commit.
	MapRaw []byte
	// Move is the in-flight MoveShard record (nil when none).
	Move *MoveState
	// Peers is the committed replica set (autopilot edits it).
	Peers []string
}

// NewState builds the genesis state over the configured peer set.
func NewState(peers []string) *State {
	return &State{Peers: append([]string(nil), peers...)}
}

// Clone deep-copies the state (compaction snapshots).
func (s *State) Clone() *State {
	c := &State{
		MapRaw: append([]byte(nil), s.MapRaw...),
		Peers:  append([]string(nil), s.Peers...),
	}
	if s.Move != nil {
		mv := *s.Move
		c.Move = &mv
	}
	return c
}

// MapVersion returns the committed map's version (0 when none). The
// shard map wire format leads with its u32 version, so no full
// unmarshal is needed.
func (s *State) MapVersion() uint32 {
	if len(s.MapRaw) < 4 {
		return 0
	}
	return binary.BigEndian.Uint32(s.MapRaw)
}

// Apply advances the state machine by one committed entry. Map adoption
// is iff-newer — the same fencing rule the data-plane servers enforce —
// so replaying a log with interleaved stale entries (possible across
// leader changes) converges to the newest committed map.
func (s *State) Apply(e *Entry) {
	if len(e.Map) >= 4 {
		if v := binary.BigEndian.Uint32(e.Map); v > s.MapVersion() {
			s.MapRaw = append([]byte(nil), e.Map...)
		}
	}
	switch e.Kind {
	case EntryMovePrepare:
		s.Move = &MoveState{Shard: e.Shard, Src: e.Src, Dest: e.Dest, Phase: MovePhasePrepare}
	case EntryMoveCutover:
		s.Move = &MoveState{Shard: e.Shard, Src: e.Src, Dest: e.Dest, Phase: MovePhaseCutover}
	case EntryMoveDone, EntryMoveRollback:
		s.Move = nil
	case EntryConfig:
		if e.Src == "remove" {
			peers := s.Peers[:0:0]
			for _, p := range s.Peers {
				if p != e.Dest {
					peers = append(peers, p)
				}
			}
			s.Peers = peers
		}
	}
}

// marshalState packs the state for an OpCtrlSnapshot frame.
func marshalState(s *State) []byte {
	b := appendBytes(nil, s.MapRaw)
	if s.Move != nil {
		b = appendU8(b, 1)
		b = appendU32(b, uint32(s.Move.Shard))
		b = appendU8(b, s.Move.Phase)
		b = appendStr(b, s.Move.Src)
		b = appendStr(b, s.Move.Dest)
	} else {
		b = appendU8(b, 0)
	}
	b = appendU16(b, uint16(len(s.Peers)))
	for _, p := range s.Peers {
		b = appendStr(b, p)
	}
	return b
}

// parseState unpacks an OpCtrlSnapshot frame's state.
func parseState(p []byte) (*State, error) {
	r := wireReader{b: p}
	s := &State{MapRaw: r.bytes()}
	if r.u8() != 0 {
		s.Move = &MoveState{Shard: int32(r.u32()), Phase: r.u8(), Src: r.str(), Dest: r.str()}
	}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		s.Peers = append(s.Peers, r.str())
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}
