// Chaos soak for the replicated control plane: kill the leader replica
// mid-MoveShard with live acked writers on the moving shard, and require
// the successor to finish (or roll back) the move with zero lost acked
// writes and no installed map version ever regressing. External test
// package — it drives real servers through internal/server.
package ctrlplane_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrlplane"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/shard"
	"github.com/reflex-go/reflex/internal/storage"
)

func soakServer(t *testing.T, name string) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		Addr:    "127.0.0.1:0",
		Threads: 2,
		Model: core.CostModel{
			ReadCost:         core.TokenUnit,
			ReadOnlyReadCost: core.TokenUnit / 2,
			WriteCost:        10 * core.TokenUnit,
		},
		TokenRate: 1_000_000 * core.TokenUnit,
		NodeName:  name,
	}, storage.NewMem(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func soakBlock(lba uint32, seq uint64) []byte {
	b := make([]byte, 512)
	binary.BigEndian.PutUint32(b, lba)
	binary.BigEndian.PutUint64(b[4:], seq)
	for i := 12; i < len(b); i++ {
		b[i] = byte(lba + uint32(seq) + uint32(i))
	}
	return b
}

// journalOrder returns the first position of each kind in the journal
// (-1 when absent).
func journalOrder(j *obs.Journal, kinds ...obs.EventKind) []int {
	events := j.Recent(2048)
	out := make([]int, len(kinds))
	for i := range out {
		out[i] = -1
	}
	for pos, e := range events {
		for i, k := range kinds {
			if out[i] == -1 && e.Kind == k {
				out[i] = pos
			}
		}
	}
	return out
}

func TestCtrlplaneLeaderKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	const (
		numShards   = 4
		shardBlocks = 1024
		leaseTTL    = 300 * time.Millisecond
	)

	// Data plane: three solo servers.
	srvs := make([]*server.Server, 3)
	dataNodes := make([]shard.Node, 3)
	for i := range srvs {
		name := fmt.Sprintf("node%d", i)
		srvs[i] = soakServer(t, name)
		dataNodes[i] = shard.Node{Name: name, Addrs: []string{srvs[i].Addr()}}
	}

	// Control plane: three replicas, addresses bound before any starts.
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	reps := make([]*ctrlplane.Replica, 3)
	journals := make([]*obs.Journal, 3)
	for i := range reps {
		journals[i] = obs.NewJournal(2048)
		rep, err := ctrlplane.NewReplica(ctrlplane.ReplicaConfig{
			Ctrl: ctrlplane.Config{
				Self:     addrs[i],
				Peers:    addrs,
				LeaseTTL: leaseTTL,
				Journal:  journals[i],
				Listener: lns[i],
				Logf:     t.Logf,
			},
			Coord: shard.CoordinatorConfig{
				Nodes:          dataNodes,
				NumShards:      numShards,
				ShardBlocks:    shardBlocks,
				InstallTimeout: 2 * time.Second,
				Logf:           t.Logf,
			},
			AntiEntropyEvery: 500 * time.Millisecond,
			MoveTimeout:      30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Stop)
		reps[i] = rep
	}

	waitRep := func(what string, timeout time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	leaderIdx := -1
	waitRep("initial leader + seeded map", 10*time.Second, func() bool {
		for i, r := range reps {
			if r.Coordinator() != nil && r.Node().IsLeader() {
				leaderIdx = i
				return true
			}
		}
		return false
	})
	leader := reps[leaderIdx]
	waitRep("seed map installed on the data plane", 10*time.Second, func() bool {
		for _, s := range srvs {
			if s.ShardMapVersion() == 0 {
				return false
			}
		}
		return true
	})

	// Per-server version monotonicity poller: no installed version may
	// ever regress, whatever the two leaderships install.
	versionStop := make(chan struct{})
	versionDone := make(chan string, 1)
	go func() {
		last := make([]uint32, len(srvs))
		for {
			select {
			case <-versionStop:
				versionDone <- ""
				return
			default:
			}
			for i, s := range srvs {
				v := s.ShardMapVersion()
				if v < last[i] {
					versionDone <- fmt.Sprintf("server %d regressed v%d -> v%d", i, last[i], v)
					return
				}
				last[i] = v
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Pick a shard owned by node0 and start ledgered writers on it.
	m := leader.Coordinator().Map()
	moveShard := -1
	for s := 0; s < numShards; s++ {
		if m.Nodes[m.Assign[s]].Name == "node0" {
			moveShard = s
			break
		}
	}
	if moveShard < 0 {
		t.Skip("node0 owns nothing (improbable)")
	}
	base := uint32(moveShard) * shardBlocks

	router, err := shard.NewRouter(shard.RouterConfig{
		Seeds: []string{srvs[0].Addr(), srvs[1].Addr(), srvs[2].Addr()},
		Reg:   protocol.Registration{BestEffort: true, Writable: true},
		Opts:  client.Options{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	var (
		mu       sync.Mutex
		ledger   = map[uint32]uint64{}
		stop     = make(chan struct{})
		writerWG sync.WaitGroup
	)
	for w := 0; w < 2; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			seq := uint64(w) << 32
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				lba := base + uint32(seq%97) + uint32(w)*101
				if err := router.Write(lba, soakBlock(lba, seq)); err != nil {
					t.Errorf("writer %d seq %d: %v", w, seq, err)
					return
				}
				mu.Lock()
				ledger[lba] = seq
				mu.Unlock()
			}
		}(w)
	}
	// Latency-critical probe: the data plane must stay available through
	// the control-plane failover (reads never depend on the leader).
	probeLBA := base + 7
	if err := router.Write(probeLBA, soakBlock(probeLBA, 1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	ledger[probeLBA] = 1
	mu.Unlock()
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := router.Read(probeLBA, 512); err != nil {
				t.Errorf("LC probe read: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Launch the move, then kill the leader as soon as the dual-ownership
	// window is committed and journaled.
	moveErr := make(chan error, 1)
	go func() { moveErr <- leader.MoveShard(moveShard, "node1", 30*time.Second) }()
	waitRep("dual-ownership window", 10*time.Second, func() bool {
		for _, e := range journals[leaderIdx].Recent(2048) {
			if e.Kind == obs.EvMovePrepare {
				return true
			}
		}
		return false
	})
	killedAt := time.Now()
	leader.Stop()
	if err := <-moveErr; err == nil {
		t.Log("move finished before the kill landed (narrow window); still validating ledger")
	} else {
		t.Logf("killed leader's move returned: %v", err)
	}

	// A successor takes over and resolves the move from the replicated
	// log: either it completes at node1 or the window is rolled back.
	var succIdx int
	waitRep("successor leader", 10*time.Second, func() bool {
		for i, r := range reps {
			if i != leaderIdx && r.Node().IsLeader() && r.Coordinator() != nil {
				succIdx = i
				return true
			}
		}
		return false
	})
	succ := reps[succIdx]
	t.Logf("failover to replica %d in %v (lease %v)", succIdx, time.Since(killedAt), leaseTTL)
	waitRep("move resolution", 30*time.Second, func() bool {
		st := succ.Node().StateSnapshot()
		if st.Move != nil {
			return false
		}
		c := succ.Coordinator()
		if c == nil {
			return false
		}
		return c.Map().Migrating[moveShard] == shard.Unassigned
	})
	finalMap := succ.Coordinator().Map()
	owner := finalMap.Nodes[finalMap.Assign[moveShard]].Name
	t.Logf("move resolved: shard %d owned by %s (map v%d)", moveShard, owner, finalMap.Version)

	// Let the writers run on the resolved map, then stop everything.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	writerWG.Wait()
	close(versionStop)
	if msg := <-versionDone; msg != "" {
		t.Fatalf("shard_map_version regressed: %s", msg)
	}

	// Journal-order assertion on the successor: elect -> lease ->
	// (move-resume -> move-done) | move-abort, strictly in that order.
	ord := journalOrder(journals[succIdx],
		obs.EvCtrlElect, obs.EvCtrlLease, obs.EvMoveResume, obs.EvMoveDone, obs.EvMoveAbort)
	elect, lease, resume, doneEv, abort := ord[0], ord[1], ord[2], ord[3], ord[4]
	if elect < 0 || lease < 0 || lease < elect {
		t.Fatalf("successor journal missing elect->lease order: elect=%d lease=%d", elect, lease)
	}
	if resume >= 0 {
		if resume < lease {
			t.Fatalf("move resumed before the lease: resume=%d lease=%d", resume, lease)
		}
		if doneEv < 0 && abort < 0 {
			t.Fatal("resumed move neither completed nor aborted in the journal")
		}
		if doneEv >= 0 && doneEv < resume {
			t.Fatalf("move-done before move-resume: done=%d resume=%d", doneEv, resume)
		}
	}

	// Zero lost acked writes: every ledgered write reads back, through a
	// fresh router with no warm state.
	mu.Lock()
	defer mu.Unlock()
	if len(ledger) == 0 {
		t.Fatal("writers acked nothing")
	}
	r2, err := shard.NewRouter(shard.RouterConfig{
		Seeds: []string{srvs[0].Addr(), srvs[1].Addr(), srvs[2].Addr()},
		Reg:   protocol.Registration{BestEffort: true},
		Opts:  client.Options{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r2.Close() })
	for lba, seq := range ledger {
		got, err := r2.Read(lba, 512)
		if err != nil {
			t.Fatalf("ledger read lba %d: %v", lba, err)
		}
		if !bytes.Equal(got, soakBlock(lba, seq)) {
			t.Fatalf("lba %d: acked seq %d lost across the leader kill", lba, seq)
		}
	}
	t.Logf("soak clean: %d ledgered LBAs verified, shard %d at %s", len(ledger), moveShard, owner)
}
