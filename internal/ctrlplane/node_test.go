package ctrlplane

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/obs"
)

// partition is a shared dial seam: cutting an address fails every dial
// to it AND every dial initiated by the node that owns it.
type partition struct {
	mu  sync.Mutex
	cut map[string]bool
}

func newPartition() *partition { return &partition{cut: map[string]bool{}} }

func (p *partition) isCut(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut[addr]
}

func (p *partition) set(addr string, cut bool) {
	p.mu.Lock()
	p.cut[addr] = cut
	p.mu.Unlock()
}

// dialer returns self's dial function through the partition.
func (p *partition) dialer(self string) dialFunc {
	return func(addr string) (net.Conn, error) {
		if p.isCut(self) || p.isCut(addr) {
			return nil, fmt.Errorf("partition: %s -/-> %s", self, addr)
		}
		return net.DialTimeout("tcp", addr, time.Second)
	}
}

// testCluster starts n replicas on loopback :0 listeners (bound first so
// every peer address is known before any node starts).
func testCluster(t *testing.T, n int, tweak func(i int, c *Config)) []*Node {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		cfg := Config{
			Self:     addrs[i],
			Peers:    addrs,
			LeaseTTL: 250 * time.Millisecond,
			Journal:  obs.NewJournal(512),
			Listener: lns[i],
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		nd, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		nodes[i] = nd
	}
	return nodes
}

// waitLeader blocks until some replica holds a valid lease.
func waitLeader(t *testing.T, nodes []*Node, timeout time.Duration) *Node {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			if n != nil && n.IsLeader() {
				return n
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no leader emerged")
	return nil
}

func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// rawMap fakes a marshaled shard map: only the leading u32 version is
// interpreted by the control plane.
func rawMap(v uint32) []byte { return appendU32(nil, v) }

func hasEvent(j *obs.Journal, kind obs.EventKind) bool {
	for _, e := range j.Recent(512) {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                      // no self
		{Self: "a:1"},                           // self not in peers
		{Self: "a:1", Peers: []string{"b:1"}},   // ditto
		{Self: "a:1", Peers: []string{"a:1"}, LeaseTTL: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewNode(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	ok := Config{Self: "a:1", Peers: []string{"a:1", "b:1", "c:1"}}
	n, err := NewNode(ok)
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.LeaseTTL != time.Second || n.cfg.HeartbeatEvery != 250*time.Millisecond ||
		n.cfg.RPCTimeout != 500*time.Millisecond || n.cfg.CompactKeep != 128 {
		t.Fatalf("defaults not filled: %+v", n.cfg)
	}
}

func TestElectionLeaseAndFailover(t *testing.T) {
	nodes := testCluster(t, 3, nil)
	ld := waitLeader(t, nodes, 5*time.Second)
	st := ld.Status()
	if st.Role != Leader || !st.LeaseValid {
		t.Fatalf("leader status inconsistent: %+v", st)
	}
	if !hasEvent(ld.cfg.Journal, obs.EvCtrlElect) || !hasEvent(ld.cfg.Journal, obs.EvCtrlLease) {
		t.Fatal("election/lease transitions not journaled")
	}
	term1 := st.Term

	// Kill the leader: a successor takes over at a higher term, within a
	// few lease windows.
	killedAt := time.Now()
	ld.Stop()
	rest := make([]*Node, 0, 2)
	for _, n := range nodes {
		if n != ld {
			rest = append(rest, n)
		}
	}
	ld2 := waitLeader(t, rest, 5*time.Second)
	outage := time.Since(killedAt)
	if got := ld2.Status().Term; got <= term1 {
		t.Fatalf("successor term %d not past %d", got, term1)
	}
	if hasEvent(ld.cfg.Journal, obs.EvCtrlDepose) == false {
		t.Fatal("stopped leader did not journal its deposition")
	}
	t.Logf("failover in %v (lease %v)", outage, 250*time.Millisecond)
}

func TestProposeReplicatesAndApplies(t *testing.T) {
	nodes := testCluster(t, 3, nil)
	ld := waitLeader(t, nodes, 5*time.Second)
	for v := uint32(1); v <= 5; v++ {
		e := Entry{Kind: EntrySeed, Shard: -1, Map: rawMap(v), Detail: fmt.Sprintf("v%d", v)}
		if _, err := ld.Propose(e); err != nil {
			t.Fatalf("propose v%d: %v", v, err)
		}
	}
	// Commit means quorum, not everyone; followers converge a round later.
	waitCond(t, 3*time.Second, "replicated state", func() bool {
		for _, n := range nodes {
			if n.StateSnapshot().MapVersion() != 5 {
				return false
			}
		}
		return true
	})
	if !hasEvent(ld.cfg.Journal, obs.EvCtrlCommit) {
		t.Fatal("commits not journaled")
	}
	// A proposal on a follower is refused outright.
	for _, n := range nodes {
		if n == ld {
			continue
		}
		if _, err := n.Propose(Entry{Kind: EntrySeed, Map: rawMap(9)}); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("follower propose = %v, want ErrNotLeader", err)
		}
	}
}

// TestDeposedLeaderCannotCommit is the fencing primitive: a leader cut
// from the quorum must fail its commits (and therefore never mint a map
// version), while the surviving majority elects a successor and moves
// on. After the partition heals, the deposed leader's uncommitted tail
// is truncated away.
func TestDeposedLeaderCannotCommit(t *testing.T) {
	p := newPartition()
	nodes := testCluster(t, 3, func(i int, c *Config) {
		c.Dialer = p.dialer(c.Self)
	})
	ld := waitLeader(t, nodes, 5*time.Second)
	if _, err := ld.Propose(Entry{Kind: EntrySeed, Shard: -1, Map: rawMap(1)}); err != nil {
		t.Fatal(err)
	}

	// Cut the leader off. Its next commit must fail with ErrNotLeader —
	// either refused up front (lease expired) or timed out un-replicated.
	p.set(ld.cfg.Self, true)
	var staleErr error
	waitCond(t, 5*time.Second, "stale leader refusing commits", func() bool {
		_, staleErr = ld.Propose(Entry{Kind: EntryState, Shard: -1, Map: rawMap(100), Detail: "stale"})
		return staleErr != nil
	})
	if !errors.Is(staleErr, ErrNotLeader) {
		t.Fatalf("stale commit error = %v, want ErrNotLeader", staleErr)
	}

	// The majority side elected a successor that commits normally.
	rest := make([]*Node, 0, 2)
	for _, n := range nodes {
		if n != ld {
			rest = append(rest, n)
		}
	}
	ld2 := waitLeader(t, rest, 5*time.Second)
	if _, err := ld2.Propose(Entry{Kind: EntryState, Shard: -1, Map: rawMap(2), Detail: "post-failover"}); err != nil {
		t.Fatalf("successor commit: %v", err)
	}

	// Heal: the deposed leader rejoins, truncates its stale tail and
	// converges on the successor's state — version 2, not 100.
	p.set(ld.cfg.Self, false)
	waitCond(t, 5*time.Second, "healed convergence", func() bool {
		for _, n := range nodes {
			if n.StateSnapshot().MapVersion() != 2 {
				return false
			}
		}
		return true
	})
}

func TestSnapshotCatchUp(t *testing.T) {
	var journals [3]*obs.Journal
	nodes := testCluster(t, 3, func(i int, c *Config) {
		c.CompactKeep = 4
		journals[i] = c.Journal
	})
	ld := waitLeader(t, nodes, 5*time.Second)

	// Take one follower down, then commit enough to compact its catch-up
	// range out of the log.
	var downIdx int
	for i, n := range nodes {
		if n != ld {
			downIdx = i
			break
		}
	}
	downAddr := nodes[downIdx].cfg.Self
	nodes[downIdx].Stop()
	for v := uint32(1); v <= 20; v++ {
		if _, err := ld.Propose(Entry{Kind: EntryState, Shard: -1, Map: rawMap(v)}); err != nil {
			t.Fatalf("propose v%d: %v", v, err)
		}
	}
	waitCond(t, 3*time.Second, "leader compaction", func() bool {
		return ld.Status().SnapBase > 0
	})

	// The replica returns on the same address, log empty: it must catch
	// up by snapshot install, not entry replay.
	j := obs.NewJournal(512)
	nd, err := NewNode(Config{
		Self:     downAddr,
		Peers:    append([]string(nil), ld.cfg.Peers...),
		LeaseTTL: 250 * time.Millisecond,
		Journal:  j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nd.Stop)
	nodes[downIdx] = nd

	waitCond(t, 5*time.Second, "snapshot catch-up", func() bool {
		return nd.StateSnapshot().MapVersion() == 20
	})
	if !hasEvent(j, obs.EvCtrlSnapshot) {
		t.Fatal("late joiner caught up without a journaled snapshot install")
	}
	if st := nd.Status(); st.SnapBase == 0 {
		t.Fatalf("late joiner's log not reset to the snapshot base: %+v", st)
	}
}

func TestAutopilotRemovesSilentPeer(t *testing.T) {
	nodes := testCluster(t, 3, func(i int, c *Config) {
		c.CleanupAfter = 600 * time.Millisecond
	})
	ld := waitLeader(t, nodes, 5*time.Second)
	var victim *Node
	for _, n := range nodes {
		if n != ld {
			victim = n
			break
		}
	}
	victim.Stop()
	waitCond(t, 5*time.Second, "autopilot removal", func() bool {
		return len(ld.StateSnapshot().Peers) == 2
	})
	for _, pr := range ld.StateSnapshot().Peers {
		if pr == victim.cfg.Self {
			t.Fatal("silent peer still in the committed replica set")
		}
	}
	if !hasEvent(ld.cfg.Journal, obs.EvCtrlPeerDead) {
		t.Fatal("autopilot removal not journaled")
	}
	// Floor: with 2 replicas left, killing another must NOT shrink to 1
	// (that would let a single replica "quorum" alone).
	var second *Node
	for _, n := range nodes {
		if n != ld && n != victim {
			second = n
		}
	}
	second.Stop()
	time.Sleep(1200 * time.Millisecond)
	if got := len(ld.StateSnapshot().Peers); got != 2 {
		t.Fatalf("replica set shrank to %d, floor is 2", got)
	}
}

// Vote stickiness must be judged BEFORE the higher term is adopted:
// becomeFollowerLocked clears the remembered leader, and candidates
// always campaign above the leader's term, so a post-adoption check
// never fires and the lease stops being a mutual-exclusion window.
// White-box: the node is never started; handleVote is driven directly.
func TestVoteStickinessJudgedBeforeTermAdoption(t *testing.T) {
	nd, err := NewNode(Config{
		Self:     "a:1",
		Peers:    []string{"a:1", "b:1", "c:1"},
		LeaseTTL: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	nd.mu.Lock()
	nd.voteOKAt = time.Now().Add(-time.Second) // past the restart quarantine
	nd.term = 1
	nd.leader = "b:1"
	nd.heard = time.Now() // leader heartbeat just arrived: lease may be live
	nd.mu.Unlock()

	req := voteReq{Term: 2, Candidate: "c:1"}
	resp, err := parseVoteResp(nd.handleVote(req.marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("vote granted while a live leader was heard within LeaseTTL")
	}
	if resp.Term != 2 {
		t.Fatalf("refusal at term %d, want the candidate's term 2 adopted", resp.Term)
	}
	nd.mu.Lock()
	if nd.term != 2 {
		nd.mu.Unlock()
		t.Fatalf("follower term %d after refusal, want 2", nd.term)
	}
	// Re-arm with the leader silent past the stickiness window: the same
	// candidate at the next term must now be granted.
	nd.leader = "b:1"
	nd.heard = time.Now().Add(-time.Second)
	nd.mu.Unlock()

	req = voteReq{Term: 3, Candidate: "c:1"}
	resp, err = parseVoteResp(nd.handleVote(req.marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Granted {
		t.Fatal("vote refused after the leader fell silent past LeaseTTL")
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.votedFor != "c:1" {
		t.Fatalf("votedFor = %q, want c:1", nd.votedFor)
	}
}

// A replica's vote state is in-memory: freshly (re)started, it may have
// voted in the current term before the crash, so it must refuse ALL
// votes for its first LeaseTTL (the restart quarantine) — otherwise one
// bounce during a contested election yields two grants in one term.
func TestRestartVoteQuarantine(t *testing.T) {
	nd, err := NewNode(Config{
		Self:     "a:1",
		Peers:    []string{"a:1", "b:1", "c:1"},
		LeaseTTL: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := voteReq{Term: 1, Candidate: "b:1"}
	resp, err := parseVoteResp(nd.handleVote(req.marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("freshly booted replica granted a vote inside its quarantine window")
	}
	nd.mu.Lock()
	if nd.votedFor != "" {
		nd.mu.Unlock()
		t.Fatalf("votedFor = %q during quarantine, want none recorded", nd.votedFor)
	}
	nd.voteOKAt = time.Now() // quarantine elapsed
	nd.mu.Unlock()

	resp, err = parseVoteResp(nd.handleVote(req.marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Granted {
		t.Fatal("vote refused after the quarantine window elapsed")
	}
}

// A Propose whose commit deadline expires has an UNKNOWN outcome — the
// entry may still commit at this term later. The leader must step down
// (deposing the coordinator with it) rather than let the caller keep
// editing from pre-commit state and re-mint a map version. White-box:
// an unstarted node is forced leader with a valid lease and unreachable
// peers, so the commit can never arrive.
func TestProposeTimeoutStepsDown(t *testing.T) {
	nd, err := NewNode(Config{
		Self:     "a:1",
		Peers:    []string{"a:1", "b:1", "c:1"},
		LeaseTTL: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	nd.mu.Lock()
	nd.role = Leader
	nd.term = 1
	nd.hasLease = true
	nd.lease = time.Now().Add(time.Hour) // lease stays valid throughout
	nd.mu.Unlock()

	_, err = nd.Propose(Entry{Kind: EntryState, Shard: -1, Map: rawMap(1), Detail: "doomed"})
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("timed-out propose error = %v, want ErrNotLeader", err)
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.role != Follower {
		t.Fatalf("role = %s after ambiguous commit timeout, want follower (stepped down)", nd.role)
	}
}
