package protocol

import (
	"bytes"
	"testing"
)

// TestTraceTrailerRoundtrip covers the trace-context trailer in every
// combination it rides the wire: alone, outside a checksum trailer, and
// as the entire payload of a traced read request.
func TestTraceTrailerRoundtrip(t *testing.T) {
	const trace, parent = uint64(0xDEADBEEFCAFE0001), uint64(0x42)
	data := []byte("twelve bytes")

	t.Run("traced write", func(t *testing.T) {
		payload := AppendTrace(append([]byte(nil), data...), trace, parent)
		hdr := Header{Opcode: OpWrite, Flags: FlagTraced, LBA: 8, Count: uint32(len(data))}
		frame, err := AppendMessage(nil, &hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
		var m Message
		if err := ReadMessageInto(bytes.NewReader(frame), &m, nil); err != nil {
			t.Fatal(err)
		}
		if m.TraceID != trace || m.ParentSpan != parent {
			t.Fatalf("trace context = %x/%x, want %x/%x", m.TraceID, m.ParentSpan, trace, parent)
		}
		if !bytes.Equal(m.Payload, data) {
			t.Fatalf("payload = %q, want %q (trailer not stripped)", m.Payload, data)
		}
		if m.Header.Len != uint32(len(data)) {
			t.Fatalf("Len = %d after strip, want %d", m.Header.Len, len(data))
		}
	})

	t.Run("traced+checksummed write", func(t *testing.T) {
		// Seal order: checksum first (covers data only), then trace.
		payload := AppendChecksum(append([]byte(nil), data...))
		payload = AppendTrace(payload, trace, parent)
		hdr := Header{Opcode: OpWrite, Flags: FlagTraced | FlagChecksum, LBA: 8, Count: uint32(len(data))}
		frame, err := AppendMessage(nil, &hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
		var m Message
		if err := ReadMessageInto(bytes.NewReader(frame), &m, nil); err != nil {
			t.Fatal(err)
		}
		if m.ChecksumErr {
			t.Fatal("checksum failed on an intact traced payload (strip order broken)")
		}
		if m.TraceID != trace || m.ParentSpan != parent {
			t.Fatalf("trace context = %x/%x, want %x/%x", m.TraceID, m.ParentSpan, trace, parent)
		}
		if !bytes.Equal(m.Payload, data) {
			t.Fatalf("payload = %q, want %q", m.Payload, data)
		}
	})

	t.Run("corruption under trace trailer still detected", func(t *testing.T) {
		payload := AppendChecksum(append([]byte(nil), data...))
		payload = AppendTrace(payload, trace, parent)
		hdr := Header{Opcode: OpWrite, Flags: FlagTraced | FlagChecksum, LBA: 8, Count: uint32(len(data))}
		frame, err := AppendMessage(nil, &hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
		frame[HeaderSize] ^= 0xFF // flip a data byte, not the trailers
		var m Message
		if err := ReadMessageInto(bytes.NewReader(frame), &m, nil); err != nil {
			t.Fatal(err)
		}
		if !m.ChecksumErr {
			t.Fatal("corrupted traced payload passed the checksum")
		}
		if m.TraceID != trace {
			t.Fatalf("trace id lost on corrupted payload: %x", m.TraceID)
		}
	})

	t.Run("traced read request", func(t *testing.T) {
		payload := AppendTrace(nil, trace, parent)
		hdr := Header{Opcode: OpRead, Flags: FlagTraced, LBA: 8, Count: 4096}
		frame, err := AppendMessage(nil, &hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
		var m Message
		if err := m.UnmarshalFrame(frame); err != nil {
			t.Fatal(err)
		}
		if m.TraceID != trace || m.ParentSpan != parent {
			t.Fatalf("trace context = %x/%x, want %x/%x", m.TraceID, m.ParentSpan, trace, parent)
		}
		if len(m.Payload) != 0 || m.Header.Len != 0 {
			t.Fatalf("traced read left %d payload bytes, want 0", len(m.Payload))
		}
	})

	t.Run("stale context cleared on reuse", func(t *testing.T) {
		payload := AppendTrace(nil, trace, parent)
		hdr := Header{Opcode: OpRead, Flags: FlagTraced, Count: 4096}
		traced, err := AppendMessage(nil, &hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := AppendMessage(nil, &Header{Opcode: OpRead, Count: 4096}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var m Message
		if err := m.UnmarshalFrame(traced); err != nil {
			t.Fatal(err)
		}
		if err := m.UnmarshalFrame(plain); err != nil {
			t.Fatal(err)
		}
		if m.TraceID != 0 || m.ParentSpan != 0 {
			t.Fatalf("reused Message kept stale trace context %x/%x", m.TraceID, m.ParentSpan)
		}
	})
}
