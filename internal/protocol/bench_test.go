package protocol

import (
	"bytes"
	"testing"

	"github.com/reflex-go/reflex/internal/bufpool"
)

// BenchmarkHeaderMarshal measures request-header encoding, once per wire
// message on the hot path.
func BenchmarkHeaderMarshal(b *testing.B) {
	h := Header{Opcode: OpRead, Handle: 7, Cookie: 42, LBA: 4096, Count: 4096}
	buf := make([]byte, HeaderSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MarshalTo(buf)
	}
}

// BenchmarkHeaderUnmarshal measures header decoding.
func BenchmarkHeaderUnmarshal(b *testing.B) {
	buf := (&Header{Opcode: OpWrite, Handle: 7, Cookie: 42, LBA: 4096, Count: 4096, Len: 4096}).Marshal()
	var h Header
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageRoundTrip measures framing a 4KB write and decoding it
// through the allocating convenience path (the pre-pooling shape, kept as
// the comparison point for BenchmarkProtocolRoundtrip).
func BenchmarkMessageRoundTrip(b *testing.B) {
	payload := make([]byte, 4096)
	b.SetBytes(int64(HeaderSize + len(payload)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Header{Opcode: OpWrite, LBA: 8, Count: 4096}, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// protocolRoundtrip frames one 4KB write into a reused arena via
// AppendMessage and decodes it via ReadMessageInto with a pooled payload
// buffer and a reused Message — the steady-state hot-path shape. It is
// shared by the benchmark and the zero-alloc guard test.
func protocolRoundtrip(b *bufpool.Buf, arena []byte, rd *bytes.Reader, m *Message, hdr *Header, payload []byte) ([]byte, error) {
	arena = arena[:0]
	arena, err := AppendMessage(arena, hdr, payload)
	if err != nil {
		return arena, err
	}
	rd.Reset(arena)
	alloc := func(n int) []byte { b.SetLen(n); return b.Bytes() }
	return arena, ReadMessageInto(rd, m, alloc)
}

// BenchmarkProtocolRoundtrip is the acceptance benchmark: one full
// frame-encode + frame-decode of a 4KB write with pooled buffers must run
// allocation-free at steady state (the CI bench-hotpath job fails on >0
// allocs/op; TestProtocolRoundtripZeroAlloc guards it deterministically).
func BenchmarkProtocolRoundtrip(b *testing.B) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	hdr := Header{Opcode: OpWrite, LBA: 8, Count: 4096}
	arena := make([]byte, 0, HeaderSize+len(payload))
	lease := bufpool.Get(4096)
	defer lease.Release()
	var rd bytes.Reader
	var m Message
	b.SetBytes(int64(HeaderSize + len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		arena, err = protocolRoundtrip(lease, arena, &rd, &m, &hdr, payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !bytes.Equal(m.Payload, payload) {
		b.Fatal("roundtrip corrupted payload")
	}
}

// TestProtocolRoundtripZeroAlloc pins the hot-path contract: after
// warm-up, the pooled protocol roundtrip performs zero heap allocations
// per operation. This is the deterministic form of the CI rule "fail on
// >0 allocs/op in the protocol roundtrip bench".
func TestProtocolRoundtripZeroAlloc(t *testing.T) {
	payload := make([]byte, 4096)
	hdr := Header{Opcode: OpWrite, LBA: 8, Count: 4096}
	arena := make([]byte, 0, HeaderSize+len(payload))
	lease := bufpool.Get(4096)
	defer lease.Release()
	var rd bytes.Reader
	var m Message
	run := func() {
		var err error
		arena, err = protocolRoundtrip(lease, arena, &rd, &m, &hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up (arena growth, pool priming)
	if allocs := testing.AllocsPerRun(200, run); allocs > 0 {
		t.Fatalf("protocol roundtrip allocates %.1f objects/op, want 0", allocs)
	}
	// Tracing off must add zero bytes to the wire: the frame is exactly
	// header + data, no trailer slack leaks into the encoding.
	if got, want := len(arena), HeaderSize+len(payload); got != want {
		t.Fatalf("untraced frame is %d bytes, want %d (FlagTraced off must add 0 bytes)", got, want)
	}
	if m.TraceID != 0 || m.ParentSpan != 0 {
		t.Fatalf("untraced roundtrip produced trace context %x/%x, want 0/0", m.TraceID, m.ParentSpan)
	}
}
