package protocol

import (
	"bytes"
	"testing"
)

// BenchmarkHeaderMarshal measures request-header encoding, once per wire
// message on the hot path.
func BenchmarkHeaderMarshal(b *testing.B) {
	h := Header{Opcode: OpRead, Handle: 7, Cookie: 42, LBA: 4096, Count: 4096}
	buf := make([]byte, HeaderSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MarshalTo(buf)
	}
}

// BenchmarkHeaderUnmarshal measures header decoding.
func BenchmarkHeaderUnmarshal(b *testing.B) {
	buf := (&Header{Opcode: OpWrite, Handle: 7, Cookie: 42, LBA: 4096, Count: 4096, Len: 4096}).Marshal()
	var h Header
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageRoundTrip measures framing a 4KB write and decoding it.
func BenchmarkMessageRoundTrip(b *testing.B) {
	payload := make([]byte, 4096)
	b.SetBytes(int64(HeaderSize + len(payload)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Header{Opcode: OpWrite, LBA: 8, Count: 4096}, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
