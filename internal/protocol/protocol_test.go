package protocol

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	in := Header{
		Opcode: OpWrite,
		Flags:  FlagResponse,
		Handle: 0xBEEF,
		Status: StatusDenied,
		Cookie: 0x0123456789ABCDEF,
		LBA:    0xCAFE0000,
		Count:  8192,
		Len:    4096,
	}
	var out Header
	if err := out.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if !out.IsResponse() {
		t.Fatal("FlagResponse lost")
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(op uint16, flags, handle, status uint16, cookie uint64, lba, count uint32, length uint32) bool {
		in := Header{
			Opcode: Opcode(op),
			Flags:  flags,
			Handle: handle,
			Status: Status(status),
			Cookie: cookie,
			LBA:    lba,
			Count:  count,
			Len:    length % (MaxPayload + 1),
		}
		var out Header
		if err := out.Unmarshal(in.Marshal()); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderBadMagic(t *testing.T) {
	b := (&Header{Opcode: OpRead}).Marshal()
	b[0] = 0x00
	var h Header
	if err := h.Unmarshal(b); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHeaderShort(t *testing.T) {
	var h Header
	if err := h.Unmarshal(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestHeaderOversizePayloadRejected(t *testing.T) {
	in := Header{Opcode: OpRead, Len: MaxPayload + 1}
	var out Header
	if err := out.Unmarshal(in.Marshal()); err == nil {
		t.Fatal("oversize Len accepted")
	}
}

func TestRegistrationRoundTrip(t *testing.T) {
	in := Registration{
		BestEffort:  false,
		ReadPercent: 80,
		Device:      3,
		IOPS:        125_000,
		LatencyP95:  500_000,
		FirstLBA:    4096,
		LBACount:    1 << 20,
		Writable:    true,
	}
	var out Registration
	if err := out.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestRegistrationRoundTripProperty(t *testing.T) {
	f := func(be bool, readPct, dev uint8, iops uint32, lat uint64, first uint32, count uint32, w bool) bool {
		in := Registration{
			BestEffort:  be,
			ReadPercent: readPct % 101,
			Device:      dev,
			IOPS:        iops,
			LatencyP95:  lat,
			FirstLBA:    first,
			LBACount:    count & 0xFFFFFF,
			Writable:    w,
		}
		var out Registration
		if err := out.Unmarshal(in.Marshal()); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationValidation(t *testing.T) {
	var r Registration
	if err := r.Unmarshal(make([]byte, 3)); err == nil {
		t.Fatal("short registration accepted")
	}
	bad := Registration{ReadPercent: 150}
	if err := r.Unmarshal(bad.Marshal()); err == nil {
		t.Fatal("read percent > 100 accepted")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	hdr := Header{Opcode: OpWrite, Handle: 3, Cookie: 99, LBA: 8}
	if err := WriteMessage(&buf, &hdr, payload); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Opcode != OpWrite || m.Header.Cookie != 99 || m.Header.LBA != 8 {
		t.Fatalf("header = %+v", m.Header)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestMessageNoPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Header{Opcode: OpRead, Len: 777}, nil); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Len != 0 || m.Payload != nil {
		t.Fatal("Len not forced to payload length")
	}
}

func TestMessageStreamOfSeveral(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, i*100)
		if err := WriteMessage(&buf, &Header{Opcode: OpWrite, Cookie: uint64(i)}, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if m.Header.Cookie != uint64(i) || len(m.Payload) != i*100 {
			t.Fatalf("message %d corrupted: %+v", i, m.Header)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestMessageTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Header{Opcode: OpWrite}, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:HeaderSize+50]
	if _, err := ReadMessage(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWriteMessageOversize(t *testing.T) {
	err := WriteMessage(io.Discard, &Header{Opcode: OpWrite}, make([]byte, MaxPayload+1))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversize write: %v", err)
	}
}

func TestStringers(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" ||
		OpRegister.String() != "register" || OpUnregister.String() != "unregister" {
		t.Fatal("opcode names")
	}
	if Opcode(200).String() == "" {
		t.Fatal("unknown opcode empty")
	}
	for s, want := range map[Status]string{
		StatusOK: "ok", StatusBadRequest: "bad-request", StatusNoTenant: "no-tenant",
		StatusDenied: "denied", StatusNoCapacity: "no-capacity", StatusError: "error",
	} {
		if s.String() != want {
			t.Fatalf("status %d = %q, want %q", s, s.String(), want)
		}
	}
	if Status(99).String() == "" {
		t.Fatal("unknown status empty")
	}
}

func TestTenantStatsRoundTrip(t *testing.T) {
	in := TenantStats{
		Enqueued:        100,
		Submitted:       90,
		SubmittedTokens: 123_456,
		NegLimitHits:    3,
		Donated:         777,
		Claimed:         888,
		QueueLen:        10,
		Tokens:          -50_000, // negative balances survive
	}
	var out TenantStats
	if err := out.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if err := out.Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short stats accepted")
	}
}

func TestTenantStatsRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d, e, g, h uint64, tok int64) bool {
		in := TenantStats{
			Enqueued: a, Submitted: b, SubmittedTokens: c, NegLimitHits: d,
			Donated: e, Claimed: g, QueueLen: h, Tokens: tok,
		}
		var out TenantStats
		if err := out.Unmarshal(in.Marshal()); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary bytes never panic the decoders; they either parse or
// return an error.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		var h Header
		_ = h.Unmarshal(raw)
		var r Registration
		_ = r.Unmarshal(raw)
		var s TenantStats
		_ = s.Unmarshal(raw)
		_, _ = ReadMessage(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
