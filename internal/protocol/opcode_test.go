package protocol

import (
	"fmt"
	"strings"
	"testing"
)

// TestOpcodeStringCoverage fails when an opcode is added without a name
// (the recurring "new opcode, stale String()" drift): every defined
// opcode in [0, opcodeEnd) must have a real name, and opcodeEnd itself
// must not — so adding 0x17 without bumping opcodeEnd (or naming it)
// breaks one of the two assertions.
func TestOpcodeStringCoverage(t *testing.T) {
	for op := Opcode(0); op < opcodeEnd; op++ {
		name := op.String()
		if strings.HasPrefix(name, "opcode(") {
			t.Errorf("opcode %#04x has no String() name", uint16(op))
		}
	}
	if name := opcodeEnd.String(); !strings.HasPrefix(name, "opcode(") {
		t.Errorf("opcode %#04x (= opcodeEnd) is named %q — bump opcodeEnd past it", uint16(opcodeEnd), name)
	}
}

func TestVolumeReqRoundtrip(t *testing.T) {
	cases := []VolumeReq{
		{Name: "v", Blocks: 1 << 30},
		{Name: "clone-7", Source: "base", Gen: 42},
		{Name: "backup", GenA: 3, GenB: 9},
		{Name: strings.Repeat("n", 255), Source: strings.Repeat("s", 255), Blocks: 1, Gen: 2, GenA: 3, GenB: 4},
	}
	for i, want := range cases {
		b := want.Marshal()
		var got VolumeReq
		if err := got.Unmarshal(b); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("case %d: %+v != %+v", i, got, want)
		}
	}
}

func TestVolumeReqStrict(t *testing.T) {
	good := (&VolumeReq{Name: "vol", Source: "src", Blocks: 7, Gen: 1, GenA: 2, GenB: 3}).Marshal()
	var v VolumeReq
	for i := 0; i < len(good); i++ {
		if err := v.Unmarshal(good[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded", i)
		}
	}
	if err := v.Unmarshal(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	empty := (&VolumeReq{Name: "x"}).Marshal()
	empty[volumeReqFixed] = 0 // zero the name length
	if err := v.Unmarshal(empty[:volumeReqFixed+2]); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestVolumeListRoundtrip(t *testing.T) {
	want := []VolumeInfo{
		{Name: "a", Handle: 1, Blocks: 100, Gen: 3, Extents: 2, ExtentBlocks: 128, Snaps: []uint64{1, 2}},
		{Name: "b-clone", Handle: 9, Blocks: 1 << 40, Gen: 11, ExtentBlocks: 128},
	}
	var b []byte
	for i := range want {
		b = want[i].AppendMarshal(b)
	}
	got, err := UnmarshalVolumeList(b, len(want))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Handle != want[i].Handle ||
			got[i].Blocks != want[i].Blocks || got[i].Gen != want[i].Gen ||
			got[i].Extents != want[i].Extents || len(got[i].Snaps) != len(want[i].Snaps) {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Strict: truncation anywhere fails; trailing bytes fail.
	for i := 0; i < len(b); i++ {
		if _, err := UnmarshalVolumeList(b[:i], len(want)); err == nil {
			t.Fatalf("prefix of %d bytes decoded", i)
		}
	}
	if _, err := UnmarshalVolumeList(append(append([]byte{}, b...), 0), len(want)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestVolDiffRoundtripStrict(t *testing.T) {
	// Gen over 2^32 pins that generations survive the wire full-width
	// (they ride the payload — Header.LBA would truncate them).
	want := VolDiff{Gen: 1<<40 + 7, ExtentBlocks: 128, Extents: []uint32{0, 5, 6, 1000}}
	b := want.Marshal()
	var got VolDiff
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.Gen != want.Gen || got.ExtentBlocks != want.ExtentBlocks || len(got.Extents) != len(want.Extents) {
		t.Fatalf("%+v != %+v", got, want)
	}
	for i := range want.Extents {
		if got.Extents[i] != want.Extents[i] {
			t.Fatalf("extent %d mismatch", i)
		}
	}
	for i := 0; i < len(b); i++ {
		if err := got.Unmarshal(b[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded", i)
		}
	}
	if err := got.Unmarshal(append(append([]byte{}, b...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	unsorted := (&VolDiff{ExtentBlocks: 8, Extents: []uint32{5, 5}}).Marshal()
	if err := got.Unmarshal(unsorted); err == nil {
		t.Fatal("duplicate extents accepted")
	}
	// An empty diff (no extents changed) is valid.
	if err := got.Unmarshal((&VolDiff{ExtentBlocks: 8}).Marshal()); err != nil {
		t.Fatalf("empty diff rejected: %v", err)
	}
}

// TestGenPayload pins the 8-byte generation payload: full 64-bit
// roundtrip, strict length.
func TestGenPayload(t *testing.T) {
	for _, gen := range []uint64{0, 1, 1 << 32, 1<<64 - 1} {
		got, err := UnmarshalGen(MarshalGen(gen))
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if got != gen {
			t.Fatalf("gen roundtrip: got %d, want %d", got, gen)
		}
	}
	if _, err := UnmarshalGen(nil); err == nil {
		t.Fatal("empty generation payload accepted")
	}
	if _, err := UnmarshalGen(make([]byte, 9)); err == nil {
		t.Fatal("oversized generation payload accepted")
	}
}

// TestRegistrationVolumeByte pins the wire position of the volume-handle
// byte (the old reserved byte 3) so raw-device clients stay compatible.
func TestRegistrationVolumeByte(t *testing.T) {
	r := Registration{Volume: 7, Writable: true, LBACount: 100}
	b := r.Marshal()
	if b[3] != 7 {
		t.Fatalf("volume handle at byte %d, want byte 3 = 7, got %v", 3, b[:4])
	}
	var got Registration
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.Volume != 7 {
		t.Fatalf("Volume = %d after roundtrip, want 7", got.Volume)
	}
	// A pre-volume client's record (byte 3 zero) still means raw device.
	b[3] = 0
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.Volume != 0 {
		t.Fatal("zero byte 3 must mean no volume")
	}
	var _ = fmt.Sprintf // keep fmt if assertions trimmed later
}
