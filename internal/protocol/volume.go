package protocol

import (
	"encoding/binary"
	"fmt"
)

// VolumeReq is the request payload of the volume-management opcodes
// (OpVolCreate/Delete/Snapshot/Clone/Diff/Stream). One record serves all
// of them; unused fields are zero:
//
//	OpVolCreate:   Name, Blocks
//	OpVolDelete:   Name, Gen (0 = the volume itself, else one snapshot)
//	OpVolSnapshot: Name
//	OpVolClone:    Name (new volume), Source, Gen (source snapshot)
//	OpVolDiff:     Name, GenA, GenB (GenB 0 = current generation)
//	OpVolStream:   Name, GenA, GenB (stream Diff(GenA, GenB] at GenB)
//
// Layout: blocks u64 | gen u64 | genA u64 | genB u64 |
// nameLen u8 | name | srcLen u8 | source. Strict decode: exact length,
// non-empty Name, both names ≤255 bytes (the u8 length).
type VolumeReq struct {
	Name   string
	Source string
	Blocks uint64
	Gen    uint64
	GenA   uint64
	GenB   uint64
}

// volumeReqFixed is the fixed-field prefix before the two names.
const volumeReqFixed = 8 * 4

// Marshal encodes the request.
func (v *VolumeReq) Marshal() []byte {
	b := make([]byte, 0, volumeReqFixed+2+len(v.Name)+len(v.Source))
	b = binary.BigEndian.AppendUint64(b, v.Blocks)
	b = binary.BigEndian.AppendUint64(b, v.Gen)
	b = binary.BigEndian.AppendUint64(b, v.GenA)
	b = binary.BigEndian.AppendUint64(b, v.GenB)
	b = append(b, uint8(len(v.Name)))
	b = append(b, v.Name...)
	b = append(b, uint8(len(v.Source)))
	b = append(b, v.Source...)
	return b
}

// Unmarshal strictly decodes the request.
func (v *VolumeReq) Unmarshal(b []byte) error {
	if len(b) < volumeReqFixed+2 {
		return fmt.Errorf("protocol: short volume request: %d bytes", len(b))
	}
	v.Blocks = binary.BigEndian.Uint64(b[0:])
	v.Gen = binary.BigEndian.Uint64(b[8:])
	v.GenA = binary.BigEndian.Uint64(b[16:])
	v.GenB = binary.BigEndian.Uint64(b[24:])
	b = b[volumeReqFixed:]
	nameLen := int(b[0])
	if nameLen == 0 {
		return fmt.Errorf("protocol: empty volume name")
	}
	if len(b) < 1+nameLen+1 {
		return fmt.Errorf("protocol: truncated volume name")
	}
	v.Name = string(b[1 : 1+nameLen])
	b = b[1+nameLen:]
	srcLen := int(b[0])
	if len(b) != 1+srcLen {
		return fmt.Errorf("protocol: volume request length mismatch (%d trailing)", len(b)-1-srcLen)
	}
	v.Source = string(b[1 : 1+srcLen])
	return nil
}

// VolumeInfo is one OpVolList directory entry.
//
// Layout: handle u16 | snapCount u16 | blocks u64 | gen u64 |
// extents u32 | extentBlocks u32 | nameLen u8 | name | snaps u64 each.
type VolumeInfo struct {
	Name         string
	Handle       uint16
	Blocks       uint64
	Gen          uint64
	Extents      uint32 // live-mapped extents (thin occupancy)
	ExtentBlocks uint32
	Snaps        []uint64
}

const volumeInfoFixed = 2 + 2 + 8 + 8 + 4 + 4

// AppendMarshal appends the encoded entry to b (list responses pack many).
func (vi *VolumeInfo) AppendMarshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, vi.Handle)
	b = binary.BigEndian.AppendUint16(b, uint16(len(vi.Snaps)))
	b = binary.BigEndian.AppendUint64(b, vi.Blocks)
	b = binary.BigEndian.AppendUint64(b, vi.Gen)
	b = binary.BigEndian.AppendUint32(b, vi.Extents)
	b = binary.BigEndian.AppendUint32(b, vi.ExtentBlocks)
	b = append(b, uint8(len(vi.Name)))
	b = append(b, vi.Name...)
	for _, g := range vi.Snaps {
		b = binary.BigEndian.AppendUint64(b, g)
	}
	return b
}

// UnmarshalNext decodes one entry off the front of b, returning the rest.
func (vi *VolumeInfo) UnmarshalNext(b []byte) ([]byte, error) {
	if len(b) < volumeInfoFixed+1 {
		return nil, fmt.Errorf("protocol: short volume info: %d bytes", len(b))
	}
	vi.Handle = binary.BigEndian.Uint16(b[0:])
	nSnaps := int(binary.BigEndian.Uint16(b[2:]))
	vi.Blocks = binary.BigEndian.Uint64(b[4:])
	vi.Gen = binary.BigEndian.Uint64(b[12:])
	vi.Extents = binary.BigEndian.Uint32(b[20:])
	vi.ExtentBlocks = binary.BigEndian.Uint32(b[24:])
	b = b[volumeInfoFixed:]
	nameLen := int(b[0])
	if nameLen == 0 {
		return nil, fmt.Errorf("protocol: empty volume info name")
	}
	if len(b) < 1+nameLen+8*nSnaps {
		return nil, fmt.Errorf("protocol: truncated volume info")
	}
	vi.Name = string(b[1 : 1+nameLen])
	b = b[1+nameLen:]
	vi.Snaps = vi.Snaps[:0]
	for i := 0; i < nSnaps; i++ {
		vi.Snaps = append(vi.Snaps, binary.BigEndian.Uint64(b[8*i:]))
	}
	return b[8*nSnaps:], nil
}

// UnmarshalVolumeList strictly decodes an OpVolList response payload of
// count entries.
func UnmarshalVolumeList(b []byte, count int) ([]VolumeInfo, error) {
	if count < 0 || count > 1<<16 {
		return nil, fmt.Errorf("protocol: bad volume list count %d", count)
	}
	out := make([]VolumeInfo, 0, count)
	for i := 0; i < count; i++ {
		var vi VolumeInfo
		rest, err := vi.UnmarshalNext(b)
		if err != nil {
			return nil, err
		}
		b = rest
		out = append(out, vi)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("protocol: %d trailing bytes after volume list", len(b))
	}
	return out, nil
}

// VolDiff is the OpVolDiff response payload: the extents written in
// (GenA, GenB], ascending, with the extent size so the receiver can turn
// indexes into byte ranges, and the resolved upper generation (GenB 0 in
// the request means "current"; Gen is what it resolved to). Generations
// are 64-bit and ride the payload — Header.LBA is 32-bit and would wrap.
//
// Layout: gen u64 | extentBlocks u32 | count u32 | extents u32 each,
// strictly ascending.
type VolDiff struct {
	Gen          uint64
	ExtentBlocks uint32
	Extents      []uint32
}

// volDiffFixed is the fixed prefix before the extent list.
const volDiffFixed = 8 + 4 + 4

// Marshal encodes the diff.
func (d *VolDiff) Marshal() []byte {
	b := make([]byte, 0, volDiffFixed+4*len(d.Extents))
	b = binary.BigEndian.AppendUint64(b, d.Gen)
	b = binary.BigEndian.AppendUint32(b, d.ExtentBlocks)
	b = binary.BigEndian.AppendUint32(b, uint32(len(d.Extents)))
	for _, e := range d.Extents {
		b = binary.BigEndian.AppendUint32(b, e)
	}
	return b
}

// Unmarshal strictly decodes the diff (exact length, ascending extents).
func (d *VolDiff) Unmarshal(b []byte) error {
	if len(b) < volDiffFixed {
		return fmt.Errorf("protocol: short volume diff: %d bytes", len(b))
	}
	d.Gen = binary.BigEndian.Uint64(b[0:])
	d.ExtentBlocks = binary.BigEndian.Uint32(b[8:])
	n := int(binary.BigEndian.Uint32(b[12:]))
	if d.ExtentBlocks == 0 {
		return fmt.Errorf("protocol: zero extent size in diff")
	}
	if len(b) != volDiffFixed+4*n {
		return fmt.Errorf("protocol: volume diff length %d != %d entries", len(b), n)
	}
	d.Extents = make([]uint32, n)
	prev := int64(-1)
	for i := 0; i < n; i++ {
		e := binary.BigEndian.Uint32(b[volDiffFixed+4*i:])
		if int64(e) <= prev {
			return fmt.Errorf("protocol: volume diff extents not ascending at %d", e)
		}
		prev = int64(e)
		d.Extents[i] = e
	}
	return nil
}

// MarshalGen encodes a generation number as the 8-byte payload of the
// OpVolSnapshot response and the OpVolStream OK response. Header.LBA is
// 32-bit, so generations ride the payload to stay full-width.
func MarshalGen(gen uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, gen)
	return b
}

// UnmarshalGen strictly decodes an 8-byte generation payload.
func UnmarshalGen(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("protocol: generation payload %d bytes, want 8", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}
