// Package protocol defines the ReFlex binary wire protocol: the remote
// analogue of the dataplane system calls and event conditions of Table 1
// (register, unregister, read, write and their completions).
//
// Every message is a fixed 28-byte header optionally followed by a payload
// of Len bytes (write data, read response data, or a registration record).
// The cookie field is opaque to the server and echoed on completions so
// clients can match responses to outstanding requests — the same mechanism
// the paper uses between dataplane and server code.
//
// All integers are big-endian.
package protocol

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies ReFlex protocol messages ("RF").
const Magic uint16 = 0x5246

// HeaderSize is the fixed message header size in bytes.
const HeaderSize = 32

// MaxPayload bounds a single message's payload (one I/O). Larger I/Os span
// multiple messages, as in §3.1.
const MaxPayload = 1 << 20

// BlockSize is the logical block size; LBA is in these units.
const BlockSize = 512

// Opcode identifies the operation.
type Opcode uint16

const (
	// OpRead reads Len bytes at LBA.
	OpRead Opcode = 0x00
	// OpWrite writes the Len-byte payload at LBA.
	OpWrite Opcode = 0x01
	// OpRegister registers a tenant; payload is a Registration.
	OpRegister Opcode = 0x02
	// OpUnregister unregisters the tenant in Handle.
	OpUnregister Opcode = 0x03
	// OpBarrier orders a tenant's I/O: it completes only after every I/O
	// submitted before it on the tenant has completed, and no I/O
	// submitted after it starts until it completes (§4.1 future work:
	// "barrier operations that can be used to force ordering and build
	// high-level abstractions like atomic transactions").
	OpBarrier Opcode = 0x04
	// OpStats returns the tenant's scheduler counters (a TenantStats
	// payload) — the accounting the control plane watches for SLO
	// renegotiation (§4.3).
	OpStats Opcode = 0x05
	// OpReplicate carries one acked write from a primary to its backup
	// (internal/cluster): LBA/Count/payload as OpWrite, stamped with the
	// primary's cluster epoch. The backup acks with a response whose
	// status is StatusStaleEpoch when its epoch has moved past the
	// sender's — the split-brain fence.
	OpReplicate Opcode = 0x06
	// OpJoin is sent by a backup to its primary to attach as the replica:
	// Epoch carries the backup's current epoch; an OK response carries
	// the primary's epoch, after which the primary streams a catch-up of
	// the device followed by live replicated writes on this connection.
	//
	// Ranged join (shard migration, DESIGN.md §13): a join whose Count
	// field is nonzero names an LBA window [LBA, LBA+Count) in BlockSize
	// units. The server attaches the connection to its migration
	// replicator instead of the backup slot: only that window is caught
	// up and only writes intersecting it are forwarded. When the ranged
	// catch-up completes the server emits a non-response OpJoin marker
	// frame (echoing LBA/Count) down the stream so the migration sink
	// knows the window is fully copied.
	OpJoin Opcode = 0x07
	// OpPromote asks a server to become primary at the given (higher)
	// epoch — issued by a failing-over client. The response carries the
	// server's resulting epoch; StatusStaleEpoch means the server already
	// saw a higher epoch and refuses.
	OpPromote Opcode = 0x08
	// OpFence informs a server that a higher epoch exists elsewhere: if
	// the carried epoch exceeds the server's, it marks itself deposed and
	// rejects subsequent writes with StatusStaleEpoch.
	OpFence Opcode = 0x09
	// OpPing is the cluster health probe: the response carries the
	// server's epoch and its role bits in Count (RoleBackupBit,
	// RoleFencedBit) and the server's migration-pending forward count in
	// LBA (the shard-move drain signal; 0 when no migration is live).
	OpPing Opcode = 0x0A
	// OpShardMap fetches or installs the cluster shard map (DESIGN.md
	// §13). A request with no payload is a fetch: the response payload is
	// the marshaled map and LBA carries its version (no payload when the
	// server has no map installed). A request carrying a payload is an
	// install (coordinator-issued): the server adopts the map iff its
	// version is newer than the installed one, answers StatusOK (LBA = the
	// resulting installed version), or StatusStaleEpoch when the offered
	// map is older than what it already has.
	OpShardMap Opcode = 0x0B
	// OpCtrlVote is a control-plane (internal/ctrlplane) RequestVote
	// exchange between coordinator replicas: the payload is the vote
	// request/response record, opaque to the data plane.
	OpCtrlVote Opcode = 0x0C
	// OpCtrlAppend is a control-plane AppendEntries exchange: leader
	// heartbeat, lease renewal and replicated-log shipment in one frame.
	OpCtrlAppend Opcode = 0x0D
	// OpCtrlSnapshot installs a control-plane state snapshot on a replica
	// whose log position predates the leader's compaction base (the
	// late-joiner catch-up path, shaped like the OpJoin catch-up stream
	// but single-shot — control-plane state is tiny).
	OpCtrlSnapshot Opcode = 0x0E
	// OpVolCreate creates a thin-provisioned logical volume (DESIGN.md
	// §18). Payload: a VolumeReq with Name and Blocks. The response
	// carries the volume's wire handle in Header.Handle; clients bind a
	// tenant to it via Registration.Volume.
	OpVolCreate Opcode = 0x0F
	// OpVolDelete deletes a volume (VolumeReq.Gen == 0) or unregisters
	// one snapshot generation (Gen != 0), returning freed extents to the
	// pool once no clone chain references them.
	OpVolDelete Opcode = 0x10
	// OpVolSnapshot freezes the named volume's live extent map under its
	// current generation — O(1), no data copied. The response payload is
	// the frozen generation (8 bytes big-endian; see MarshalGen —
	// generations are 64-bit and would wrap in the 32-bit Header.LBA).
	OpVolSnapshot Opcode = 0x11
	// OpVolClone creates a writable volume rooted at a source volume's
	// snapshot generation (VolumeReq: Name = new volume, Source, Gen).
	// The response carries the clone's handle in Header.Handle.
	OpVolClone Opcode = 0x12
	// OpVolDiff enumerates the logical extents written between two
	// generations (VolumeReq.GenA, GenB]; the response payload is a
	// VolDiff record — the incremental backup set plus the resolved
	// upper generation.
	OpVolDiff Opcode = 0x13
	// OpVolList fetches the volume directory; the response payload is a
	// sequence of VolumeInfo records, Header.Count holding how many.
	OpVolList Opcode = 0x14
	// OpVolStream is the snapshot-diff replication stream. The request
	// (VolumeReq: Name, GenA, GenB) asks the server to stream every
	// extent in Diff(GenA, GenB] as of generation GenB; the OK response
	// carries the resolved upper generation as its payload (MarshalGen).
	// Then the server sends self-paced non-response OpVolStream chunks
	// (LBA = volume-logical block, Len = bytes) that the receiver acks
	// like OpReplicate, ending with a zero-length, zero-count OpVolStream
	// marker — the OpJoin catch-up shape applied to backup. A marker with
	// a non-OK Status means the source aborted (backend read failure,
	// refused ack): the receiver must treat the restore as failed, not
	// complete.
	OpVolStream Opcode = 0x15
	// OpTrim discards a volume-logical (or raw, for unbound tenants)
	// block range: Header.LBA/Count name the range like a write with no
	// payload. Thin extents wholly inside the range return to the pool
	// and the flash layer may drop the blocks from their erase units.
	OpTrim Opcode = 0x16

	// opcodeEnd is one past the last defined opcode. The table-driven
	// String() coverage test walks [0, opcodeEnd) and fails when a new
	// opcode lands without a name — keep it in sync when adding opcodes.
	opcodeEnd Opcode = 0x17
)

// Role bits carried in an OpPing response's Count field.
const (
	// RoleBackupBit is set while the server runs as a (non-promoted)
	// backup.
	RoleBackupBit uint32 = 1 << 0
	// RoleFencedBit is set on a deposed primary that refuses writes.
	RoleFencedBit uint32 = 1 << 1
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRegister:
		return "register"
	case OpUnregister:
		return "unregister"
	case OpBarrier:
		return "barrier"
	case OpStats:
		return "stats"
	case OpReplicate:
		return "replicate"
	case OpJoin:
		return "join"
	case OpPromote:
		return "promote"
	case OpFence:
		return "fence"
	case OpPing:
		return "ping"
	case OpShardMap:
		return "shard-map"
	case OpCtrlVote:
		return "ctrl-vote"
	case OpCtrlAppend:
		return "ctrl-append"
	case OpCtrlSnapshot:
		return "ctrl-snapshot"
	case OpVolCreate:
		return "vol-create"
	case OpVolDelete:
		return "vol-delete"
	case OpVolSnapshot:
		return "vol-snapshot"
	case OpVolClone:
		return "vol-clone"
	case OpVolDiff:
		return "vol-diff"
	case OpVolList:
		return "vol-list"
	case OpVolStream:
		return "vol-stream"
	case OpTrim:
		return "trim"
	default:
		return fmt.Sprintf("opcode(%d)", uint16(o))
	}
}

// Flag bits.
const (
	// FlagResponse marks a message as a completion event.
	FlagResponse uint16 = 1 << 0
	// FlagChecksum marks a message whose payload carries a trailing
	// CRC32C (Castagnoli) over the data bytes: the wire payload is
	// data||crc32c(data), and Len includes the 4-byte trailer.
	// ReadMessage verifies and strips the trailer (Message.ChecksumErr
	// reports a mismatch). On a read *request* (no payload) the flag asks
	// the server to checksum the response.
	FlagChecksum uint16 = 1 << 1
	// FlagTraced marks a message carrying a trace-context trailer: the
	// last TraceSize bytes of the wire payload are a big-endian trace id
	// followed by the sender's span id (the receiver's parent span). The
	// trailer rides OUTSIDE the checksum trailer — a traced+checksummed
	// payload is data||crc32c(data)||trace — so the CRC still covers only
	// the data bytes and a hop can re-parent the context without
	// resealing. Message parsing strips the trailer into
	// Message.TraceID/ParentSpan; Len then reflects what remains. A traced
	// read request (which carries no data) has the trailer as its entire
	// payload. Responses never carry the trailer — the trace id was minted
	// by the caller, who already has it.
	FlagTraced uint16 = 1 << 2
	// FlagHintShort marks an OpWrite whose data the client expects to be
	// short-lived (soon overwritten or trimmed — journals, spill files,
	// compaction input). FDP-style lifetime hints: servers map hints to
	// placement streams so short-lived data never shares an erase unit
	// with long-lived data, which cuts device write amplification. A
	// hint is advisory; servers without placement support count and
	// ignore it.
	FlagHintShort uint16 = 1 << 3
	// FlagHintLong marks an OpWrite whose data the client expects to be
	// long-lived (cold objects, base images). See FlagHintShort.
	FlagHintLong uint16 = 1 << 4
	// FlagHintMask covers the lifetime-hint bits.
	FlagHintMask = FlagHintShort | FlagHintLong
)

// Lifetime hint values decoded from the flag bits (LifetimeHint).
const (
	// HintNone is an unhinted write.
	HintNone = 0
	// HintShort is short-lived data (FlagHintShort).
	HintShort = 1
	// HintLong is long-lived data (FlagHintLong).
	HintLong = 2
)

// LifetimeHint decodes the write lifetime-hint flag bits. Both bits set
// is treated as no hint (the client contradicted itself).
func (h *Header) LifetimeHint() int {
	switch h.Flags & FlagHintMask {
	case FlagHintShort:
		return HintShort
	case FlagHintLong:
		return HintLong
	}
	return HintNone
}

// ChecksumSize is the length of the CRC32C payload trailer.
const ChecksumSize = 4

// TraceSize is the length of the trace-context payload trailer:
// 8-byte trace id + 8-byte parent span id, big-endian.
const TraceSize = 16

// castagnoli is the CRC32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// SealChecksum returns data||crc32c(data), the payload form of a message
// carrying FlagChecksum.
func SealChecksum(data []byte) []byte {
	out := make([]byte, len(data)+ChecksumSize)
	n := copy(out, data)
	binary.BigEndian.PutUint32(out[n:], Checksum(data))
	return out
}

// AppendChecksum appends the CRC32C trailer to data in place and returns
// the extended slice. When cap(data) >= len(data)+ChecksumSize — the
// bufpool contract: every pooled class leaves trailer slack — no copy or
// allocation happens: the frame is sealed inside its own backing array.
func AppendChecksum(data []byte) []byte {
	var tr [ChecksumSize]byte
	binary.BigEndian.PutUint32(tr[:], Checksum(data))
	return append(data, tr[:]...)
}

// AppendTrace appends the trace-context trailer (trace id, parent span
// id) to data in place and returns the extended slice. Must be applied
// AFTER AppendChecksum when both trailers are present — the trace
// trailer is outermost on the wire. Like AppendChecksum, sufficient
// capacity means no copy or allocation.
func AppendTrace(data []byte, trace, parent uint64) []byte {
	var tr [TraceSize]byte
	binary.BigEndian.PutUint64(tr[:8], trace)
	binary.BigEndian.PutUint64(tr[8:], parent)
	return append(data, tr[:]...)
}

// Status codes carried in responses (in the Handle field's place meaning
// stays: Status uses its own field).
type Status uint16

const (
	// StatusOK means success.
	StatusOK Status = 0
	// StatusBadRequest means a malformed or out-of-range request.
	StatusBadRequest Status = 1
	// StatusNoTenant means the handle does not name a registered tenant.
	StatusNoTenant Status = 2
	// StatusDenied means the ACL rejects the operation.
	StatusDenied Status = 3
	// StatusNoCapacity means tenant admission failed (SLO not admissible,
	// the "out of resources error" of Table 1).
	StatusNoCapacity Status = 4
	// StatusError is an internal server error.
	StatusError Status = 5
	// StatusDeviceError means the device failed this I/O (media error,
	// controller reset, injected fault). The tenant and connection stay
	// registered; the operation is safe to retry.
	StatusDeviceError Status = 6
	// StatusOverloaded means the server shed this best-effort request
	// under load (admission refuse); retry after backing off.
	// Latency-critical tenants are never shed.
	StatusOverloaded Status = 7
	// StatusTruncated means a datagram transport truncated the request
	// (it exceeded the receive buffer); resend over TCP or smaller.
	StatusTruncated Status = 8
	// StatusStaleEpoch means the request carried a cluster epoch older
	// than the server's, or the server has been fenced/deposed: the write
	// was rejected to prevent split-brain. The client must re-probe the
	// cluster and retry at the current primary.
	StatusStaleEpoch Status = 9
	// StatusBadChecksum means the payload's CRC32C trailer did not match
	// the data: the write was discarded without touching media. Retryable
	// (the corruption happened in flight).
	StatusBadChecksum Status = 10
	// StatusWrongShard means the request's LBA range is not owned by this
	// node under the server's installed shard map: the client's routing
	// table is stale. The response's Count field carries the server's
	// shard-map version; the client should refetch the map (OpShardMap)
	// and retry at the owning node.
	StatusWrongShard Status = 11
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusNoTenant:
		return "no-tenant"
	case StatusDenied:
		return "denied"
	case StatusNoCapacity:
		return "no-capacity"
	case StatusError:
		return "error"
	case StatusDeviceError:
		return "device-error"
	case StatusOverloaded:
		return "overloaded"
	case StatusTruncated:
		return "truncated"
	case StatusStaleEpoch:
		return "stale-epoch"
	case StatusBadChecksum:
		return "bad-checksum"
	case StatusWrongShard:
		return "wrong-shard"
	default:
		return fmt.Sprintf("status(%d)", uint16(s))
	}
}

// Header is the fixed message header.
//
// Layout (32 bytes):
//
//	off size field
//	  0    2 magic
//	  2    2 opcode
//	  4    2 flags
//	  6    2 handle (tenant handle)
//	  8    2 status
//	 10    2 epoch (cluster epoch; 0 = standalone / epoch-unaware)
//	 12    8 cookie
//	 20    4 lba   (BlockSize units)
//	 24    4 count (bytes requested: read length; echoed on responses)
//	 28    4 len   (payload bytes that follow this header)
type Header struct {
	Opcode Opcode
	Flags  uint16
	Handle uint16
	// Status carries the response status. On *requests* the field is
	// otherwise unused, so shard-aware clients stamp the low 16 bits of
	// their routing-table (shard map) version into it — the map-version
	// header echo: a server can observe how stale its callers are, and a
	// StatusWrongShard refusal answers with the authoritative version in
	// Count. Zero means shard-unaware (the pre-sharding wire format).
	Status Status
	// Epoch is the cluster epoch the sender believes is current. Zero
	// means standalone / epoch-unaware (the pre-cluster wire format wrote
	// zero here as "reserved", so old clients interoperate): the server
	// skips epoch fencing for epoch-0 writes unless it has itself been
	// fenced. Nonzero epochs are compared against the server's; a write
	// stamped with an older epoch is rejected with StatusStaleEpoch.
	Epoch  uint16
	Cookie uint64
	LBA    uint32
	// Count is the I/O length in bytes: what a read requests, and what a
	// write intends (equal to Len for writes).
	Count uint32
	// Len is the payload size framed after the header; WriteMessage sets
	// it from the payload.
	Len uint32
}

// IsResponse reports whether the message is a completion event.
func (h *Header) IsResponse() bool { return h.Flags&FlagResponse != 0 }

// Marshal encodes the header into a fresh HeaderSize-byte slice.
func (h *Header) Marshal() []byte {
	b := make([]byte, HeaderSize)
	h.MarshalTo(b)
	return b
}

// MarshalTo encodes the header into b, which must be >= HeaderSize bytes.
func (h *Header) MarshalTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:], Magic)
	binary.BigEndian.PutUint16(b[2:], uint16(h.Opcode))
	binary.BigEndian.PutUint16(b[4:], h.Flags)
	binary.BigEndian.PutUint16(b[6:], h.Handle)
	binary.BigEndian.PutUint16(b[8:], uint16(h.Status))
	binary.BigEndian.PutUint16(b[10:], h.Epoch)
	binary.BigEndian.PutUint64(b[12:], h.Cookie)
	binary.BigEndian.PutUint32(b[20:], h.LBA)
	binary.BigEndian.PutUint32(b[24:], h.Count)
	binary.BigEndian.PutUint32(b[28:], h.Len)
}

// Unmarshal decodes a header from b.
func (h *Header) Unmarshal(b []byte) error {
	if len(b) < HeaderSize {
		return fmt.Errorf("protocol: short header: %d bytes", len(b))
	}
	if m := binary.BigEndian.Uint16(b[0:]); m != Magic {
		return fmt.Errorf("protocol: bad magic 0x%04x", m)
	}
	h.Opcode = Opcode(binary.BigEndian.Uint16(b[2:]))
	h.Flags = binary.BigEndian.Uint16(b[4:])
	h.Handle = binary.BigEndian.Uint16(b[6:])
	h.Status = Status(binary.BigEndian.Uint16(b[8:]))
	h.Epoch = binary.BigEndian.Uint16(b[10:])
	h.Cookie = binary.BigEndian.Uint64(b[12:])
	h.LBA = binary.BigEndian.Uint32(b[20:])
	h.Count = binary.BigEndian.Uint32(b[24:])
	h.Len = binary.BigEndian.Uint32(b[28:])
	if h.Len > MaxPayload {
		return fmt.Errorf("protocol: payload %d exceeds max %d", h.Len, MaxPayload)
	}
	return nil
}

// Registration is the OpRegister payload: the wire form of a tenant SLO
// (Table 1 register parameters: id, latency, IOPS, rw_ratio, cookie).
//
// Layout (24 bytes):
//
//	off size field
//	  0    1 class (0 = latency-critical, 1 = best-effort)
//	  1    1 readPercent
//	  2    1 device (NVMe device index on multi-device servers)
//	  3    1 volume (wire handle of a logical volume, 0 = raw device)
//	  4    4 iops
//	  8    8 latencyP95 (ns)
//	 16    4 firstLBA   (ACL range start, BlockSize units)
//	 20    3 lbaCount   (ACL range length, 0 = whole device) + 1 writable
type Registration struct {
	BestEffort  bool
	ReadPercent uint8
	// Device selects the NVMe device on a multi-device server; each
	// device runs its own scheduler instance (§3.2.2).
	Device uint8
	// Volume binds the tenant to a logical volume by wire handle
	// (OpVolCreate's response Handle); 0 keeps the raw-device addressing
	// every pre-volume client uses. When set, the tenant's OpRead/
	// OpWrite/OpTrim LBAs are volume-logical and the ACL range is checked
	// against the volume's logical size.
	Volume     uint8
	IOPS       uint32
	LatencyP95 uint64
	// FirstLBA and LBACount define the namespace (logical block range)
	// the tenant may access; LBACount 0 means the whole device.
	FirstLBA uint32
	LBACount uint32
	// Writable grants write permission (the paper's per-namespace ACL).
	Writable bool
}

// RegistrationSize is the encoded size of a Registration.
const RegistrationSize = 24

// Marshal encodes the registration.
func (r *Registration) Marshal() []byte {
	b := make([]byte, RegistrationSize)
	if r.BestEffort {
		b[0] = 1
	}
	b[1] = r.ReadPercent
	b[2] = r.Device
	b[3] = r.Volume
	binary.BigEndian.PutUint32(b[4:], r.IOPS)
	binary.BigEndian.PutUint64(b[8:], r.LatencyP95)
	binary.BigEndian.PutUint32(b[16:], r.FirstLBA)
	cnt := r.LBACount & 0xFFFFFF
	flags := uint32(0)
	if r.Writable {
		flags = 1
	}
	binary.BigEndian.PutUint32(b[20:], cnt<<8|flags)
	return b
}

// Unmarshal decodes a registration.
func (r *Registration) Unmarshal(b []byte) error {
	if len(b) < RegistrationSize {
		return fmt.Errorf("protocol: short registration: %d bytes", len(b))
	}
	r.BestEffort = b[0] == 1
	r.ReadPercent = b[1]
	r.Device = b[2]
	r.Volume = b[3]
	r.IOPS = binary.BigEndian.Uint32(b[4:])
	r.LatencyP95 = binary.BigEndian.Uint64(b[8:])
	r.FirstLBA = binary.BigEndian.Uint32(b[16:])
	v := binary.BigEndian.Uint32(b[20:])
	r.LBACount = v >> 8
	r.Writable = v&1 == 1
	if r.ReadPercent > 100 {
		return fmt.Errorf("protocol: read percent %d out of range", r.ReadPercent)
	}
	return nil
}

// TenantStats is the OpStats response payload: the per-tenant accounting
// counters of the QoS scheduler.
//
// Layout (64 bytes): eight big-endian 64-bit fields in declaration order.
type TenantStats struct {
	// Enqueued and Submitted count requests through the tenant's queue.
	Enqueued  uint64
	Submitted uint64
	// SubmittedTokens is the total admitted cost in millitokens.
	SubmittedTokens uint64
	// NegLimitHits counts rounds ended at the burst deficit floor.
	NegLimitHits uint64
	// Donated/Claimed are global-bucket traffic in millitokens.
	Donated uint64
	Claimed uint64
	// QueueLen is the current software queue length.
	QueueLen uint64
	// Tokens is the current balance in millitokens (two's complement; LC
	// balances may be negative).
	Tokens int64
}

// TenantStatsSize is the encoded size of TenantStats.
const TenantStatsSize = 64

// Marshal encodes the stats.
func (t *TenantStats) Marshal() []byte {
	b := make([]byte, TenantStatsSize)
	for i, v := range []uint64{
		t.Enqueued, t.Submitted, t.SubmittedTokens, t.NegLimitHits,
		t.Donated, t.Claimed, t.QueueLen, uint64(t.Tokens),
	} {
		binary.BigEndian.PutUint64(b[i*8:], v)
	}
	return b
}

// Unmarshal decodes the stats.
func (t *TenantStats) Unmarshal(b []byte) error {
	if len(b) < TenantStatsSize {
		return fmt.Errorf("protocol: short tenant stats: %d bytes", len(b))
	}
	t.Enqueued = binary.BigEndian.Uint64(b[0:])
	t.Submitted = binary.BigEndian.Uint64(b[8:])
	t.SubmittedTokens = binary.BigEndian.Uint64(b[16:])
	t.NegLimitHits = binary.BigEndian.Uint64(b[24:])
	t.Donated = binary.BigEndian.Uint64(b[32:])
	t.Claimed = binary.BigEndian.Uint64(b[40:])
	t.QueueLen = binary.BigEndian.Uint64(b[48:])
	t.Tokens = int64(binary.BigEndian.Uint64(b[56:]))
	return nil
}

// Message is a decoded header plus payload.
type Message struct {
	Header  Header
	Payload []byte
	// ChecksumErr is set by ReadMessage when the message carried
	// FlagChecksum and the CRC32C trailer did not match the payload. The
	// (stripped) payload is still delivered so callers can count/inspect,
	// but it must not be trusted.
	ChecksumErr bool
	// TraceID and ParentSpan carry the stripped trace-context trailer of
	// a FlagTraced message: the end-to-end trace id minted by the
	// originating client, and the span id of the hop that sent this
	// frame. Zero on untraced messages.
	TraceID    uint64
	ParentSpan uint64

	// hb is the header read scratch, kept inside the (reusable) Message so
	// a steady-state read loop performs zero heap allocations: a local
	// [HeaderSize]byte array would escape through the io.Reader interface
	// call and be re-allocated on every message.
	hb [HeaderSize]byte
}

// Allocator provides payload storage to ReadMessageInto. The returned
// slice must have length n (capacity may exceed it, e.g. a bufpool class).
// A nil Allocator falls back to make.
type Allocator func(n int) []byte

// ReadMessage reads one framed message into a fresh Message with a fresh
// payload allocation. Hot paths should prefer ReadMessageInto with a
// reused Message and a pooled Allocator.
func ReadMessage(r io.Reader) (*Message, error) {
	m := &Message{}
	if err := ReadMessageInto(r, m, nil); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadMessageInto reads one framed message into m, drawing payload storage
// from alloc (make when nil). m is fully overwritten; reusing one Message
// per read loop plus a pooled Allocator makes the steady-state read path
// allocation-free. When the header carries FlagChecksum and a payload, the
// trailing CRC32C is verified and stripped in place (no extra copy):
// Payload and Header.Len reflect the data bytes only, and ChecksumErr
// reports a mismatch.
func ReadMessageInto(r io.Reader, m *Message, alloc Allocator) error {
	if _, err := io.ReadFull(r, m.hb[:]); err != nil {
		return err
	}
	m.Payload = nil
	m.ChecksumErr = false
	m.TraceID, m.ParentSpan = 0, 0
	if err := m.Header.Unmarshal(m.hb[:]); err != nil {
		return err
	}
	if m.Header.Len > 0 {
		if alloc != nil {
			m.Payload = alloc(int(m.Header.Len))
		} else {
			m.Payload = make([]byte, m.Header.Len)
		}
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return fmt.Errorf("protocol: truncated payload: %w", err)
		}
	}
	m.verifyTrace()
	m.verifyChecksum()
	return nil
}

// UnmarshalFrame decodes one complete framed message from b in place: the
// payload aliases b (no copy, no allocation). The datagram fast path —
// the caller owns b (a pooled receive buffer) and must keep it alive as
// long as the payload is referenced.
func (m *Message) UnmarshalFrame(b []byte) error {
	m.Payload = nil
	m.ChecksumErr = false
	m.TraceID, m.ParentSpan = 0, 0
	if err := m.Header.Unmarshal(b); err != nil {
		return err
	}
	if int(m.Header.Len) != len(b)-HeaderSize {
		return fmt.Errorf("protocol: frame length %d, header says %d", len(b)-HeaderSize, m.Header.Len)
	}
	if m.Header.Len > 0 {
		m.Payload = b[HeaderSize:]
	}
	m.verifyTrace()
	m.verifyChecksum()
	return nil
}

// verifyTrace strips the trace-context trailer when present. Runs before
// verifyChecksum: the trace trailer is outermost on the wire, so the
// checksum trailer (and the CRC it carries over the data bytes) is only
// reachable once the trace context is gone.
func (m *Message) verifyTrace() {
	if m.Header.Flags&FlagTraced != 0 && m.Header.Len >= TraceSize {
		n := len(m.Payload) - TraceSize
		m.TraceID = binary.BigEndian.Uint64(m.Payload[n:])
		m.ParentSpan = binary.BigEndian.Uint64(m.Payload[n+8:])
		m.Payload = m.Payload[:n]
		m.Header.Len = uint32(n)
	}
}

// verifyChecksum strips and checks the CRC32C trailer when present.
func (m *Message) verifyChecksum() {
	if m.Header.Flags&FlagChecksum != 0 && m.Header.Len >= ChecksumSize {
		n := len(m.Payload) - ChecksumSize
		want := binary.BigEndian.Uint32(m.Payload[n:])
		m.Payload = m.Payload[:n]
		m.Header.Len = uint32(n)
		if Checksum(m.Payload) != want {
			m.ChecksumErr = true
		}
	}
}

// WriteMessage writes a framed message. hdr.Len is forced to len(payload).
func WriteMessage(w io.Writer, hdr *Header, payload []byte) error {
	hdr.Len = uint32(len(payload))
	if hdr.Len > MaxPayload {
		return fmt.Errorf("protocol: payload %d exceeds max %d", hdr.Len, MaxPayload)
	}
	buf := make([]byte, HeaderSize+len(payload))
	hdr.MarshalTo(buf)
	copy(buf[HeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// AppendMessage appends the framed message to dst and returns the
// extended slice. hdr.Len is forced to len(payload). With sufficient
// capacity in dst — the batching writers size their arenas up front — no
// allocation happens; this is the wire-batch building block that replaced
// WriteMessage's per-call frame allocation on the hot path.
func AppendMessage(dst []byte, hdr *Header, payload []byte) ([]byte, error) {
	hdr.Len = uint32(len(payload))
	if hdr.Len > MaxPayload {
		return dst, fmt.Errorf("protocol: payload %d exceeds max %d", hdr.Len, MaxPayload)
	}
	off := len(dst)
	dst = append(dst, zeroHeader[:]...)
	hdr.MarshalTo(dst[off:])
	return append(dst, payload...), nil
}

// zeroHeader reserves header space in AppendMessage without a make call.
var zeroHeader [HeaderSize]byte
