package protocol

import (
	"bytes"
	"testing"
)

func TestChecksumSealVerifyRoundTrip(t *testing.T) {
	data := []byte("reflex end-to-end integrity payload")
	sealed := SealChecksum(data)
	if len(sealed) != len(data)+ChecksumSize {
		t.Fatalf("sealed length %d, want %d", len(sealed), len(data)+ChecksumSize)
	}
	if !bytes.Equal(sealed[:len(data)], data) {
		t.Fatal("seal mutated the data prefix")
	}
	if got := Checksum(sealed[:len(data)]); got != Checksum(data) {
		t.Fatal("checksum of prefix differs from checksum of data")
	}

	// Through the wire: a checksummed message verifies and strips cleanly.
	var buf bytes.Buffer
	hdr := Header{Opcode: OpRead, Flags: FlagResponse | FlagChecksum, Count: uint32(len(data))}
	if err := WriteMessage(&buf, &hdr, sealed); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.ChecksumErr {
		t.Fatal("intact payload flagged as checksum error")
	}
	if !bytes.Equal(m.Payload, data) {
		t.Fatalf("payload mismatch after verify/strip: %q", m.Payload)
	}
	if m.Header.Len != uint32(len(data)) {
		t.Fatalf("Len not adjusted after strip: %d", m.Header.Len)
	}
}

func TestChecksumDetectsEveryByteFlip(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sealed := SealChecksum(data)
	for i := range sealed {
		corrupt := append([]byte(nil), sealed...)
		corrupt[i] ^= 0xA5

		var buf bytes.Buffer
		hdr := Header{Opcode: OpRead, Flags: FlagResponse | FlagChecksum}
		if err := WriteMessage(&buf, &hdr, corrupt); err != nil {
			t.Fatal(err)
		}
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !m.ChecksumErr {
			t.Errorf("flip at byte %d not detected", i)
		}
	}
}

func TestChecksumFlagWithoutTrailerTolerated(t *testing.T) {
	// A checksummed message whose payload is shorter than the trailer
	// cannot be verified; it must not panic or strip.
	var buf bytes.Buffer
	hdr := Header{Opcode: OpRead, Flags: FlagResponse | FlagChecksum}
	if err := WriteMessage(&buf, &hdr, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != 2 {
		t.Fatalf("short payload mangled: %v", m.Payload)
	}
}

func TestHeaderEpochRoundTrip(t *testing.T) {
	for _, e := range []uint16{0, 1, 2, 255, 65535} {
		h := Header{Opcode: OpWrite, Epoch: e, Cookie: 42}
		b := h.Marshal()
		var out Header
		if err := out.Unmarshal(b); err != nil {
			t.Fatal(err)
		}
		if out.Epoch != e {
			t.Fatalf("epoch %d round-tripped to %d", e, out.Epoch)
		}
	}
}

func TestClusterStatusStrings(t *testing.T) {
	if StatusStaleEpoch.String() != "stale-epoch" {
		t.Fatalf("StatusStaleEpoch = %q", StatusStaleEpoch.String())
	}
	if StatusBadChecksum.String() != "bad-checksum" {
		t.Fatalf("StatusBadChecksum = %q", StatusBadChecksum.String())
	}
}
