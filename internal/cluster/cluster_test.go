package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

// fakeSender records everything the replicator sends to the "backup".
type fakeSender struct {
	mu   sync.Mutex
	hdrs []protocol.Header
	data [][]byte
}

func (f *fakeSender) SendToReplica(hdr *protocol.Header, payload []byte, lease *bufpool.Buf) {
	bufpool.ReleaseIf(lease)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hdrs = append(f.hdrs, *hdr)
	f.data = append(f.data, append([]byte(nil), payload...))
}

func (f *fakeSender) sent() []protocol.Header {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]protocol.Header(nil), f.hdrs...)
}

func newTestReplicator(backend storage.Backend) (*Replicator, *uint16) {
	var staleSeen uint16
	r := NewReplicator(ReplicatorConfig{
		Backend:    backend,
		Epoch:      func() uint16 { return 3 },
		OnStale:    func(e uint16) { staleSeen = e },
		ChunkBytes: 1024,
	})
	return r, &staleSeen
}

func TestNilReplicatorSafe(t *testing.T) {
	var r *Replicator
	if r.Forward(0, []byte{1}, nil, 0, 0, nil) {
		t.Fatal("nil replicator forwarded")
	}
	if r.Live() || r.CaughtUp() {
		t.Fatal("nil replicator live")
	}
	r.HandleAck(&protocol.Header{})
	r.Detach(r.Attach(nil), protocol.StatusOK)
	if r.Forwarded() != 0 || r.Acked() != 0 {
		t.Fatal("nil replicator counted")
	}
}

func TestForwardWithoutBackupDegrades(t *testing.T) {
	r, _ := newTestReplicator(nil)
	if r.Forward(1, []byte{1}, nil, 0, 0, func(protocol.Status) { t.Fatal("done called") }) {
		t.Fatal("Forward reported true with no session")
	}
}

func TestForwardAckCompletesOnce(t *testing.T) {
	fs := &fakeSender{}
	r, _ := newTestReplicator(nil)
	tok := r.Attach(fs)
	defer r.Detach(tok, protocol.StatusOK)
	if !r.Live() {
		t.Fatal("not live after attach")
	}

	got := make(chan protocol.Status, 2)
	if !r.Forward(7, []byte{0xAB}, nil, 0, 0, func(st protocol.Status) { got <- st }) {
		t.Fatal("Forward refused with live session")
	}
	sent := fs.sent()
	if len(sent) != 1 || sent[0].Opcode != protocol.OpReplicate ||
		sent[0].LBA != 7 || sent[0].Epoch != 3 {
		t.Fatalf("bad forward header: %+v", sent)
	}

	ack := sent[0]
	ack.Flags = protocol.FlagResponse
	ack.Status = protocol.StatusOK
	r.HandleAck(&ack)
	select {
	case st := <-got:
		if st != protocol.StatusOK {
			t.Fatalf("ack status %v", st)
		}
	case <-time.After(time.Second):
		t.Fatal("done never called")
	}
	r.HandleAck(&ack) // duplicate ack must be ignored
	select {
	case <-got:
		t.Fatal("done called twice")
	case <-time.After(20 * time.Millisecond):
	}
	if r.Forwarded() != 1 || r.Acked() != 1 {
		t.Fatalf("counters %d/%d, want 1/1", r.Forwarded(), r.Acked())
	}
}

// TestRangedForwardClipsToWindow covers the straddling-write case: a
// ranged session (migration sink) must receive ONLY in-window blocks —
// the destination owns exactly the window and refuses any frame that
// reaches past it with StatusWrongShard, which would kill the sink and
// abort the move.
func TestRangedForwardClipsToWindow(t *testing.T) {
	const bs = protocol.BlockSize
	mk := func(blocks int, first byte) []byte {
		b := make([]byte, blocks*bs)
		for i := range b {
			b[i] = first + byte(i/bs)
		}
		return b
	}
	fs := &fakeSender{}
	r, _ := newTestReplicator(nil)
	// Window: blocks [100, 110).
	tok := r.AttachRange(fs, 100, 10)
	defer r.Detach(tok, protocol.StatusOK)

	cases := []struct {
		lba       uint32
		blocks    int
		wantLBA   uint32
		wantBlk   int
		wantFirst byte // expected first payload byte (block tag)
		forwarded bool
	}{
		{lba: 96, blocks: 2, forwarded: false},                                        // entirely below
		{lba: 110, blocks: 3, forwarded: false},                                       // entirely above
		{lba: 98, blocks: 4, wantLBA: 100, wantBlk: 2, wantFirst: 2, forwarded: true}, // straddles the low edge
		{lba: 108, blocks: 4, wantLBA: 108, wantBlk: 2, wantFirst: 0, forwarded: true},
		{lba: 99, blocks: 12, wantLBA: 100, wantBlk: 10, wantFirst: 1, forwarded: true}, // spans the whole window
		{lba: 103, blocks: 2, wantLBA: 103, wantBlk: 2, wantFirst: 0, forwarded: true},  // fully inside, untouched
	}
	sentBefore := 0
	for i, tc := range cases {
		fwd := r.Forward(tc.lba, mk(tc.blocks, 0), nil, 0, 0, func(protocol.Status) {})
		if fwd != tc.forwarded {
			t.Fatalf("case %d: forwarded = %v, want %v", i, fwd, tc.forwarded)
		}
		sent := fs.sent()
		if !tc.forwarded {
			if len(sent) != sentBefore {
				t.Fatalf("case %d: out-of-window write reached the sink: %+v", i, sent[len(sent)-1])
			}
			continue
		}
		sentBefore++
		h := sent[len(sent)-1]
		if h.LBA != tc.wantLBA || int(h.Count) != tc.wantBlk*bs {
			t.Fatalf("case %d: relayed [lba %d, %d bytes], want [lba %d, %d bytes]",
				i, h.LBA, h.Count, tc.wantLBA, tc.wantBlk*bs)
		}
		fs.mu.Lock()
		data := fs.data[len(fs.data)-1]
		fs.mu.Unlock()
		if len(data) != tc.wantBlk*bs || data[0] != tc.wantFirst {
			t.Fatalf("case %d: payload len %d first %d, want len %d first %d",
				i, len(data), data[0], tc.wantBlk*bs, tc.wantFirst)
		}
	}
}

func TestStaleAckDeposesAndFailsPending(t *testing.T) {
	fs := &fakeSender{}
	r, stale := newTestReplicator(nil)
	r.Attach(fs)

	st1 := make(chan protocol.Status, 1)
	st2 := make(chan protocol.Status, 1)
	r.Forward(1, []byte{1}, nil, 0, 0, func(s protocol.Status) { st1 <- s })
	r.Forward(2, []byte{2}, nil, 0, 0, func(s protocol.Status) { st2 <- s })

	// Backup acks the first forward with StaleEpoch at a higher epoch.
	ack := fs.sent()[0]
	ack.Flags = protocol.FlagResponse
	ack.Status = protocol.StatusStaleEpoch
	ack.Epoch = 9
	r.HandleAck(&ack)

	if got := <-st1; got != protocol.StatusStaleEpoch {
		t.Fatalf("first forward status %v", got)
	}
	// The whole session closes stale: the second pending forward fails
	// the same way rather than hanging.
	select {
	case got := <-st2:
		if got != protocol.StatusStaleEpoch {
			t.Fatalf("second forward status %v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("second pending forward hung after deposition")
	}
	if *stale != 9 {
		t.Fatalf("OnStale saw epoch %d, want 9", *stale)
	}
	if r.Live() {
		t.Fatal("session still live after deposition")
	}
	// Post-deposition forwards degrade to standalone.
	if r.Forward(3, []byte{3}, nil, 0, 0, nil) {
		t.Fatal("forwarded after deposition")
	}
}

func TestDetachDegradesPendingToStandaloneAck(t *testing.T) {
	fs := &fakeSender{}
	r, _ := newTestReplicator(nil)
	tok := r.Attach(fs)

	got := make(chan protocol.Status, 1)
	r.Forward(1, []byte{1}, nil, 0, 0, func(s protocol.Status) { got <- s })
	r.Detach(tok, protocol.StatusOK)
	if st := <-got; st != protocol.StatusOK {
		t.Fatalf("detach completed pending with %v, want OK (degraded ack)", st)
	}
	if r.Live() {
		t.Fatal("live after detach")
	}
	// Stale token: a second detach must be a no-op.
	r.Detach(tok, protocol.StatusStaleEpoch)
}

func TestAttachSupersedesOldSession(t *testing.T) {
	fs1, fs2 := &fakeSender{}, &fakeSender{}
	r, _ := newTestReplicator(nil)
	tok1 := r.Attach(fs1)
	got := make(chan protocol.Status, 1)
	r.Forward(1, []byte{1}, nil, 0, 0, func(s protocol.Status) { got <- s })

	tok2 := r.Attach(fs2)
	// Old session's pending forward degrades, not hangs.
	if st := <-got; st != protocol.StatusOK {
		t.Fatalf("superseded pending status %v", st)
	}
	// Detaching the stale token must not kill the new session.
	r.Detach(tok1, protocol.StatusOK)
	if !r.Live() {
		t.Fatal("new session killed by stale detach")
	}
	r.Detach(tok2, protocol.StatusOK)
}

// TestCatchupStreamsWholeDeviceSelfPaced drives the catch-up stream with a
// fake sender that acks each chunk, and verifies full coverage in order.
func TestCatchupStreamsWholeDeviceSelfPaced(t *testing.T) {
	const size = 4096 // 4 chunks of 1024
	backend := storage.NewMem(size)
	pattern := make([]byte, size)
	for i := range pattern {
		pattern[i] = byte(i % 251)
	}
	if _, err := backend.WriteAt(pattern, 0); err != nil {
		t.Fatal(err)
	}

	r, _ := newTestReplicator(backend)
	rebuilt := make([]byte, size)
	acker := &ackingSender{r: r, rebuilt: rebuilt}
	r.Attach(acker)

	deadline := time.Now().Add(5 * time.Second)
	for !r.CaughtUp() {
		if time.Now().After(deadline) {
			t.Fatal("catch-up never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	acker.mu.Lock()
	defer acker.mu.Unlock()
	for i := range pattern {
		if rebuilt[i] != pattern[i] {
			t.Fatalf("catch-up byte %d = %d, want %d", i, rebuilt[i], pattern[i])
		}
	}
	if acker.chunks != 4 {
		t.Fatalf("catch-up used %d chunks, want 4", acker.chunks)
	}
}

// ackingSender plays the backup role for catch-up: applies each chunk to
// the rebuilt image and acks it (asynchronously, as the real ack path is).
type ackingSender struct {
	r       *Replicator
	mu      sync.Mutex
	rebuilt []byte
	chunks  int
}

func (a *ackingSender) SendToReplica(hdr *protocol.Header, payload []byte, lease *bufpool.Buf) {
	bufpool.ReleaseIf(lease)
	a.mu.Lock()
	off := int64(hdr.LBA) * protocol.BlockSize
	copy(a.rebuilt[off:], payload)
	a.chunks++
	a.mu.Unlock()
	ack := *hdr
	ack.Flags = protocol.FlagResponse
	ack.Status = protocol.StatusOK
	go a.r.HandleAck(&ack)
}

// applierStub implements Applier over a byte slice for Backup loop tests.
type applierStub struct {
	mu      sync.Mutex
	data    []byte
	epoch   uint16
	backup  bool
	applied int
}

func (a *applierStub) ApplyReplicate(lba uint32, payload []byte, epoch uint16) protocol.Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.backup {
		return protocol.StatusStaleEpoch
	}
	if epoch < a.epoch {
		return protocol.StatusStaleEpoch
	}
	if epoch > a.epoch {
		a.epoch = epoch
	}
	off := int64(lba) * protocol.BlockSize
	if off+int64(len(payload)) > int64(len(a.data)) {
		return protocol.StatusBadRequest
	}
	copy(a.data[off:], payload)
	a.applied++
	return protocol.StatusOK
}
func (a *applierStub) AdoptEpoch(e uint16) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e > a.epoch {
		a.epoch = e
	}
}
func (a *applierStub) ClusterEpoch() uint16 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}
func (a *applierStub) IsBackupRole() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.backup
}

// TestBackupJoinAppliesStream runs a real Backup loop against a fake
// primary listener speaking the join + replicate protocol.
func TestBackupJoinAppliesStream(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	app := &applierStub{data: make([]byte, 4096), epoch: 1, backup: true}
	serve := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			serve <- err
			return
		}
		defer c.Close()
		// Expect OpJoin; answer OK at epoch 5.
		m, err := protocol.ReadMessage(c)
		if err != nil || m.Header.Opcode != protocol.OpJoin {
			serve <- err
			return
		}
		rsp := protocol.Header{Opcode: protocol.OpJoin, Flags: protocol.FlagResponse, Epoch: 5}
		if err := protocol.WriteMessage(c, &rsp, nil); err != nil {
			serve <- err
			return
		}
		// Push one replicated write, read the ack.
		rep := protocol.Header{Opcode: protocol.OpReplicate, Epoch: 5, Cookie: 77, LBA: 2, Count: protocol.BlockSize}
		payload := make([]byte, protocol.BlockSize)
		payload[0] = 0xEE
		if err := protocol.WriteMessage(c, &rep, payload); err != nil {
			serve <- err
			return
		}
		ack, err := protocol.ReadMessage(c)
		if err != nil {
			serve <- err
			return
		}
		if ack.Header.Cookie != 77 || ack.Header.Status != protocol.StatusOK ||
			!ack.Header.IsResponse() {
			t.Errorf("bad ack: %+v", ack.Header)
		}
		serve <- nil
	}()

	bk := StartBackup(ln.Addr().String(), app, BackupOptions{})
	defer bk.Stop()
	if err := <-serve; err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for bk.Applied() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("backup never applied the replicated write")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if app.ClusterEpoch() != 5 {
		t.Fatalf("backup epoch %d after join, want 5 (adopted)", app.ClusterEpoch())
	}
	if app.data[2*protocol.BlockSize] != 0xEE {
		t.Fatal("replicated write not applied at the right offset")
	}
	if bk.Joins() != 1 {
		t.Fatalf("joins %d, want 1", bk.Joins())
	}
}

// TestBackupStopsWhenPromoted: flipping the role off ends the join loop.
func TestBackupStopsWhenPromoted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			m, err := protocol.ReadMessage(c)
			if err == nil && m.Header.Opcode == protocol.OpJoin {
				rsp := protocol.Header{Opcode: protocol.OpJoin, Flags: protocol.FlagResponse, Epoch: 1}
				protocol.WriteMessage(c, &rsp, nil)
			}
			c.Close() // drop the session; backup will retry while still backup
		}
	}()

	app := &applierStub{data: make([]byte, 512), epoch: 1, backup: true}
	bk := StartBackup(ln.Addr().String(), app, BackupOptions{RetryBase: 5 * time.Millisecond})
	time.Sleep(30 * time.Millisecond)
	app.mu.Lock()
	app.backup = false // promotion
	app.mu.Unlock()
	done := make(chan struct{})
	go func() { bk.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("backup loop did not stop after promotion")
	}
}
