// Package cluster is the robustness layer that turns a hardened single
// ReFlex server into a replicated primary/backup pair: write replication
// over the existing wire protocol (OpReplicate), a catch-up stream for a
// (re)joining backup, epoch fencing against split-brain, and the backup
// join loop. The client-side half — epoch-fenced failover and hedged
// reads — lives in internal/client (DialCluster).
//
// Replication model (kept deliberately simple, in the spirit of the
// paper's §4.3 control plane assumption that tenants can be migrated off
// a degraded node):
//
//   - One primary, one backup, joined by a backup-initiated TCP
//     connection speaking the normal protocol. The backup sends OpJoin;
//     from then on the primary pushes OpReplicate requests (epoch-stamped
//     acked writes) down that connection and reads acks back off it.
//   - The primary defers each client write ack until the backup acks the
//     replicated copy, so every acked write survives a primary kill.
//   - On (re)join the primary streams a catch-up of the device behind the
//     live write stream; chunk reads and sends are serialized with live
//     forwards so a stale chunk can never overwrite a newer write.
//   - Epochs fence a deposed primary: a backup whose epoch moved past the
//     sender's acks with StatusStaleEpoch, and the old primary stops
//     accepting writes.
//
// Replication covers device 0; multi-device replication would run one
// replicator per device and is out of scope here.
package cluster

import (
	"sync"
	"sync/atomic"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/storage"
)

// ReplicaSender delivers one framed message to the attached backup. The
// server adapts its connection write path to this; send failures tear the
// connection down out-of-band (the replicator sees a Detach).
//
// lease, when non-nil, is a reference on the pooled buffer backing
// payload that the sender now owns: it must be released once the bytes
// are on the wire (or the send is abandoned). Catch-up chunks pass nil —
// their buffer is private to the catch-up goroutine.
type ReplicaSender interface {
	SendToReplica(hdr *protocol.Header, payload []byte, lease *bufpool.Buf)
}

// ReplicatorConfig configures the primary-side replicator.
type ReplicatorConfig struct {
	// Backend is device 0's storage, read by the catch-up stream.
	Backend storage.Backend
	// Epoch returns the server's current cluster epoch, stamped on every
	// replicated write.
	Epoch func() uint16
	// OnStale is called when the backup acks with StatusStaleEpoch: a
	// higher epoch exists, this primary is deposed and must fence itself.
	OnStale func(epoch uint16)
	// OnForward/OnAck/OnCatchup are metrics hooks (may be nil).
	OnForward func()
	OnAck     func()
	OnCatchup func(bytes int)
	// ChunkBytes sizes catch-up chunks (default 256 KiB).
	ChunkBytes int
}

// Replicator is the primary's half of write replication. At most one
// backup session is attached at a time; a new Attach supersedes the old.
// All methods are safe for concurrent use; a nil *Replicator forwards
// nothing (Forward reports false), so standalone servers need no guards.
type Replicator struct {
	cfg ReplicatorConfig

	mu   sync.Mutex
	sess *session

	cookie atomic.Uint64

	forwarded atomic.Uint64
	acked     atomic.Uint64
}

// session is one attached backup connection.
type session struct {
	r      *Replicator
	sender ReplicaSender

	// Ranged sessions (migration sinks attached via AttachRange) only see
	// writes and catch-up chunks intersecting [rangeStart, rangeStart+
	// rangeBlocks) LBA blocks, and receive a non-response OpJoin marker
	// frame when the ranged catch-up completes. rangeBlocks == 0 means the
	// whole device (a classic backup join).
	rangeStart  uint32
	rangeBlocks uint32

	// sendMu serializes every message sent to the backup — and, for
	// catch-up chunks, the [backend read + send] pair — so a chunk read
	// before a live write landed can never be sent after that write's
	// forward and overwrite it on the backup.
	sendMu sync.Mutex

	pmu     sync.Mutex
	pending map[uint64]func(protocol.Status)
	closed  bool

	caughtUp atomic.Bool
	stop     chan struct{}
}

// NewReplicator builds a primary-side replicator.
func NewReplicator(cfg ReplicatorConfig) *Replicator {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 256 << 10
	}
	return &Replicator{cfg: cfg}
}

// Forwarded and Acked report replication traffic counters.
func (r *Replicator) Forwarded() uint64 {
	if r == nil {
		return 0
	}
	return r.forwarded.Load()
}
func (r *Replicator) Acked() uint64 {
	if r == nil {
		return 0
	}
	return r.acked.Load()
}

// Live reports whether a backup session is attached (forwards are
// happening). The backup may still be catching up; see CaughtUp.
func (r *Replicator) Live() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sess != nil
}

// CaughtUp reports whether the attached backup has received the full
// catch-up stream (it is a valid failover target for all data, not just
// writes since it joined).
func (r *Replicator) CaughtUp() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	s := r.sess
	r.mu.Unlock()
	return s != nil && s.caughtUp.Load()
}

// Attach installs sender as the backup session, superseding any previous
// one (whose pending forwards complete with detachStatus semantics, see
// Detach), and starts the catch-up stream. Returns the session token used
// to detach exactly this session later.
func (r *Replicator) Attach(sender ReplicaSender) any {
	return r.AttachRange(sender, 0, 0)
}

// AttachRange is Attach restricted to the LBA-block window [firstLBA,
// firstLBA+blockCount): only intersecting writes are forwarded, the
// catch-up stream covers only that window, and a non-response OpJoin
// marker frame (echoing the window in LBA/Count) is sent when the
// catch-up finishes — the migration sink's signal that it holds every
// byte of the shard except what live forwards will still deliver.
// blockCount == 0 selects the whole device and no marker (plain Attach).
func (r *Replicator) AttachRange(sender ReplicaSender, firstLBA, blockCount uint32) any {
	if r == nil {
		return nil
	}
	s := &session{
		r:           r,
		sender:      sender,
		rangeStart:  firstLBA,
		rangeBlocks: blockCount,
		pending:     make(map[uint64]func(protocol.Status)),
		stop:        make(chan struct{}),
	}
	r.mu.Lock()
	old := r.sess
	r.sess = s
	r.mu.Unlock()
	if old != nil {
		old.close(protocol.StatusOK)
	}
	go s.catchup()
	return s
}

// Detach removes the session identified by token (ignored if a newer
// session already superseded it). Pending forwards complete with st:
// StatusOK degrades the primary to standalone acks (the write is durable
// locally and there is no backup left to lose it to), StatusStaleEpoch
// propagates a deposition to waiting clients.
func (r *Replicator) Detach(token any, st protocol.Status) {
	if r == nil || token == nil {
		return
	}
	s, ok := token.(*session)
	if !ok {
		return
	}
	r.mu.Lock()
	if r.sess == s {
		r.sess = nil
	}
	r.mu.Unlock()
	s.close(st)
}

// close fails every pending forward with st and stops the catch-up
// stream. Idempotent.
func (s *session) close(st protocol.Status) {
	s.pmu.Lock()
	if s.closed {
		s.pmu.Unlock()
		return
	}
	s.closed = true
	pending := s.pending
	s.pending = nil
	close(s.stop)
	s.pmu.Unlock()
	for _, done := range pending {
		done(st)
	}
}

// Forward replicates one locally applied write to the backup. It reports
// false when no backup is attached — the caller acks the client
// immediately (standalone/degraded mode). When it reports true, done will
// be called exactly once with the backup's ack status (or the detach
// status if the session dies first); the caller must defer the client ack
// until then.
//
// lease, when non-nil, is the pooled buffer backing payload. Forward
// retains its own reference before handing it to the sender (which
// releases it after the backup-bound flush), so the caller may release
// its reference as soon as Forward returns — regardless of the return
// value.
//
// trace/parent, when non-zero, propagate the originating request's trace
// context: the forwarded frame carries a FlagTraced trailer so the
// backup (or migration sink) records its apply as a child span of the
// primary's serve span. The trailer is appended to a private pooled copy
// — payload may be a clip sub-slice of a shared buffer that must not be
// grown in place.
func (r *Replicator) Forward(lba uint32, payload []byte, lease *bufpool.Buf, trace, parent uint64, done func(protocol.Status)) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	s := r.sess
	r.mu.Unlock()
	if s == nil {
		return false
	}
	lba, payload, ok := s.clip(lba, payload)
	if !ok {
		return false
	}
	cookie := r.cookie.Add(1)
	s.pmu.Lock()
	if s.closed {
		s.pmu.Unlock()
		return false
	}
	s.pending[cookie] = done
	s.pmu.Unlock()

	hdr := protocol.Header{
		Opcode: protocol.OpReplicate,
		Epoch:  r.cfg.Epoch(),
		Cookie: cookie,
		LBA:    lba,
		Count:  uint32(len(payload)),
	}
	if trace != 0 {
		cp := bufpool.Get(len(payload) + protocol.TraceSize)
		payload = protocol.AppendTrace(append(cp.Bytes()[:0], payload...), trace, parent)
		lease = cp // ownership transfers to the sender; no Retain
		hdr.Flags = protocol.FlagTraced
	} else if lease != nil {
		lease.Retain()
	}
	s.sendMu.Lock()
	s.sender.SendToReplica(&hdr, payload, lease)
	s.sendMu.Unlock()
	r.forwarded.Add(1)
	if r.cfg.OnForward != nil {
		r.cfg.OnForward()
	}
	return true
}

// clip narrows a write to the session's range filter. Unranged sessions
// (classic backups) pass everything through untouched; ranged sessions
// (migration sinks) must not see a single out-of-window block, because
// the sink relays frames verbatim to a destination whose shard-map
// enforcement requires the ENTIRE range to be owned — a client write
// legally straddling the moving shard's boundary at the source (which
// owns both sides) would be refused whole with StatusWrongShard at the
// destination, killing the sink and aborting the move. The trimmed-off
// remainder is not lost: it belongs to shards the source keeps owning
// and reaches the pair's backup via the unranged session.
//
// ok is false when the write misses the window entirely (nothing to
// forward). The returned payload is a sub-slice of the input, so the
// caller's lease still backs it.
func (s *session) clip(lba uint32, payload []byte) (uint32, []byte, bool) {
	if s.rangeBlocks == 0 {
		return lba, payload, true
	}
	blocks := uint32(len(payload) / protocol.BlockSize)
	if blocks == 0 {
		// Sub-block frame: intersection test only, nothing to trim.
		blocks = 1
		if lba >= s.rangeStart && lba < s.rangeStart+s.rangeBlocks {
			return lba, payload, true
		}
		return 0, nil, false
	}
	lo, hi := s.rangeStart, s.rangeStart+s.rangeBlocks
	if lba >= hi || lba+blocks <= lo {
		return 0, nil, false
	}
	if lba < lo {
		payload = payload[(lo-lba)*protocol.BlockSize:]
		lba = lo
	}
	if end := lba + uint32(len(payload))/protocol.BlockSize; end > hi {
		payload = payload[:(hi-lba)*protocol.BlockSize]
	}
	return lba, payload, true
}

// Pending returns the number of forwards awaiting a backup ack on the
// current session — the migration coordinator polls this (over OpPing)
// to know when the drain after a cutover has quiesced.
func (r *Replicator) Pending() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	s := r.sess
	r.mu.Unlock()
	if s == nil {
		return 0
	}
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return len(s.pending)
}

// HandleAck completes the pending forward matching a replication ack read
// off the backup connection. A StatusStaleEpoch ack means the backup's
// epoch moved past ours: the primary is deposed — OnStale fires and the
// session closes, failing the remaining pending forwards the same way.
func (r *Replicator) HandleAck(hdr *protocol.Header) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.sess
	r.mu.Unlock()
	if s == nil {
		return
	}
	s.pmu.Lock()
	done, ok := s.pending[hdr.Cookie]
	if ok {
		delete(s.pending, hdr.Cookie)
	}
	s.pmu.Unlock()
	if ok {
		r.acked.Add(1)
		if r.cfg.OnAck != nil {
			r.cfg.OnAck()
		}
		done(hdr.Status)
	}
	if hdr.Status == protocol.StatusStaleEpoch {
		if r.cfg.OnStale != nil {
			r.cfg.OnStale(hdr.Epoch)
		}
		r.Detach(s, protocol.StatusStaleEpoch)
	}
}

// catchup streams the device to the backup in chunks, serialized against
// live forwards, each chunk acked before the next is read (self-pacing:
// the stream never gets ahead of what the backup applied, and live
// forwards interleave freely between chunks).
func (s *session) catchup() {
	r := s.r
	if r.cfg.Backend == nil {
		s.caughtUp.Store(true)
		s.sendMarker()
		return
	}
	size := r.cfg.Backend.Size()
	start := int64(0)
	if s.rangeBlocks != 0 {
		start = int64(s.rangeStart) * protocol.BlockSize
		if end := start + int64(s.rangeBlocks)*protocol.BlockSize; end < size {
			size = end
		}
	}
	chunk := int64(r.cfg.ChunkBytes)
	buf := make([]byte, chunk)
	for off := start; off < size; off += chunk {
		n := chunk
		if off+n > size {
			n = size - off
		}
		ackCh := make(chan protocol.Status, 1)
		cookie := r.cookie.Add(1)
		s.pmu.Lock()
		if s.closed {
			s.pmu.Unlock()
			return
		}
		s.pending[cookie] = func(st protocol.Status) { ackCh <- st }
		s.pmu.Unlock()

		// Read and send under sendMu: a live forward either lands before
		// this chunk's read (the chunk carries it) or after its send (the
		// backup applies it on top). Either order is correct.
		s.sendMu.Lock()
		if _, err := r.cfg.Backend.ReadAt(buf[:n], off); err != nil {
			s.sendMu.Unlock()
			s.close(protocol.StatusOK)
			return
		}
		hdr := protocol.Header{
			Opcode: protocol.OpReplicate,
			Epoch:  r.cfg.Epoch(),
			Cookie: cookie,
			LBA:    uint32(off / protocol.BlockSize),
			Count:  uint32(n),
		}
		s.sender.SendToReplica(&hdr, buf[:n], nil)
		s.sendMu.Unlock()

		select {
		case st := <-ackCh:
			if st != protocol.StatusOK {
				return // deposed or backup refused; session is closing
			}
			if r.cfg.OnCatchup != nil {
				r.cfg.OnCatchup(int(n))
			}
		case <-s.stop:
			return
		}
	}
	s.caughtUp.Store(true)
	s.sendMarker()
}

// sendMarker emits the catch-up-complete marker on ranged sessions: a
// non-response OpJoin frame echoing the window. The sink treats it as
// "every block of the shard is now on my device except what the live
// forward stream will still deliver" — the coordinator's green light for
// the epoch-fenced cutover. Unranged (classic backup) sessions send
// nothing, preserving the original join protocol.
func (s *session) sendMarker() {
	if s.rangeBlocks == 0 {
		return
	}
	s.pmu.Lock()
	closed := s.closed
	s.pmu.Unlock()
	if closed {
		return
	}
	hdr := protocol.Header{
		Opcode: protocol.OpJoin,
		Epoch:  s.r.cfg.Epoch(),
		LBA:    s.rangeStart,
		Count:  s.rangeBlocks,
	}
	s.sendMu.Lock()
	s.sender.SendToReplica(&hdr, nil, nil)
	s.sendMu.Unlock()
}
