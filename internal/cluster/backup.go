package cluster

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/protocol"
)

// Applier is the backup server's replication surface: internal/server
// implements it. Replicated writes bypass the QoS scheduler and the token
// accounting entirely — replication is infrastructure traffic, not tenant
// traffic, so it must not charge (or be shed against) any tenant bucket.
type Applier interface {
	// ApplyReplicate applies one replicated write (or catch-up chunk) to
	// device 0 and returns the ack status. StatusStaleEpoch means this
	// server's epoch moved past the sender's — the deposed-primary fence.
	ApplyReplicate(lba uint32, payload []byte, epoch uint16) protocol.Status
	// AdoptEpoch raises the server's epoch to e if higher (join
	// handshake convergence).
	AdoptEpoch(e uint16)
	// ClusterEpoch returns the server's current epoch.
	ClusterEpoch() uint16
	// IsBackupRole reports whether the server still runs as a backup;
	// a promotion flips it off and the join loop exits.
	IsBackupRole() bool
}

// TracedApplier is an optional extension of Applier: when the applier
// implements it, replicated frames that carried a FlagTraced trailer are
// applied through ApplyReplicateTraced so the backup can record the
// apply as a child span in the write's cross-node trace timeline.
// Appliers that don't implement it lose nothing but the span.
type TracedApplier interface {
	ApplyReplicateTraced(lba uint32, payload []byte, epoch uint16, trace, parent uint64) protocol.Status
}

// BackupOptions tune the backup join loop.
type BackupOptions struct {
	// RetryBase/RetryMax bound the reconnect backoff when the primary is
	// unreachable (defaults 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Dialer optionally replaces net.Dial (fault-injection harnesses).
	Dialer func(addr string) (net.Conn, error)
	// Logf receives join-loop events (may be nil).
	Logf func(format string, args ...any)
}

// Backup runs the backup server's side of replication: it dials the
// primary, sends OpJoin, applies the catch-up stream and live replicated
// writes, and acks each one, re-joining with backoff when the connection
// dies. The loop exits when Stop is called or the server is promoted.
type Backup struct {
	primary string
	app     Applier
	opts    BackupOptions

	mu   sync.Mutex
	conn net.Conn

	applied atomic.Uint64
	joins   atomic.Uint64
	stopped atomic.Bool
	done    chan struct{}
}

// StartBackup launches the join loop against the primary's address.
func StartBackup(primaryAddr string, app Applier, opts BackupOptions) *Backup {
	if opts.RetryBase <= 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	b := &Backup{primary: primaryAddr, app: app, opts: opts, done: make(chan struct{})}
	go b.loop()
	return b
}

// Applied returns how many replicated writes (and catch-up chunks) this
// backup has applied.
func (b *Backup) Applied() uint64 { return b.applied.Load() }

// Joins returns how many times the backup has (re)joined the primary.
func (b *Backup) Joins() uint64 { return b.joins.Load() }

// Stop halts the join loop and closes any live connection. It does not
// block on the loop goroutine beyond closing its connection.
func (b *Backup) Stop() {
	if b.stopped.Swap(true) {
		return
	}
	b.mu.Lock()
	c := b.conn
	b.mu.Unlock()
	if c != nil {
		c.Close()
	}
	<-b.done
}

func (b *Backup) logf(format string, args ...any) {
	if b.opts.Logf != nil {
		b.opts.Logf(format, args...)
	}
}

func (b *Backup) dial() (net.Conn, error) {
	if b.opts.Dialer != nil {
		return b.opts.Dialer(b.primary)
	}
	return net.Dial("tcp", b.primary)
}

func (b *Backup) loop() {
	defer close(b.done)
	backoff := b.opts.RetryBase
	for !b.stopped.Load() && b.app.IsBackupRole() {
		if err := b.session(); err != nil {
			b.logf("cluster: backup session: %v", err)
		}
		if b.stopped.Load() || !b.app.IsBackupRole() {
			return
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > b.opts.RetryMax {
			backoff = b.opts.RetryMax
		}
	}
}

// session runs one join: handshake, then apply-and-ack until the
// connection dies or the backup is promoted/stopped.
func (b *Backup) session() error {
	c, err := b.dial()
	if err != nil {
		return err
	}
	b.mu.Lock()
	if b.stopped.Load() {
		b.mu.Unlock()
		c.Close()
		return nil
	}
	b.conn = c
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		b.conn = nil
		b.mu.Unlock()
		c.Close()
	}()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 256<<10)
	bw := bufio.NewWriterSize(c, 64<<10)

	// Join handshake: offer our epoch, adopt the primary's (max-merge on
	// both sides keeps the pair converged after restarts).
	join := protocol.Header{Opcode: protocol.OpJoin, Epoch: b.app.ClusterEpoch()}
	if err := protocol.WriteMessage(bw, &join, nil); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	m, err := protocol.ReadMessage(br)
	if err != nil {
		return err
	}
	if m.Header.Status != protocol.StatusOK {
		return &JoinRefusedError{Status: m.Header.Status}
	}
	b.app.AdoptEpoch(m.Header.Epoch)
	b.joins.Add(1)
	b.logf("cluster: joined primary %s at epoch %d", b.primary, b.app.ClusterEpoch())

	// Steady-state apply loop on pooled buffers: one reused Message plus a
	// per-iteration lease sized to the incoming frame (released as soon as
	// the write is applied). Acks coalesce adaptively — each ack is written
	// into bw and flushed only when no further replicated frame is already
	// buffered, so a burst of live forwards costs one flush, while the
	// ack-paced catch-up stream (primary waits for each ack before the next
	// chunk) still sees every ack immediately: between chunks br.Buffered()
	// is always zero.
	var msg protocol.Message
	var lease *bufpool.Buf
	alloc := func(n int) []byte {
		lease = bufpool.Get(n)
		return lease.Bytes()
	}
	for !b.stopped.Load() && b.app.IsBackupRole() {
		lease = nil
		if err := protocol.ReadMessageInto(br, &msg, alloc); err != nil {
			bufpool.ReleaseIf(lease)
			return err
		}
		if msg.Header.Opcode != protocol.OpReplicate || msg.Header.IsResponse() {
			bufpool.ReleaseIf(lease)
			continue // tolerate anything else on the channel
		}
		var st protocol.Status
		if ta, ok := b.app.(TracedApplier); ok && msg.TraceID != 0 {
			st = ta.ApplyReplicateTraced(msg.Header.LBA, msg.Payload, msg.Header.Epoch, msg.TraceID, msg.ParentSpan)
		} else {
			st = b.app.ApplyReplicate(msg.Header.LBA, msg.Payload, msg.Header.Epoch)
		}
		bufpool.ReleaseIf(lease) // payload applied; the lease is done
		if st == protocol.StatusOK {
			b.applied.Add(1)
		}
		ack := protocol.Header{
			Opcode: protocol.OpReplicate,
			Flags:  protocol.FlagResponse,
			Status: st,
			Epoch:  b.app.ClusterEpoch(),
			Cookie: msg.Header.Cookie,
			LBA:    msg.Header.LBA,
			Count:  msg.Header.Count,
		}
		if err := protocol.WriteMessage(bw, &ack, nil); err != nil {
			return err
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		if st == protocol.StatusStaleEpoch {
			// We fenced the sender; it will detach. Flush the fencing ack
			// (it may still be sitting in bw) and drop the session so a
			// genuinely newer primary can be joined (not this one).
			if err := bw.Flush(); err != nil {
				return err
			}
			return nil
		}
	}
	return bw.Flush()
}

// JoinRefusedError reports a primary that refused the OpJoin handshake.
type JoinRefusedError struct{ Status protocol.Status }

func (e *JoinRefusedError) Error() string {
	return "cluster: join refused: " + e.Status.String()
}
