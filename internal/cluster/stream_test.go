package cluster

import (
	"errors"
	"sync"
	"testing"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/protocol"
)

// streamAckSender records every frame a diff stream sends and acks data
// chunks (Len > 0) back into the stream, playing the restore receiver.
type streamAckSender struct {
	s    *Stream
	mu   sync.Mutex
	hdrs []protocol.Header
}

func (a *streamAckSender) SendToReplica(hdr *protocol.Header, payload []byte, lease *bufpool.Buf) {
	bufpool.ReleaseIf(lease)
	a.mu.Lock()
	a.hdrs = append(a.hdrs, *hdr)
	a.mu.Unlock()
	if hdr.Len > 0 {
		ack := *hdr
		ack.Flags = protocol.FlagResponse
		ack.Status = protocol.StatusOK
		go a.s.HandleAck(&ack)
	}
}

func (a *streamAckSender) frames() []protocol.Header {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]protocol.Header(nil), a.hdrs...)
}

// TestStreamCompleteMarker: a healthy stream ships every range and ends
// with a zero-length, zero-count StatusOK marker.
func TestStreamCompleteMarker(t *testing.T) {
	sender := &streamAckSender{}
	var complete bool
	s := NewStream(StreamConfig{
		Op:     protocol.OpVolStream,
		Epoch:  func() uint16 { return 3 },
		ReadAt: func(p []byte, off int64) error { return nil },
		Sender: sender,
		OnDone: func(c bool) { complete = c },
	})
	sender.s = s
	s.Run([]StreamRange{{Off: 0, Len: 2 * protocol.BlockSize}})
	if !complete {
		t.Fatal("OnDone(complete) not true for a fully acked stream")
	}
	fr := sender.frames()
	if len(fr) == 0 {
		t.Fatal("no frames sent")
	}
	last := fr[len(fr)-1]
	if last.Len != 0 || last.Count != 0 || last.Status != protocol.StatusOK {
		t.Fatalf("terminal frame = %+v, want OK marker", last)
	}
	if s.SentBytes() != 2*protocol.BlockSize {
		t.Fatalf("SentBytes = %d, want %d", s.SentBytes(), 2*protocol.BlockSize)
	}
}

// TestStreamAbortMarker: when the source read fails mid-stream while the
// receiver is still connected, the stream must send a terminal marker
// with a non-OK status — otherwise the receiver blocks forever waiting
// for chunks that will never come.
func TestStreamAbortMarker(t *testing.T) {
	sender := &streamAckSender{}
	reads := 0
	var complete = true
	s := NewStream(StreamConfig{
		Op:    protocol.OpVolStream,
		Epoch: func() uint16 { return 3 },
		ReadAt: func(p []byte, off int64) error {
			reads++
			if reads > 1 {
				return errors.New("backend died")
			}
			return nil
		},
		Sender:     sender,
		ChunkBytes: protocol.BlockSize,
		OnDone:     func(c bool) { complete = c },
	})
	sender.s = s
	s.Run([]StreamRange{{Off: 0, Len: 3 * protocol.BlockSize}})
	if complete {
		t.Fatal("OnDone(complete) true for an aborted stream")
	}
	if !s.Done() {
		t.Fatal("aborted stream not Done")
	}
	fr := sender.frames()
	if len(fr) != 2 {
		t.Fatalf("sent %d frames, want chunk + abort marker", len(fr))
	}
	last := fr[len(fr)-1]
	if last.Len != 0 || last.Count != 0 {
		t.Fatalf("terminal frame = %+v, want marker shape", last)
	}
	if last.Status == protocol.StatusOK {
		t.Fatal("abort marker carries StatusOK — receiver would treat the partial image as complete")
	}
}

// TestStreamClosedSendsNoMarker: a stream torn down by Close (receiver
// connection died) must not write anything more to the sender.
func TestStreamClosedSendsNoMarker(t *testing.T) {
	sender := &streamAckSender{}
	s := NewStream(StreamConfig{
		Op:     protocol.OpVolStream,
		Epoch:  func() uint16 { return 1 },
		ReadAt: func(p []byte, off int64) error { return nil },
		Sender: sender,
	})
	sender.s = s
	s.Close()
	s.Run([]StreamRange{{Off: 0, Len: protocol.BlockSize}})
	if n := len(sender.frames()); n != 0 {
		t.Fatalf("closed stream sent %d frames, want 0", n)
	}
}
