// Diff streams: the OpJoin self-paced catch-up machinery generalized to
// arbitrary byte ranges, used by OpVolStream to ship a snapshot diff
// (DESIGN.md §18) to a backup/restore receiver. The shape is identical to
// session.catchup — chunked reads sent one-at-a-time, each waiting for
// the receiver's ack before the next read, ending with a zero-length
// marker frame — but the source is a volume generation image instead of
// the raw device, and the ranges are the diff's extents instead of the
// whole LBA space. Because every chunk waits out a full round trip, the
// stream is self-paced: it can never build a queue in front of
// latency-critical traffic, which is what keeps it best-effort without
// touching the QoS scheduler.
package cluster

import (
	"sync"
	"sync/atomic"

	"github.com/reflex-go/reflex/internal/protocol"
)

// StreamRange is one contiguous byte range to ship.
type StreamRange struct {
	Off int64 // byte offset in the stream's logical space (block-aligned)
	Len int64
}

// StreamConfig configures a diff stream.
type StreamConfig struct {
	// Op stamps every chunk and the final marker (OpVolStream).
	Op protocol.Opcode
	// Handle is echoed in every chunk's Header.Handle (the receiver's
	// request tag, so one connection can multiplex streams).
	Handle uint16
	// Epoch stamps chunks so a deposed server's stream is fenced like any
	// other replication traffic.
	Epoch func() uint16
	// ReadAt reads the source image (e.g. Volume.ReadAtGen at the diff's
	// upper generation).
	ReadAt func(p []byte, off int64) error
	// Sender delivers frames to the receiver's connection.
	Sender ReplicaSender
	// ChunkBytes bounds chunk payloads (default 256 KiB, clamped to
	// protocol.MaxPayload).
	ChunkBytes int
	// OnChunk observes shipped bytes (may be nil).
	OnChunk func(bytes int)
	// OnDone is called exactly once when the stream finishes or dies;
	// complete is true only if every range was acked and the end marker
	// sent (may be nil).
	OnDone func(complete bool)
}

// Stream ships a fixed list of ranges, self-paced by receiver acks.
type Stream struct {
	cfg    StreamConfig
	cookie atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]func(protocol.Status)
	closed  bool

	stop chan struct{}
	done atomic.Bool
	sent atomic.Uint64 // bytes acked so far
}

// NewStream builds a stream; Run starts shipping.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.ChunkBytes <= 0 || cfg.ChunkBytes > protocol.MaxPayload {
		cfg.ChunkBytes = 256 << 10
	}
	return &Stream{
		cfg:     cfg,
		pending: make(map[uint64]func(protocol.Status)),
		stop:    make(chan struct{}),
	}
}

// SentBytes reports acked stream progress.
func (s *Stream) SentBytes() uint64 { return s.sent.Load() }

// Done reports whether the stream has finished (completely or not).
func (s *Stream) Done() bool { return s.done.Load() }

// Close tears the stream down (receiver connection died). Idempotent.
func (s *Stream) Close() {
	s.pmu.Lock()
	if s.closed {
		s.pmu.Unlock()
		return
	}
	s.closed = true
	s.pending = nil
	s.pmu.Unlock()
	close(s.stop)
}

// HandleAck routes a receiver ack (a FlagResponse frame of the stream's
// opcode) to the chunk waiting on it.
func (s *Stream) HandleAck(hdr *protocol.Header) {
	s.pmu.Lock()
	cb := s.pending[hdr.Cookie]
	if cb != nil {
		delete(s.pending, hdr.Cookie)
	}
	s.pmu.Unlock()
	if cb != nil {
		cb(protocol.Status(hdr.Status))
	}
}

// Run ships every range in order, one chunk in flight at a time, then the
// end marker (a non-response frame with Len == 0 and Count == 0 — the
// OpJoin marker shape). If the stream dies while the receiver is still
// connected (source read error, refused ack), a marker with a non-OK
// Status is sent instead so the receiver fails fast rather than blocking
// forever on chunks that will never come. Blocks until complete or
// Closed; call from a dedicated goroutine.
func (s *Stream) Run(ranges []StreamRange) {
	complete := s.run(ranges)
	s.done.Store(true)
	if !complete {
		s.marker(protocol.StatusError)
	}
	if s.cfg.OnDone != nil {
		s.cfg.OnDone(complete)
	}
}

func (s *Stream) run(ranges []StreamRange) bool {
	buf := make([]byte, s.cfg.ChunkBytes)
	for _, rg := range ranges {
		off, left := rg.Off, rg.Len
		for left > 0 {
			n := int64(len(buf))
			if n > left {
				n = left
			}
			if !s.ship(buf[:n], off) {
				return false
			}
			off += n
			left -= n
		}
	}
	return s.marker(protocol.StatusOK)
}

// ship reads one chunk and sends it, waiting for the receiver's ack.
func (s *Stream) ship(p []byte, off int64) bool {
	if err := s.cfg.ReadAt(p, off); err != nil {
		return false
	}
	cookie := s.cookie.Add(1)
	ack := make(chan protocol.Status, 1)
	s.pmu.Lock()
	if s.closed {
		s.pmu.Unlock()
		return false
	}
	s.pending[cookie] = func(st protocol.Status) { ack <- st }
	s.pmu.Unlock()

	hdr := protocol.Header{
		Opcode: s.cfg.Op,
		Handle: s.cfg.Handle,
		Epoch:  s.cfg.Epoch(),
		Cookie: cookie,
		LBA:    uint32(off / protocol.BlockSize),
		Count:  uint32(len(p)),
		Len:    uint32(len(p)),
	}
	s.cfg.Sender.SendToReplica(&hdr, p, nil)
	select {
	case st := <-ack:
		if st != protocol.StatusOK {
			return false
		}
		s.sent.Add(uint64(len(p)))
		if s.cfg.OnChunk != nil {
			s.cfg.OnChunk(len(p))
		}
		return true
	case <-s.stop:
		return false
	}
}

// marker sends the terminal frame — StatusOK for a complete stream,
// non-OK for an abort; it is not acked. Skipped when the stream was
// Closed: the connection is gone and the frame would go nowhere. done is
// published before the frame so that by the time the receiver reads the
// marker, the sender side already counts as finished (a back-to-back
// stream request on the same connection must not see a busy slot).
func (s *Stream) marker(st protocol.Status) bool {
	s.pmu.Lock()
	closed := s.closed
	s.pmu.Unlock()
	if closed {
		return false
	}
	s.done.Store(true)
	hdr := protocol.Header{
		Opcode: s.cfg.Op,
		Handle: s.cfg.Handle,
		Epoch:  s.cfg.Epoch(),
		Status: st,
	}
	s.cfg.Sender.SendToReplica(&hdr, nil, nil)
	return true
}
