package sim

import "math/rand"

// RNG is a deterministic random source for a single simulation component.
// Every stochastic component owns its own RNG so that adding or removing one
// component never perturbs the random stream of another.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded deterministically from seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform value in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Exp returns an exponentially distributed duration with the given mean,
// used for Poisson (open-loop) arrival processes. The result is at least 1ns
// so that arrival events always advance the schedule.
func (g *RNG) Exp(mean Time) Time {
	d := Time(g.r.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// NewZipf returns a deterministic Zipf sampler over [0, n) with skew s
// (s > 1; larger is more skewed), for hot-spot workload generation.
func (g *RNG) NewZipf(s float64, n uint64) *rand.Zipf {
	return rand.NewZipf(g.r, s, 1, n-1)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomly shuffles n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
