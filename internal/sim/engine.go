// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing scheduled events in
// timestamp order. Events scheduled for the same instant execute in the
// order they were scheduled, which makes every simulation in this
// repository fully deterministic for a given seed.
//
// Two execution styles are supported:
//
//   - Callback style: components schedule closures with At/After and react
//     to each other through those callbacks. The flash device, network and
//     dataplane models use this style.
//   - Process style: sequential code (an application such as the FIO tester
//     or the graph engine) runs on a Proc, which can Sleep in virtual time
//     and Park until an event Wakes it. Processes and the engine hand
//     control back and forth, so at most one of them runs at any moment and
//     determinism is preserved.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time = int64

// Convenient duration units, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Event is a scheduled closure. It can be cancelled before it fires.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 when not queued
	fn    func()
}

// Time reports when the event is scheduled to fire.
func (ev *Event) Time() Time { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	executed uint64
	procs    int // live processes, for leak detection
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled (not yet executed) events.
func (e *Engine) Pending() int { return len(e.events) }

// Executed reports the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a bug in a simulation model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. A non-positive d runs
// the event at the current time, after all events already scheduled for the
// current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -1
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled for later instants remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
