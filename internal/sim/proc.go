package sim

import "fmt"

// Proc is a sequential process running in virtual time. A Proc executes on
// its own goroutine but is strictly interleaved with the engine: control is
// handed back and forth so that exactly one of {engine, some proc} runs at a
// time. This keeps simulations deterministic while letting application code
// (the FIO tester, the graph engine, the KV store) be written in ordinary
// blocking style.
//
// All Proc methods must be called from the proc's own goroutine, except
// Wake, which must be called from engine context (inside an event callback).
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked chan struct{}
	done   bool
	waking bool
}

// Spawn starts fn as a process at the current virtual time. fn begins
// executing when the engine reaches the spawning instant.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs++
	e.After(0, func() {
		go func() {
			defer func() {
				p.done = true
				p.eng.procs--
				p.parked <- struct{}{}
			}()
			fn(p)
		}()
		<-p.parked
	})
	return p
}

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// park hands control back to the engine and blocks until woken.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// wake transfers control to the process and blocks the engine until the
// process parks again (or finishes).
func (p *Proc) wake() {
	if p.done {
		panic(fmt.Sprintf("sim: waking finished proc %q", p.name))
	}
	p.waking = false
	p.resume <- struct{}{}
	<-p.parked
}

// Sleep suspends the process for d nanoseconds of virtual time.
func (p *Proc) Sleep(d Time) {
	p.eng.After(d, func() { p.wake() })
	p.park()
}

// Park suspends the process until another component calls Wake from engine
// context. Calling Park with no pending Wake source deadlocks the simulation
// exactly as a real lost wakeup would; models must guarantee a future Wake.
func (p *Proc) Park() { p.park() }

// Wake resumes a process suspended in Park. It must be called from engine
// context (an event callback), never from another process directly. If the
// target might not be parked yet (the waking event raced ahead), use a
// Completion instead.
func (p *Proc) Wake() { p.wake() }

// Completion is a one-shot synchronization point between an event callback
// and a process. The producer calls Complete from engine context; the
// consumer calls Wait from process context. Either order works, and Wait
// returns immediately if Complete already happened.
type Completion struct {
	p    *Proc
	done bool
	wait bool
}

// NewCompletion returns a completion owned by process p.
func (p *Proc) NewCompletion() *Completion {
	return &Completion{p: p}
}

// Complete marks the completion done and wakes the owner if it is waiting.
// Must be called from engine context. Completing twice panics.
func (c *Completion) Complete() {
	if c.done {
		panic("sim: Completion completed twice")
	}
	c.done = true
	if c.wait {
		c.wait = false
		c.p.wake()
	}
}

// Completed reports whether Complete has been called.
func (c *Completion) Completed() bool { return c.done }

// Wait blocks the owning process until Complete is called. Must be called
// from the owning process.
func (c *Completion) Wait() {
	if c.done {
		return
	}
	c.wait = true
	c.p.park()
}

// WaitGroup waits for a set of completions. It lets a process issue several
// asynchronous operations and block until all finish.
type WaitGroup struct {
	p       *Proc
	pending int
	waiting bool
}

// NewWaitGroup returns a wait group owned by process p.
func (p *Proc) NewWaitGroup() *WaitGroup {
	return &WaitGroup{p: p}
}

// Add registers n more operations that must call Done.
func (w *WaitGroup) Add(n int) { w.pending += n }

// Done marks one operation finished. Must be called from engine context.
func (w *WaitGroup) Done() {
	w.pending--
	if w.pending < 0 {
		panic("sim: WaitGroup Done without Add")
	}
	if w.pending == 0 && w.waiting {
		w.waiting = false
		w.p.wake()
	}
}

// Pending returns the number of outstanding operations.
func (w *WaitGroup) Pending() int { return w.pending }

// Wait blocks the owning process until all registered operations are done.
func (w *WaitGroup) Wait() {
	if w.pending == 0 {
		return
	}
	w.waiting = true
	w.p.park()
}
