package sim

import "testing"

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "core")
	var ends []Time
	e.At(0, func() {
		r.Schedule(10, func(end Time) { ends = append(ends, end) })
		r.Schedule(10, func(end Time) { ends = append(ends, end) })
		r.Schedule(10, func(end Time) { ends = append(ends, end) })
	})
	e.Run()
	want := []Time{10, 20, 30}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "core")
	var end2 Time
	e.At(0, func() { r.Schedule(10, nil) })
	// Submitted at t=50, long after the first job finished: starts at 50.
	e.At(50, func() { r.Schedule(10, func(end Time) { end2 = end }) })
	e.Run()
	if end2 != 60 {
		t.Fatalf("second job ended at %d, want 60", end2)
	}
}

func TestResourceBacklogAndIdle(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch")
	e.At(0, func() {
		if !r.Idle() {
			t.Error("new resource not idle")
		}
		r.Schedule(100, nil)
		if r.Backlog() != 100 {
			t.Errorf("Backlog = %d, want 100", r.Backlog())
		}
		if r.Idle() {
			t.Error("busy resource reported idle")
		}
	})
	e.At(200, func() {
		if !r.Idle() {
			t.Error("resource not idle after work drained")
		}
		if r.Backlog() != 0 {
			t.Errorf("Backlog = %d, want 0", r.Backlog())
		}
	})
	e.Run()
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch")
	e.At(0, func() { r.Schedule(50, nil) })
	e.At(100, func() {
		if got := r.Utilization(); got != 0.5 {
			t.Errorf("Utilization = %v, want 0.5", got)
		}
	})
	e.Run()
	if r.Jobs() != 1 {
		t.Fatalf("Jobs = %d, want 1", r.Jobs())
	}
	if r.BusyTime() != 50 {
		t.Fatalf("BusyTime = %d, want 50", r.BusyTime())
	}
}

func TestResourceNegativeServiceClamped(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch")
	e.At(0, func() {
		start, end := r.Schedule(-10, nil)
		if start != 0 || end != 0 {
			t.Errorf("negative service: start=%d end=%d, want 0,0", start, end)
		}
	})
	e.Run()
}

func TestResourceOccupy(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch")
	var end Time
	e.At(0, func() {
		r.Occupy(30) // background work, no callback
		r.Schedule(10, func(t2 Time) { end = t2 })
	})
	e.Run()
	if end != 40 {
		t.Fatalf("job behind Occupy ended at %d, want 40", end)
	}
}
