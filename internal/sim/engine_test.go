package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestEngineAfterZeroRunsAtNow(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(100, func() {
		e.After(0, func() {
			if e.Now() != 100 {
				t.Errorf("After(0) ran at %d, want 100", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("After(0) event never ran")
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(10, func() {
		e.After(-5, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(10*(i+1)), func() { order = append(order, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four events", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestEngineExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}

func TestEventTime(t *testing.T) {
	e := NewEngine()
	ev := e.At(42, func() {})
	if ev.Time() != 42 {
		t.Fatalf("Time = %d, want 42", ev.Time())
	}
}

func TestEngineManyEventsStress(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(1)
	var last Time = -1
	n := 0
	for i := 0; i < 10000; i++ {
		at := rng.Int63n(1_000_000)
		e.At(at, func() {
			if e.Now() < last {
				t.Errorf("time went backwards: %d after %d", e.Now(), last)
			}
			last = e.Now()
			n++
		})
	}
	e.Run()
	if n != 10000 {
		t.Fatalf("executed %d events, want 10000", n)
	}
}
