package sim

import "testing"

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Spawn("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(100)
		times = append(times, p.Now())
		p.Sleep(50)
		times = append(times, p.Now())
	})
	e.Run()
	want := []Time{0, 100, 150}
	if len(times) != 3 {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcParkWake(t *testing.T) {
	e := NewEngine()
	var woke Time
	var p *Proc
	p = e.Spawn("waiter", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.At(500, func() { p.Wake() })
	e.Run()
	if woke != 500 {
		t.Fatalf("woke at %d, want 500", woke)
	}
	if !p.Done() {
		t.Fatal("proc not done after Run")
	}
}

func TestCompletionWaitThenComplete(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("waiter", func(p *Proc) {
		c := p.NewCompletion()
		e.At(300, func() { c.Complete() })
		c.Wait()
		woke = p.Now()
	})
	e.Run()
	if woke != 300 {
		t.Fatalf("woke at %d, want 300", woke)
	}
}

func TestCompletionCompleteBeforeWait(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("waiter", func(p *Proc) {
		c := p.NewCompletion()
		e.After(10, func() { c.Complete() })
		p.Sleep(100) // completion fires while we sleep
		if !c.Completed() {
			t.Error("completion not done after it fired")
		}
		c.Wait() // must return immediately
		woke = p.Now()
	})
	e.Run()
	if woke != 100 {
		t.Fatalf("woke at %d, want 100 (Wait should not block)", woke)
	}
}

func TestCompletionDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("waiter", func(p *Proc) {
		c := p.NewCompletion()
		e.After(1, func() {
			c.Complete()
			defer func() {
				if recover() == nil {
					t.Error("double Complete did not panic")
				}
			}()
			c.Complete()
		})
		p.Sleep(10)
	})
	e.Run()
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("fanout", func(p *Proc) {
		wg := p.NewWaitGroup()
		wg.Add(3)
		e.At(10, func() { wg.Done() })
		e.At(30, func() { wg.Done() })
		e.At(20, func() { wg.Done() })
		wg.Wait()
		woke = p.Now()
	})
	e.Run()
	if woke != 30 {
		t.Fatalf("woke at %d, want 30 (last Done)", woke)
	}
}

func TestWaitGroupAlreadyDone(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("fanout", func(p *Proc) {
		wg := p.NewWaitGroup()
		wg.Add(1)
		e.After(1, func() { wg.Done() })
		p.Sleep(10)
		if wg.Pending() != 0 {
			t.Error("Pending != 0 after Done")
		}
		wg.Wait() // must not block
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("proc did not finish")
	}
}

func TestProcsAndEventsMix(t *testing.T) {
	// A proc feeding work to a resource and waiting for each completion.
	e := NewEngine()
	r := NewResource(e, "dev")
	var latencies []Time
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < 5; i++ {
			start := p.Now()
			c := p.NewCompletion()
			r.Schedule(25, func(Time) { c.Complete() })
			c.Wait()
			latencies = append(latencies, p.Now()-start)
			p.Sleep(5)
		}
	})
	e.Run()
	if len(latencies) != 5 {
		t.Fatalf("got %d latencies, want 5", len(latencies))
	}
	for i, l := range latencies {
		if l != 25 {
			t.Fatalf("latency[%d] = %d, want 25 (closed loop, no queueing)", i, l)
		}
	}
}

func TestManyProcs(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 200; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(Time(i))
			n++
		})
	}
	e.Run()
	if n != 200 {
		t.Fatalf("finished %d procs, want 200", n)
	}
}
