package sim

import "testing"

// BenchmarkEngineEvents measures raw event throughput: the budget every
// simulated experiment spends.
func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine()
	var pump func()
	n := 0
	pump = func() {
		n++
		if n < b.N {
			e.After(10, pump)
		}
	}
	e.After(0, pump)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineHeap measures scheduling with a deep pending heap.
func BenchmarkEngineHeap(b *testing.B) {
	e := NewEngine()
	rng := NewRNG(1)
	for i := 0; i < 10_000; i++ {
		e.At(rng.Int63n(1<<40), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(rng.Int63n(1<<40), func() {})
		e.Cancel(ev)
	}
}

// BenchmarkResource measures FIFO resource scheduling.
func BenchmarkResource(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "core")
	e.At(0, func() {
		for i := 0; i < b.N; i++ {
			r.Occupy(10)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkProcSwitch measures the engine<->process handoff.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
		}
	})
	b.ResetTimer()
	e.Run()
}
