package sim

// Resource models a serial FIFO server: a CPU core, a flash channel, or a
// network link. Work submitted to a Resource starts when all previously
// submitted work has finished, so queueing delay emerges naturally from
// submission order.
//
// A Resource does not keep an explicit queue; it tracks the time at which it
// becomes free and schedules each completion directly on the engine. This is
// exact for FIFO service.
type Resource struct {
	eng *Engine

	// Name identifies the resource in stats output.
	Name string

	busyUntil Time
	busyTime  Time // total service time ever scheduled
	jobs      uint64
}

// NewResource returns an idle resource bound to eng.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, Name: name}
}

// Schedule enqueues a job with the given service time and invokes done (if
// non-nil) when the job completes. It returns the job's start and end times.
func (r *Resource) Schedule(service Time, done func(end Time)) (start, end Time) {
	if service < 0 {
		service = 0
	}
	start = r.eng.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start + service
	r.busyUntil = end
	r.busyTime += service
	r.jobs++
	if done != nil {
		r.eng.At(end, func() { done(end) })
	}
	return start, end
}

// Occupy extends the resource's busy period by service time without
// scheduling a completion callback. It is used for background work whose
// completion nobody observes (e.g. flash program operations behind a DRAM
// write buffer).
func (r *Resource) Occupy(service Time) (start, end Time) {
	return r.Schedule(service, nil)
}

// FreeAt returns the earliest time at which newly submitted work would start.
func (r *Resource) FreeAt() Time {
	if r.busyUntil < r.eng.Now() {
		return r.eng.Now()
	}
	return r.busyUntil
}

// Backlog returns how far ahead of the clock the resource is booked.
func (r *Resource) Backlog() Time { return r.FreeAt() - r.eng.Now() }

// Idle reports whether the resource has no queued or running work.
func (r *Resource) Idle() bool { return r.busyUntil <= r.eng.Now() }

// BusyTime returns the total service time scheduled on the resource.
func (r *Resource) BusyTime() Time { return r.busyTime }

// Jobs returns the number of jobs ever scheduled on the resource.
func (r *Resource) Jobs() uint64 { return r.jobs }

// Utilization returns busy time divided by elapsed time since the start of
// the simulation, capped at 1.
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	if now == 0 {
		return 0
	}
	u := float64(r.busyTime) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}
