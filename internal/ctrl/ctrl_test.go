package ctrl

import (
	"testing"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/sim"
)

// quickCalibrator trades accuracy for test speed.
func quickCalibrator(spec flashsim.Spec) Calibrator {
	return Calibrator{
		Spec:        spec,
		Ratios:      []int{100, 95, 75, 50},
		LatencyGrid: []sim.Time{500 * sim.Microsecond, sim.Millisecond, 2 * sim.Millisecond},
		Warmup:      10 * sim.Millisecond,
		Window:      150 * sim.Millisecond,
		Seed:        7,
	}
}

// calibrateA is computed once; calibration sweeps are the slowest tests in
// the package.
var calibA *Result

func calibrateDeviceA(t *testing.T) *Result {
	t.Helper()
	if calibA != nil {
		return calibA
	}
	c := quickCalibrator(flashsim.DeviceA())
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	calibA = res
	return res
}

func TestCalibrationRecoversWriteCost(t *testing.T) {
	// §3.2.1: device A's write cost is 10 tokens. The fit must recover it
	// from latency sweeps alone (the calibrator never reads
	// Spec.WriteCost).
	res := calibrateDeviceA(t)
	if res.WriteCostFit < 7 || res.WriteCostFit > 13 {
		t.Errorf("fitted write cost = %.2f tokens, want ~10", res.WriteCostFit)
	}
	if res.Model.WriteCost < 7*core.TokenUnit || res.Model.WriteCost > 13*core.TokenUnit {
		t.Errorf("model write cost = %d mt, want ~10000", res.Model.WriteCost)
	}
}

func TestCalibrationRecoversReadOnlyHalf(t *testing.T) {
	// Device A serves ~2x IOPS read-only: C(read, 100%) must fit to 1/2.
	res := calibrateDeviceA(t)
	if res.ReadOnlyCostFit > 0.75 {
		t.Errorf("fitted read-only cost = %.2f, want ~0.5", res.ReadOnlyCostFit)
	}
	if res.Model.ReadOnlyReadCost != core.TokenUnit/2 {
		t.Errorf("model read-only cost = %d, want 500", res.Model.ReadOnlyReadCost)
	}
}

func TestTokenCurveMonotoneEnough(t *testing.T) {
	res := calibrateDeviceA(t)
	if len(res.TokenCurve) < 10 {
		t.Fatalf("token curve has %d points", len(res.TokenCurve))
	}
	// The rate at a loose SLO must be at least the rate at a strict SLO.
	strict := res.TokenRateForP95(500 * sim.Microsecond)
	loose := res.TokenRateForP95(2 * sim.Millisecond)
	if strict <= 0 {
		t.Fatal("no rate at 500us")
	}
	if loose < strict {
		t.Errorf("rate at 2ms (%d) below rate at 500us (%d)", loose, strict)
	}
	// §5.4: the paper's device A supports ~420K tokens/s at a 500us p95.
	// Our model should land in the same regime.
	if strict < 250_000*core.TokenUnit || strict > 650_000*core.TokenUnit {
		t.Errorf("rate at 500us = %d mt/s, want a few hundred K tokens/s", strict)
	}
}

func TestTokenRateUnattainableSLO(t *testing.T) {
	res := calibrateDeviceA(t)
	if got := res.TokenRateForP95(1 * sim.Microsecond); got != 0 {
		t.Errorf("1us SLO returned rate %d, want 0", got)
	}
}

func TestCalibratorValidation(t *testing.T) {
	c := quickCalibrator(flashsim.DeviceA())
	c.Ratios = []int{100, 99}
	if _, err := c.Run(); err == nil {
		t.Error("too few ratios accepted")
	}
	c.Ratios = []int{99, 95, 75}
	if _, err := c.Run(); err == nil {
		t.Error("missing 100% ratio accepted")
	}
}

func newLC(t *testing.T, id, iops, readPct int, lat sim.Time) *core.Tenant {
	t.Helper()
	tn, err := core.NewTenant(id, "t", core.LatencyCritical,
		core.SLO{IOPS: iops, ReadPercent: readPct, LatencyP95: lat})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestAdmissionScenario1(t *testing.T) {
	// §5.4 Scenario 1: tenants A (120K IOPS, 100% read) and B (70K IOPS,
	// 80% read) at 500us p95 reserve 316K tokens/s — admissible on a
	// device with ~420K tokens/s at that SLO.
	res := calibrateDeviceA(t)
	shared := core.NewSharedState(1, 0)
	ac := NewAdmissionController(res, shared)
	a := newLC(t, 1, 120_000, 100, 500*sim.Microsecond)
	b := newLC(t, 2, 70_000, 80, 500*sim.Microsecond)
	if err := ac.Admit(a); err != nil {
		t.Fatalf("tenant A rejected: %v", err)
	}
	if err := ac.Admit(b); err != nil {
		t.Fatalf("tenant B rejected: %v", err)
	}
	if got := shared.TokenRate(); got < 250_000*core.TokenUnit {
		t.Errorf("token rate after admission = %d, want the 500us rate", got)
	}
	if len(ac.Admitted()) != 2 {
		t.Error("admitted list wrong")
	}
	// A duplicate admit must fail.
	if err := ac.Admit(a); err == nil {
		t.Error("duplicate admit accepted")
	}
}

func TestAdmissionRejectsOversubscription(t *testing.T) {
	res := calibrateDeviceA(t)
	shared := core.NewSharedState(1, 0)
	ac := NewAdmissionController(res, shared)
	// 80% read at 500us: each 100K IOPS costs 280K tokens/s. Two of them
	// exceed any plausible 500us capacity.
	if err := ac.Admit(newLC(t, 1, 100_000, 80, 500*sim.Microsecond)); err != nil {
		t.Fatalf("first tenant rejected: %v", err)
	}
	if err := ac.Admit(newLC(t, 2, 100_000, 80, 500*sim.Microsecond)); err == nil {
		t.Error("oversubscribed tenant admitted")
	}
}

func TestAdmissionStrictestSLOGoverns(t *testing.T) {
	res := calibrateDeviceA(t)
	shared := core.NewSharedState(1, 0)
	ac := NewAdmissionController(res, shared)
	loose := newLC(t, 1, 20_000, 90, 2*sim.Millisecond)
	if err := ac.Admit(loose); err != nil {
		t.Fatal(err)
	}
	rateLoose := shared.TokenRate()
	strict := newLC(t, 2, 20_000, 90, 500*sim.Microsecond)
	if err := ac.Admit(strict); err != nil {
		t.Fatal(err)
	}
	rateStrict := shared.TokenRate()
	if rateStrict > rateLoose {
		t.Errorf("token rate rose (%d -> %d) when a stricter SLO arrived",
			rateLoose, rateStrict)
	}
	// Releasing the strict tenant relaxes the rate again.
	ac.Release(strict)
	if got := shared.TokenRate(); got != rateLoose {
		t.Errorf("rate after release = %d, want %d", got, rateLoose)
	}
	// Releasing an unknown tenant is a no-op.
	ac.Release(strict)
}

func TestAdmitRejectsBadInput(t *testing.T) {
	res := calibrateDeviceA(t)
	ac := NewAdmissionController(res, core.NewSharedState(1, 0))
	be, _ := core.NewTenant(9, "be", core.BestEffort, core.SLO{})
	if err := ac.Admit(be); err == nil {
		t.Error("BE tenant admitted through LC admission")
	}
	bad := &core.Tenant{ID: 1, Class: core.LatencyCritical} // zero SLO
	if err := ac.Admit(bad); err == nil {
		t.Error("invalid SLO admitted")
	}
	impossible := newLC(t, 3, 1000, 90, 2*sim.Microsecond)
	if err := ac.Admit(impossible); err == nil {
		t.Error("unattainable latency SLO admitted")
	}
}

func TestThreadScaler(t *testing.T) {
	s := NewThreadScaler(1, 12)
	if s.Current() != 1 {
		t.Fatal("start != min")
	}
	// Sustained high load scales up.
	for i := 0; i < 5; i++ {
		s.Observe(0.95)
	}
	if s.Current() != 6 {
		t.Errorf("after 5 high samples: %d threads, want 6", s.Current())
	}
	// Never exceeds max.
	for i := 0; i < 20; i++ {
		s.Observe(0.99)
	}
	if s.Current() != 12 {
		t.Errorf("capped at %d, want 12", s.Current())
	}
	// Low load scales down, never below min.
	for i := 0; i < 40; i++ {
		s.Observe(0.05)
	}
	if s.Current() != 1 {
		t.Errorf("scaled down to %d, want 1", s.Current())
	}
	// Mid-range utilization holds steady (hysteresis).
	s2 := NewThreadScaler(2, 8)
	s2.Observe(0.95)
	at := s2.Current()
	for i := 0; i < 10; i++ {
		s2.Observe(0.7)
	}
	if s2.Current() != at {
		t.Errorf("hysteresis violated: %d -> %d at 0.7 util", at, s2.Current())
	}
}

func TestThreadScalerValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewThreadScaler(0, 4) },
		func() { NewThreadScaler(4, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid bounds accepted")
				}
			}()
			fn()
		}()
	}
}

func TestRecalibrationAfterWear(t *testing.T) {
	// §3.2.1: "The model can be re-calibrated after deployment to account
	// for performance degradation due to Flash wear-out." A worn device
	// supports a lower token rate at the same SLO; the relative write
	// cost is a property of the flash and survives aging.
	fresh := calibrateDeviceA(t)
	worn := flashsim.DeviceA()
	worn.WearPagesScale = 1 << 24
	worn.PreAgedPages = 1 << 24 // 2x service-time inflation
	c := quickCalibrator(worn)
	c.Seed = 99
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	freshRate := fresh.TokenRateForP95(sim.Millisecond)
	wornRate := res.TokenRateForP95(sim.Millisecond)
	if wornRate >= freshRate*3/4 {
		t.Errorf("worn rate %d not well below fresh %d", wornRate, freshRate)
	}
	if res.WriteCostFit < 7 || res.WriteCostFit > 13 {
		t.Errorf("worn write-cost fit = %.2f, want ~10 (ratio survives wear)", res.WriteCostFit)
	}
}
