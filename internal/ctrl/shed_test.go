package ctrl

import (
	"testing"

	"github.com/reflex-go/reflex/internal/core"
)

// TestShedderQueueHysteresisBoundaries pins the exact boundary semantics:
// activation strictly above QueueHigh, deactivation at or below QueueLow,
// and the whole band in between sticky in both directions.
func TestShedderQueueHysteresisBoundaries(t *testing.T) {
	s := NewShedder(ShedConfig{QueueHigh: 100, QueueLow: 40})

	if s.Observe(100, 0, 0) {
		t.Fatal("shedding at exactly QueueHigh; activation must be strictly above")
	}
	if !s.Observe(101, 0, 0) {
		t.Fatal("not shedding one above QueueHigh")
	}
	// Inside the band while active: stays active (no flapping off).
	for _, q := range []int{100, 70, 41} {
		if !s.Observe(q, 0, 0) {
			t.Fatalf("shedding dropped at queue=%d while above QueueLow", q)
		}
	}
	if s.Observe(40, 0, 0) {
		t.Fatal("still shedding at exactly QueueLow; deactivation is at-or-below")
	}
	// Inside the band while inactive: stays inactive (no flapping on).
	for _, q := range []int{41, 99, 100} {
		if s.Observe(q, 0, 0) {
			t.Fatalf("shedding re-entered at queue=%d without crossing QueueHigh", q)
		}
	}
	if s.Active() {
		t.Fatal("Active() true after deactivation")
	}
}

func TestShedderLowDefaultsToHalfHigh(t *testing.T) {
	s := NewShedder(ShedConfig{QueueHigh: 100, DebtHigh: 1000})
	s.Observe(101, 0, 0)
	if !s.Active() {
		t.Fatal("not active above high")
	}
	if s.Observe(51, 0, 0); !s.Active() {
		t.Fatal("deactivated above the defaulted QueueLow of 50")
	}
	if s.Observe(50, 0, 0); s.Active() {
		t.Fatal("still active at the defaulted QueueLow of 50")
	}
	// Debt low watermark defaults to DebtHigh/2 too.
	s.Observe(0, 0, 1001)
	if !s.Active() {
		t.Fatal("not active above DebtHigh")
	}
	if s.Observe(0, 0, 501); !s.Active() {
		t.Fatal("deactivated above the defaulted DebtLow of 500")
	}
	if s.Observe(0, 0, 500); s.Active() {
		t.Fatal("still active at the defaulted DebtLow of 500")
	}
}

// TestShedderAllIndicatorsMustClear: any single indicator over its high
// watermark activates; deactivation requires all of them back under their
// low watermarks at once.
func TestShedderAllIndicatorsMustClear(t *testing.T) {
	s := NewShedder(ShedConfig{
		QueueHigh: 100, QueueLow: 40,
		ConnLimit: 10,
		DebtHigh:  core.Tokens(1000), DebtLow: core.Tokens(400),
	})
	if !s.Observe(0, 11, 0) {
		t.Fatal("conn limit alone did not activate")
	}
	// Queue cleared, but debt still high: stays active.
	if !s.Observe(10, 5, 900) {
		t.Fatal("deactivated with debt above DebtLow")
	}
	// Debt cleared, conns still over: stays active.
	if !s.Observe(10, 11, 100) {
		t.Fatal("deactivated with conns above ConnLimit")
	}
	if s.Observe(10, 5, 100) {
		t.Fatal("did not deactivate with every indicator under its low watermark")
	}
}

func TestShedderDisabledIndicatorsNeverTrigger(t *testing.T) {
	s := NewShedder(ShedConfig{}) // everything disabled
	if s.Observe(1<<30, 1<<30, core.Tokens(1<<40)) {
		t.Fatal("disabled shedder shed")
	}
	// Only queue configured: huge debt and conns must not matter.
	s = NewShedder(ShedConfig{QueueHigh: 100})
	if s.Observe(0, 1<<30, core.Tokens(1<<40)) {
		t.Fatal("disabled indicators triggered shedding")
	}
	if !s.Observe(101, 1<<30, core.Tokens(1<<40)) {
		t.Fatal("queue indicator inert")
	}
	// Disabled indicators must not block deactivation either.
	if s.Observe(0, 1<<30, core.Tokens(1<<40)) {
		t.Fatal("disabled indicators held shedding active")
	}
}
