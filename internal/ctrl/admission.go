package ctrl

import (
	"fmt"
	"sort"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
)

// AdmissionController decides whether a new latency-critical tenant's SLO
// can be met without violating existing tenants' SLOs, and keeps the shared
// token rate pinned to the strictest admitted latency SLO (§4.3).
type AdmissionController struct {
	calib  *Result
	shared *core.SharedState

	admitted map[*core.Tenant]core.Tokens // LC tenant -> reserved rate
}

// NewAdmissionController creates a controller bound to a calibration result
// and the scheduler shared state it governs. It initializes the token rate
// to the device's rate at an effectively unconstrained latency.
func NewAdmissionController(calib *Result, shared *core.SharedState) *AdmissionController {
	ac := &AdmissionController{
		calib:    calib,
		shared:   shared,
		admitted: make(map[*core.Tenant]core.Tokens),
	}
	shared.SetTokenRate(calib.TokenRateForP95(1 << 62))
	return ac
}

// strictest returns the tightest latency SLO among admitted tenants, or a
// huge value when none.
func (ac *AdmissionController) strictest() sim.Time {
	best := sim.Time(1) << 62
	for t := range ac.admitted {
		if t.SLO.LatencyP95 < best {
			best = t.SLO.LatencyP95
		}
	}
	return best
}

// Admit checks and registers a latency-critical tenant. On success the
// shared token rate reflects the (possibly stricter) new latency SLO and
// the tenant's rate is expected to be reserved by scheduler registration.
// The caller still registers the tenant with a scheduler thread.
func (ac *AdmissionController) Admit(t *core.Tenant) error {
	if t.Class != core.LatencyCritical {
		return fmt.Errorf("ctrl: Admit is for latency-critical tenants")
	}
	if err := t.SLO.Validate(); err != nil {
		return err
	}
	if _, dup := ac.admitted[t]; dup {
		return fmt.Errorf("ctrl: tenant %q already admitted", t.Name)
	}
	limit := t.SLO.LatencyP95
	if s := ac.strictest(); s < limit {
		limit = s
	}
	rate := ac.calib.TokenRateForP95(limit)
	if rate <= 0 {
		return fmt.Errorf("ctrl: latency SLO %dus is unattainable on this device",
			limit/sim.Microsecond)
	}
	need := ac.calib.Model.RateForSLO(t.SLO.IOPS, t.SLO.ReadPercent)
	var reserved core.Tokens
	for _, r := range ac.admitted {
		reserved += r
	}
	if reserved+need > rate {
		return fmt.Errorf("ctrl: SLO not admissible: %d mt/s reserved + %d needed > %d available at %dus p95",
			reserved, need, rate, limit/sim.Microsecond)
	}
	ac.admitted[t] = need
	ac.shared.SetTokenRate(rate)
	return nil
}

// Release removes a tenant and relaxes the token rate if it held the
// strictest SLO.
func (ac *AdmissionController) Release(t *core.Tenant) {
	if _, ok := ac.admitted[t]; !ok {
		return
	}
	delete(ac.admitted, t)
	ac.shared.SetTokenRate(ac.calib.TokenRateForP95(ac.strictest()))
}

// Admitted returns the admitted tenants sorted by ID (deterministic).
func (ac *AdmissionController) Admitted() []*core.Tenant {
	out := make([]*core.Tenant, 0, len(ac.admitted))
	for t := range ac.admitted {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ThreadScaler recommends dataplane thread counts from utilization samples
// with hysteresis, the §4.3 "allocate resources for additional threads /
// deallocate threads" policy. The actual thread migration is performed by
// the embedding server.
type ThreadScaler struct {
	// Min and Max bound the recommendation.
	Min, Max int
	// HighWater adds a thread when mean utilization exceeds it.
	HighWater float64
	// LowWater removes a thread when utilization (rescaled to one fewer
	// thread) would stay below it.
	LowWater float64

	current int
}

// NewThreadScaler creates a scaler starting at min threads.
func NewThreadScaler(min, max int) *ThreadScaler {
	if min <= 0 || max < min {
		panic("ctrl: invalid thread bounds")
	}
	return &ThreadScaler{Min: min, Max: max, HighWater: 0.85, LowWater: 0.6, current: min}
}

// Current returns the current recommendation.
func (s *ThreadScaler) Current() int { return s.current }

// Observe feeds a mean-utilization sample (0..1 across current threads)
// and returns the updated recommendation.
func (s *ThreadScaler) Observe(util float64) int {
	switch {
	case util > s.HighWater && s.current < s.Max:
		s.current++
	case s.current > s.Min:
		// Would the remaining threads stay under the low watermark?
		rescaled := util * float64(s.current) / float64(s.current-1)
		if rescaled < s.LowWater {
			s.current--
		}
	}
	return s.current
}
