// Package ctrl implements the local control plane of §4.3: calibrating the
// request cost model for a device (curve fitting latency-versus-throughput
// sweeps, §3.2.1), deriving the token generation rate for the strictest
// tenant latency SLO, admission control for new latency-critical tenants,
// and thread-count recommendations.
package ctrl

import (
	"fmt"
	"math"
	"sort"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// CurvePoint is one measured point of a latency-throughput sweep.
type CurvePoint struct {
	IOPS float64
	P95  sim.Time
}

// RatioCurve is the measured p95-read-latency-versus-IOPS curve for one
// read/write ratio (one line of Figure 1).
type RatioCurve struct {
	ReadPercent int
	Points      []CurvePoint
}

// maxIOPSAt returns the largest measured IOPS whose p95 is at or below
// limit, interpolating linearly between bracketing points. Returns 0 when
// even the lightest point violates the limit.
func (c *RatioCurve) maxIOPSAt(limit sim.Time) float64 {
	best := 0.0
	for i, p := range c.Points {
		if p.P95 <= limit {
			if p.IOPS > best {
				best = p.IOPS
			}
			continue
		}
		// p violates; interpolate from the previous point if it did not.
		if i > 0 && c.Points[i-1].P95 <= limit {
			prev := c.Points[i-1]
			dl := float64(p.P95 - prev.P95)
			if dl > 0 {
				frac := float64(limit-prev.P95) / dl
				cand := prev.IOPS + frac*(p.IOPS-prev.IOPS)
				if cand > best {
					best = cand
				}
			}
		}
	}
	return best
}

// Calibrator measures a device and fits its cost model. The paper
// calibrates with local-Flash sweeps at several read/write ratios using
// random writes for the worst case (§3.2.1); this does exactly that
// against the simulated device.
type Calibrator struct {
	Spec flashsim.Spec
	// Ratios are the read percentages to sweep. The 100% ratio is required
	// to fit the read-only read cost.
	Ratios []int
	// LatencyGrid is the set of p95 limits used for fitting.
	LatencyGrid []sim.Time
	// Warmup and Window control each measurement.
	Warmup, Window sim.Time
	Seed           int64
}

// DefaultCalibrator returns the configuration used by cmd/reflex-calibrate.
func DefaultCalibrator(spec flashsim.Spec) Calibrator {
	return Calibrator{
		Spec:        spec,
		Ratios:      []int{100, 99, 95, 90, 75, 50},
		LatencyGrid: []sim.Time{500 * sim.Microsecond, sim.Millisecond, 2 * sim.Millisecond},
		Warmup:      20 * sim.Millisecond,
		Window:      300 * sim.Millisecond,
		Seed:        424242,
	}
}

// Result is a fitted cost model plus the raw curves it came from.
type Result struct {
	// Model is the fitted cost model with the write cost rounded to whole
	// tokens and the read-only cost snapped to 1/2 or 1 (the granularity
	// the paper's devices exhibit).
	Model core.CostModel
	// WriteCostFit is the unrounded least-squares write cost in tokens.
	WriteCostFit float64
	// ReadOnlyCostFit is the unrounded read-only read cost in tokens.
	ReadOnlyCostFit float64
	// TokenCurve maps weighted load (tokens/s) to p95 read latency,
	// averaged across the mixed-ratio sweeps (Figure 3).
	TokenCurve []TokenPoint
	// Curves are the raw per-ratio sweeps (Figure 1).
	Curves []RatioCurve
}

// TokenPoint is one point of the tokens/s-versus-p95 characteristic.
type TokenPoint struct {
	TokensPerSec float64
	P95          sim.Time
}

// TokenRateForP95 returns the token generation rate (mt/s) the device
// supports at the given p95 read-latency limit — the quantity the control
// plane sets from the strictest LC SLO (§3.2.2). Returns 0 when the limit
// is unattainable.
func (r *Result) TokenRateForP95(limit sim.Time) core.Tokens {
	best := 0.0
	for i, p := range r.TokenCurve {
		if p.P95 <= limit {
			if p.TokensPerSec > best {
				best = p.TokensPerSec
			}
			continue
		}
		if i > 0 && r.TokenCurve[i-1].P95 <= limit {
			prev := r.TokenCurve[i-1]
			dl := float64(p.P95 - prev.P95)
			if dl > 0 {
				frac := float64(limit-prev.P95) / dl
				cand := prev.TokensPerSec + frac*(p.TokensPerSec-prev.TokensPerSec)
				if cand > best {
					best = cand
				}
			}
		}
	}
	return core.Tokens(best * float64(core.TokenUnit))
}

// measure runs one open-loop point on a fresh device and returns the p95
// read latency.
func (c *Calibrator) measure(readPct int, iops float64, seed int64) sim.Time {
	eng := sim.NewEngine()
	dev := flashsim.New(eng, c.Spec, seed)
	res := workload.OpenLoop{
		IOPS:     iops,
		Mix:      workload.Mix{ReadPercent: readPct, Size: 4096, Blocks: c.Spec.Blocks},
		Warmup:   c.Warmup,
		Duration: c.Window,
		Seed:     seed + 1,
	}.Start(eng, workload.DeviceTarget(eng, dev))
	eng.Run()
	return res.ReadLat.Quantile(0.95)
}

// sweep measures one ratio curve with a geometric IOPS grid that stops
// once the p95 explodes.
func (c *Calibrator) sweep(readPct int) RatioCurve {
	const explode = 4 * sim.Millisecond
	curve := RatioCurve{ReadPercent: readPct}
	iops := 10_000.0
	for step := 0; step < 24; step++ {
		p95 := c.measure(readPct, iops, c.Seed+int64(readPct)*100+int64(step))
		curve.Points = append(curve.Points, CurvePoint{IOPS: iops, P95: p95})
		if p95 > explode {
			break
		}
		iops *= 1.3
	}
	return curve
}

// Run performs the full calibration.
func (c *Calibrator) Run() (*Result, error) {
	if len(c.Ratios) < 3 {
		return nil, fmt.Errorf("ctrl: need at least 3 ratios (have %d)", len(c.Ratios))
	}
	has100 := false
	mixed := 0
	for _, r := range c.Ratios {
		if r == 100 {
			has100 = true
		} else {
			mixed++
		}
	}
	if !has100 || mixed < 2 {
		return nil, fmt.Errorf("ctrl: ratios must include 100%% and at least two mixed ratios")
	}

	res := &Result{}
	for _, r := range c.Ratios {
		res.Curves = append(res.Curves, c.sweep(r))
	}

	// Fit the write cost: for each latency limit L, the weighted load
	// M_r(L) * (r + (1-r)*c_w) should be one number T(L) across mixed
	// ratios. Least squares over c_w and the per-limit T values reduces,
	// for each L, to a 2-variable normal equation; we average the c_w
	// estimates across limits.
	var cwEstimates []float64
	for _, limit := range c.LatencyGrid {
		type obs struct{ a, b float64 } // T = a + c_w*b per ratio
		var o []obs
		for _, curve := range res.Curves {
			if curve.ReadPercent == 100 {
				continue
			}
			m := curve.maxIOPSAt(limit)
			if m <= 0 {
				continue
			}
			r := float64(curve.ReadPercent) / 100
			o = append(o, obs{a: m * r, b: m * (1 - r)})
		}
		if len(o) < 2 {
			continue
		}
		// Minimize sum_i (a_i + c*b_i - T)^2 over c and T:
		// T = mean(a) + c*mean(b); substitute and solve for c.
		var ma, mb float64
		for _, x := range o {
			ma += x.a
			mb += x.b
		}
		ma /= float64(len(o))
		mb /= float64(len(o))
		var num, den float64
		for _, x := range o {
			num += (x.b - mb) * (x.a - ma)
			den += (x.b - mb) * (x.b - mb)
		}
		if den == 0 {
			continue
		}
		cw := -num / den
		if cw > 0 && !math.IsInf(cw, 0) && !math.IsNaN(cw) {
			cwEstimates = append(cwEstimates, cw)
		}
	}
	if len(cwEstimates) == 0 {
		return nil, fmt.Errorf("ctrl: write-cost fit failed: no usable observations")
	}
	var cw float64
	for _, v := range cwEstimates {
		cw += v
	}
	cw /= float64(len(cwEstimates))
	res.WriteCostFit = cw

	// Fit the read-only read cost: T(L) from mixed curves versus the
	// 100%-read curve's IOPS at the same limit.
	var roEstimates []float64
	for _, limit := range c.LatencyGrid {
		var t float64
		n := 0
		var m100 float64
		for _, curve := range res.Curves {
			m := curve.maxIOPSAt(limit)
			if m <= 0 {
				continue
			}
			if curve.ReadPercent == 100 {
				m100 = m
				continue
			}
			r := float64(curve.ReadPercent) / 100
			t += m * (r + (1-r)*cw)
			n++
		}
		if n == 0 || m100 <= 0 {
			continue
		}
		roEstimates = append(roEstimates, (t/float64(n))/m100)
	}
	ro := 1.0
	if len(roEstimates) > 0 {
		ro = 0
		for _, v := range roEstimates {
			ro += v
		}
		ro /= float64(len(roEstimates))
	}
	res.ReadOnlyCostFit = ro

	// Snap to the granularity the paper reports: whole-token write cost,
	// read-only cost of either 1/2 or 1.
	wc := core.Tokens(math.Round(cw)) * core.TokenUnit
	if wc < core.TokenUnit {
		wc = core.TokenUnit
	}
	roTok := core.TokenUnit
	if ro < 0.75 {
		roTok = core.TokenUnit / 2
	}
	res.Model = core.CostModel{ReadCost: core.TokenUnit, ReadOnlyReadCost: roTok, WriteCost: wc}
	if err := res.Model.Validate(); err != nil {
		return nil, fmt.Errorf("ctrl: fitted model invalid: %w", err)
	}

	// Build the token curve from the mixed-ratio sweeps using the fitted
	// write cost, merging all (tokens/s, p95) observations sorted by load.
	for _, curve := range res.Curves {
		if curve.ReadPercent == 100 {
			continue
		}
		r := float64(curve.ReadPercent) / 100
		w := r + (1-r)*cw
		for _, p := range curve.Points {
			res.TokenCurve = append(res.TokenCurve, TokenPoint{
				TokensPerSec: p.IOPS * w,
				P95:          p.P95,
			})
		}
	}
	sort.Slice(res.TokenCurve, func(i, j int) bool {
		return res.TokenCurve[i].TokensPerSec < res.TokenCurve[j].TokensPerSec
	})
	return res, nil
}
