package ctrl

import (
	"sync/atomic"

	"github.com/reflex-go/reflex/internal/core"
)

// Shedder is the graceful load-shed signal shared by the real server and
// the simulated dataplane: it turns overload indicators (scheduler queue
// depth, token debt, connection count) into a boolean "refuse new
// best-effort work" decision with hysteresis, so shedding does not
// flap around the threshold. Latency-critical tenants are never shed —
// their admission control already guaranteed them capacity (§3.2.2); the
// shedder only protects that guarantee by refusing best-effort work that
// would push the scheduler into unbounded debt.
//
// Observe is safe for concurrent use: state is a single atomic. The
// decision is intentionally conservative — any single indicator over its
// high watermark activates shedding; shedding deactivates only when all
// indicators are back under their low watermarks.
type Shedder struct {
	cfg    ShedConfig
	active atomic.Bool
}

// ShedConfig bounds the overload indicators. Zero-valued limits disable
// that indicator.
type ShedConfig struct {
	// QueueHigh activates shedding when the observed scheduler backlog
	// (queued requests) crosses it; QueueLow deactivates when the backlog
	// falls back below it. QueueLow defaults to QueueHigh/2.
	QueueHigh int
	QueueLow  int
	// ConnLimit activates shedding while the connection count exceeds it.
	ConnLimit int
	// DebtHigh activates shedding when aggregate scheduler token debt
	// (sum of negative tenant balances, in millitokens) exceeds it;
	// DebtLow deactivates below it. DebtLow defaults to DebtHigh/2.
	DebtHigh core.Tokens
	DebtLow  core.Tokens
}

// NewShedder creates a shedder, filling hysteresis low watermarks.
func NewShedder(cfg ShedConfig) *Shedder {
	if cfg.QueueLow <= 0 {
		cfg.QueueLow = cfg.QueueHigh / 2
	}
	if cfg.DebtLow <= 0 {
		cfg.DebtLow = cfg.DebtHigh / 2
	}
	return &Shedder{cfg: cfg}
}

// Observe feeds the current overload indicators and returns whether
// best-effort work should be shed right now.
func (s *Shedder) Observe(queueDepth, conns int, debt core.Tokens) bool {
	over := (s.cfg.QueueHigh > 0 && queueDepth > s.cfg.QueueHigh) ||
		(s.cfg.ConnLimit > 0 && conns > s.cfg.ConnLimit) ||
		(s.cfg.DebtHigh > 0 && debt > s.cfg.DebtHigh)
	if over {
		s.active.Store(true)
		return true
	}
	if s.active.Load() {
		under := (s.cfg.QueueHigh == 0 || queueDepth <= s.cfg.QueueLow) &&
			(s.cfg.ConnLimit == 0 || conns <= s.cfg.ConnLimit) &&
			(s.cfg.DebtHigh == 0 || debt <= s.cfg.DebtLow)
		if under {
			s.active.Store(false)
			return false
		}
		return true
	}
	return false
}

// Active returns the current shed state without feeding a sample.
func (s *Shedder) Active() bool { return s.active.Load() }
