// Package fio is a flexible I/O tester in the mold of the FIO tool used in
// §5.6: multiple jobs (threads), each keeping a fixed queue depth of
// random or sequential I/Os against a block device, reporting latency
// percentiles and bandwidth.
package fio

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/hist"
	"github.com/reflex-go/reflex/internal/sim"
)

// Config describes one fio run.
type Config struct {
	// Jobs is the number of worker threads. Each job drives its own
	// device view (e.g. its own blk-mq context).
	Jobs int
	// Depth is the per-job I/O queue depth.
	Depth int
	// ReadPercent of operations are reads.
	ReadPercent int
	// BlockSize is the I/O size in bytes.
	BlockSize int
	// Blocks is the device address range in 4KB units.
	Blocks uint64
	// Sequential makes each job scan its own disjoint region in order
	// instead of issuing uniform random I/O.
	Sequential bool
	// Warmup is discarded; Runtime is the measurement window.
	Warmup, Runtime sim.Time
	Seed            int64
}

func (c *Config) validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("fio: Jobs must be positive")
	case c.Depth <= 0:
		return fmt.Errorf("fio: Depth must be positive")
	case c.BlockSize <= 0:
		return fmt.Errorf("fio: BlockSize must be positive")
	case c.Blocks == 0:
		return fmt.Errorf("fio: Blocks must be positive")
	case c.Runtime <= 0:
		return fmt.Errorf("fio: Runtime must be positive")
	}
	return nil
}

// Result aggregates measurements across jobs.
type Result struct {
	ReadLat  *hist.Hist
	WriteLat *hist.Hist
	// Completed counts in-window completions.
	Completed uint64
	// Window is the measurement duration.
	Window sim.Time
	// Bytes is the in-window completed volume.
	Bytes uint64
}

// IOPS returns completed operations per second.
func (r *Result) IOPS() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Completed) * float64(sim.Second) / float64(r.Window)
}

// MBps returns completed megabytes per second.
func (r *Result) MBps() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 * float64(sim.Second) / float64(r.Window)
}

// Run schedules the tester on eng. devices supplies one Device per job
// (job i uses devices[i%len(devices)]). The result is complete after the
// engine drains.
func Run(eng *sim.Engine, devices []blockdev.Device, cfg Config) *Result {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if len(devices) == 0 {
		panic("fio: need at least one device")
	}
	res := &Result{ReadLat: hist.New(), WriteLat: hist.New(), Window: cfg.Runtime}
	measureFrom := eng.Now() + cfg.Warmup
	stopAt := measureFrom + cfg.Runtime
	blocksPerIO := uint64((cfg.BlockSize + 4095) / 4096)

	for j := 0; j < cfg.Jobs; j++ {
		dev := devices[j%len(devices)]
		rng := sim.NewRNG(cfg.Seed + int64(j)*7919)
		// Sequential jobs scan disjoint regions.
		regionSize := cfg.Blocks / uint64(cfg.Jobs)
		cursor := uint64(j) * regionSize

		var issue func()
		issue = func() {
			if eng.Now() >= stopAt {
				return
			}
			op := core.OpRead
			if rng.Intn(100) >= cfg.ReadPercent {
				op = core.OpWrite
			}
			var block uint64
			if cfg.Sequential {
				block = cursor
				cursor += blocksPerIO
				if regionSize > 0 && cursor >= uint64(j+1)*regionSize {
					cursor = uint64(j) * regionSize
				}
			} else {
				block = uint64(rng.Int63n(int64(cfg.Blocks)))
			}
			arrival := eng.Now()
			dev.Submit(op, block, cfg.BlockSize, func(lat sim.Time) {
				if arrival >= measureFrom && eng.Now() <= stopAt {
					res.Completed++
					res.Bytes += uint64(cfg.BlockSize)
					if op == core.OpRead {
						res.ReadLat.Record(lat)
					} else {
						res.WriteLat.Record(lat)
					}
				}
				eng.After(0, issue)
			})
		}
		for d := 0; d < cfg.Depth; d++ {
			eng.After(0, issue)
		}
	}
	return res
}
