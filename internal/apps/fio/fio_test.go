package fio

import (
	"testing"

	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

func fixedDev(eng *sim.Engine, service sim.Time) blockdev.Device {
	l := blockdev.NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			eng.After(service, func() { done(service) })
		}))
	l.Overhead = 0
	return l
}

func TestQD1Throughput(t *testing.T) {
	eng := sim.NewEngine()
	res := Run(eng, []blockdev.Device{fixedDev(eng, 100*sim.Microsecond)}, Config{
		Jobs: 1, Depth: 1, ReadPercent: 100, BlockSize: 4096, Blocks: 1 << 20,
		Runtime: sim.Second, Seed: 1,
	})
	eng.Run()
	if iops := res.IOPS(); iops < 9_800 || iops > 10_200 {
		t.Fatalf("QD1 IOPS = %.0f, want ~10000", iops)
	}
	if res.ReadLat.Max() != 100*sim.Microsecond {
		t.Fatalf("latency = %d", res.ReadLat.Max())
	}
}

func TestDepthScaling(t *testing.T) {
	run := func(depth int) float64 {
		eng := sim.NewEngine()
		res := Run(eng, []blockdev.Device{fixedDev(eng, 100*sim.Microsecond)}, Config{
			Jobs: 1, Depth: depth, ReadPercent: 100, BlockSize: 4096, Blocks: 1 << 20,
			Runtime: 500 * sim.Millisecond, Seed: 2,
		})
		eng.Run()
		return res.IOPS()
	}
	if q8, q1 := run(8), run(1); q8 < 7*q1 {
		t.Fatalf("QD8 (%.0f) not ~8x QD1 (%.0f) on unlimited device", q8, q1)
	}
}

func TestJobsSpreadAcrossDevices(t *testing.T) {
	eng := sim.NewEngine()
	devs := []blockdev.Device{fixedDev(eng, 50*sim.Microsecond), fixedDev(eng, 50*sim.Microsecond)}
	res := Run(eng, devs, Config{
		Jobs: 2, Depth: 1, ReadPercent: 100, BlockSize: 4096, Blocks: 1 << 20,
		Runtime: 200 * sim.Millisecond, Seed: 3,
	})
	eng.Run()
	// Two QD1 jobs at 50us service = 40K IOPS.
	if iops := res.IOPS(); iops < 39_000 || iops > 41_000 {
		t.Fatalf("2-job IOPS = %.0f, want ~40000", iops)
	}
}

func TestMixedWorkload(t *testing.T) {
	eng := sim.NewEngine()
	res := Run(eng, []blockdev.Device{fixedDev(eng, 10*sim.Microsecond)}, Config{
		Jobs: 1, Depth: 4, ReadPercent: 70, BlockSize: 4096, Blocks: 1 << 20,
		Runtime: 200 * sim.Millisecond, Seed: 4,
	})
	eng.Run()
	reads := float64(res.ReadLat.Count())
	total := reads + float64(res.WriteLat.Count())
	if ratio := reads / total; ratio < 0.67 || ratio > 0.73 {
		t.Fatalf("read ratio %.2f, want ~0.70", ratio)
	}
}

func TestSequentialScansRegion(t *testing.T) {
	eng := sim.NewEngine()
	var seen []uint64
	dev := blockdev.NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			seen = append(seen, b)
			eng.After(sim.Microsecond, func() { done(sim.Microsecond) })
		}))
	dev.Overhead = 0
	Run(eng, []blockdev.Device{dev}, Config{
		Jobs: 1, Depth: 1, ReadPercent: 100, BlockSize: 4096, Blocks: 1024,
		Sequential: true, Runtime: sim.Millisecond, Seed: 5,
	})
	eng.Run()
	if len(seen) < 10 {
		t.Fatalf("only %d IOs", len(seen))
	}
	for i := 1; i < len(seen) && i < 100; i++ {
		if seen[i] != seen[i-1]+1 && seen[i] != 0 { // wraps to region start
			t.Fatalf("not sequential at %d: %d after %d", i, seen[i], seen[i-1])
		}
	}
}

func TestMBps(t *testing.T) {
	eng := sim.NewEngine()
	res := Run(eng, []blockdev.Device{fixedDev(eng, 100*sim.Microsecond)}, Config{
		Jobs: 1, Depth: 1, ReadPercent: 100, BlockSize: 8192, Blocks: 1 << 20,
		Runtime: sim.Second, Seed: 6,
	})
	eng.Run()
	// 10K IOPS x 8KB ~= 82 MB/s.
	if mbps := res.MBps(); mbps < 78 || mbps > 86 {
		t.Fatalf("MBps = %.1f, want ~82", mbps)
	}
}

func TestAgainstRealDeviceModel(t *testing.T) {
	eng := sim.NewEngine()
	dev := flashsim.New(eng, flashsim.DeviceA(), 61)
	local := blockdev.NewLocal(eng, workload.DeviceTarget(eng, dev))
	res := Run(eng, []blockdev.Device{local}, Config{
		Jobs: 4, Depth: 16, ReadPercent: 100, BlockSize: 4096, Blocks: 1 << 20,
		Warmup: 10 * sim.Millisecond, Runtime: 100 * sim.Millisecond, Seed: 7,
	})
	eng.Run()
	if res.Completed == 0 {
		t.Fatal("no IO completed")
	}
	// QD64 against device A should push several hundred K IOPS.
	if iops := res.IOPS(); iops < 200_000 {
		t.Fatalf("IOPS = %.0f, want device-class throughput", iops)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	dev := fixedDev(eng, 1)
	bad := []Config{
		{Depth: 1, BlockSize: 1, Blocks: 1, Runtime: 1},
		{Jobs: 1, BlockSize: 1, Blocks: 1, Runtime: 1},
		{Jobs: 1, Depth: 1, Blocks: 1, Runtime: 1},
		{Jobs: 1, Depth: 1, BlockSize: 1, Runtime: 1},
		{Jobs: 1, Depth: 1, BlockSize: 1, Blocks: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			Run(eng, []blockdev.Device{dev}, cfg)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty device list accepted")
			}
		}()
		Run(eng, nil, Config{Jobs: 1, Depth: 1, BlockSize: 1, Blocks: 1, Runtime: 1})
	}()
}
