package kv

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// entry is one key/value pair; a nil value is a tombstone.
type entry struct {
	key   string
	value []byte // nil = deletion marker
}

// bloom is a simple split-hash Bloom filter.
type bloom struct {
	bits []uint64
	k    int
}

func newBloom(n, bitsPerKey int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	return &bloom{bits: make([]uint64, (nbits+63)/64), k: 4}
}

func bloomHashes(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	if h2 == 0 {
		h2 = 0x9E3779B97F4A7C15
	}
	return h1, h2
}

func (b *bloom) add(key string) {
	h1, h2 := bloomHashes(key)
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloom) mayContain(key string) bool {
	h1, h2 := bloomHashes(key)
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Block encoding: repeated records of
//
//	u16 keyLen | u32 valueLen (0xFFFFFFFF = tombstone) | key | value
//
// packed into blockBytes-sized blocks.
const tombstoneLen = ^uint32(0)

func appendRecord(dst []byte, e entry) []byte {
	var tmp [6]byte
	binary.BigEndian.PutUint16(tmp[0:], uint16(len(e.key)))
	vlen := tombstoneLen
	if e.value != nil {
		vlen = uint32(len(e.value))
	}
	binary.BigEndian.PutUint32(tmp[2:], vlen)
	dst = append(dst, tmp[:]...)
	dst = append(dst, e.key...)
	if e.value != nil {
		dst = append(dst, e.value...)
	}
	return dst
}

// decodeBlock parses every record in a block.
func decodeBlock(b []byte) []entry {
	var out []entry
	for len(b) >= 6 {
		klen := int(binary.BigEndian.Uint16(b[0:]))
		vlen := binary.BigEndian.Uint32(b[2:])
		b = b[6:]
		if klen == 0 || len(b) < klen {
			break
		}
		key := string(b[:klen])
		b = b[klen:]
		if vlen == tombstoneLen {
			out = append(out, entry{key: key})
			continue
		}
		if len(b) < int(vlen) {
			break
		}
		val := make([]byte, vlen)
		copy(val, b[:vlen])
		b = b[vlen:]
		out = append(out, entry{key: key, value: val})
	}
	return out
}

// sstable is one immutable sorted table. Block payloads live in memory
// (they are "the device contents"); block I/O timing goes through the DB's
// block device at baseBlock+i.
type sstable struct {
	blocks    [][]byte
	firstKeys []string // first key per block
	filter    *bloom
	baseBlock uint64
	entries   int
	// minKey/maxKey bound the table's key range (compaction gating).
	minKey, maxKey string
}

// overlaps reports whether two tables' key ranges intersect.
func (t *sstable) overlaps(o *sstable) bool {
	if t.entries == 0 || o.entries == 0 {
		return false
	}
	return t.minKey <= o.maxKey && o.minKey <= t.maxKey
}

// buildSSTable packs sorted entries into blocks.
func buildSSTable(entries []entry, blockBytes, bloomBitsPerKey int, baseBlock uint64) *sstable {
	t := &sstable{
		filter:    newBloom(len(entries), bloomBitsPerKey),
		baseBlock: baseBlock,
		entries:   len(entries),
	}
	var cur []byte
	var first string
	flush := func() {
		if len(cur) == 0 {
			return
		}
		block := make([]byte, len(cur))
		copy(block, cur)
		t.blocks = append(t.blocks, block)
		t.firstKeys = append(t.firstKeys, first)
		cur = cur[:0]
	}
	if len(entries) > 0 {
		t.minKey = entries[0].key
		t.maxKey = entries[len(entries)-1].key
	}
	for _, e := range entries {
		t.filter.add(e.key)
		rec := appendRecord(nil, e)
		if len(cur) > 0 && len(cur)+len(rec) > blockBytes {
			flush()
		}
		if len(cur) == 0 {
			first = e.key
		}
		cur = append(cur, rec...)
	}
	flush()
	return t
}

// findBlock returns the index of the block that may hold key, or -1.
func (t *sstable) findBlock(key string) int {
	// First block whose firstKey > key, minus one.
	i := sort.SearchStrings(t.firstKeys, key)
	if i < len(t.firstKeys) && t.firstKeys[i] == key {
		return i
	}
	return i - 1
}

// searchBlock scans a decoded block for key.
func searchBlock(entries []entry, key string) (entry, bool) {
	for _, e := range entries {
		if e.key == key {
			return e, true
		}
	}
	return entry{}, false
}
