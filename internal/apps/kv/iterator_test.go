package kv

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/reflex-go/reflex/internal/sim"
)

func TestScanBasic(t *testing.T) {
	eng := sim.NewEngine()
	db := Open(instantDev(eng), smallOpts())
	run(eng, func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			db.Put(p, fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i)))
		}
		got := db.Scan(p, "k010", "k020", 0)
		if len(got) != 10 {
			t.Fatalf("scan returned %d entries, want 10", len(got))
		}
		for i, kv := range got {
			want := fmt.Sprintf("k%03d", 10+i)
			if kv.Key != want || string(kv.Value) != fmt.Sprintf("v%d", 10+i) {
				t.Fatalf("entry %d = %s=%s", i, kv.Key, kv.Value)
			}
		}
		// Unbounded with limit.
		got = db.Scan(p, "", "", 5)
		if len(got) != 5 || got[0].Key != "k000" {
			t.Fatalf("limited scan = %d entries starting %s", len(got), got[0].Key)
		}
	})
}

func TestScanAcrossMemtableAndTables(t *testing.T) {
	eng := sim.NewEngine()
	db := Open(instantDev(eng), smallOpts())
	run(eng, func(p *sim.Proc) {
		// Old versions in a table, new versions in the memtable.
		for i := 0; i < 20; i++ {
			db.Put(p, fmt.Sprintf("k%02d", i), []byte("old"))
		}
		db.Flush(p)
		for i := 0; i < 20; i += 2 {
			db.Put(p, fmt.Sprintf("k%02d", i), []byte("new"))
		}
		got := db.Scan(p, "", "", 0)
		if len(got) != 20 {
			t.Fatalf("scan = %d entries, want 20", len(got))
		}
		for i, kv := range got {
			want := "old"
			if i%2 == 0 {
				want = "new"
			}
			if string(kv.Value) != want {
				t.Fatalf("%s = %s, want %s (newest version must win)", kv.Key, kv.Value, want)
			}
		}
	})
}

func TestScanSkipsTombstones(t *testing.T) {
	eng := sim.NewEngine()
	db := Open(instantDev(eng), smallOpts())
	run(eng, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			db.Put(p, fmt.Sprintf("k%d", i), []byte("v"))
		}
		db.Flush(p)
		db.Delete(p, "k3")
		db.Delete(p, "k7")
		got := db.Scan(p, "", "", 0)
		if len(got) != 8 {
			t.Fatalf("scan = %d entries, want 8 (two tombstoned)", len(got))
		}
		for _, kv := range got {
			if kv.Key == "k3" || kv.Key == "k7" {
				t.Fatalf("tombstoned key %s surfaced", kv.Key)
			}
		}
	})
}

func TestScanMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		opt := smallOpts()
		opt.CompactAt = 4
		db := Open(instantDev(eng), opt)
		ref := map[string]string{}
		ok := true
		run(eng, func(p *sim.Proc) {
			for op := 0; op < 300; op++ {
				k := fmt.Sprintf("key%02d", rng.Intn(50))
				switch rng.Intn(3) {
				case 0, 1:
					v := fmt.Sprintf("v%d", op)
					db.Put(p, k, []byte(v))
					ref[k] = v
				case 2:
					db.Delete(p, k)
					delete(ref, k)
				}
				if rng.Intn(40) == 0 {
					db.Flush(p)
				}
			}
			// Compare a random range scan to the reference map.
			start := fmt.Sprintf("key%02d", rng.Intn(50))
			end := fmt.Sprintf("key%02d", rng.Intn(50))
			if end != "" && end < start {
				start, end = end, start
			}
			got := db.Scan(p, start, end, 0)
			var want []string
			for k := range ref {
				if k >= start && (end == "" || k < end) {
					want = append(want, k)
				}
			}
			sort.Strings(want)
			if len(got) != len(want) {
				ok = false
				return
			}
			for i, kv := range got {
				if kv.Key != want[i] || string(kv.Value) != ref[kv.Key] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScanChargesIO(t *testing.T) {
	// A scan over flushed tables must read blocks through the device.
	eng := sim.NewEngine()
	db := Open(slowDev(eng, 100*sim.Microsecond, 10*sim.Microsecond), smallOpts())
	var elapsed sim.Time
	run(eng, func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			db.Put(p, fmt.Sprintf("k%04d", i), make([]byte, 100))
		}
		db.Flush(p)
		start := p.Now()
		got := db.Scan(p, "", "", 0)
		elapsed = p.Now() - start
		if len(got) != 500 {
			t.Fatalf("scan = %d", len(got))
		}
	})
	if elapsed == 0 {
		t.Fatal("scan over tables cost no simulated time")
	}
}
