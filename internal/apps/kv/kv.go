// Package kv is an LSM-tree key-value store in the mold of RocksDB, used
// for the §5.6 key-value benchmarks (Figure 7c: bulkload, randomread,
// readwhilewriting). It is a real store — a write-ahead log, a memtable,
// bloom-filtered SSTables, tiered compaction and an LRU block cache — whose
// block I/O timing flows through a simulated block device, so end-to-end
// run time reflects the storage architecture underneath.
package kv

import (
	"fmt"
	"sort"

	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
)

// Options tune the store.
type Options struct {
	// MemtableBytes triggers a flush when the memtable grows past it.
	MemtableBytes int
	// BlockBytes is the SSTable block size (4KB, the flash page size).
	BlockBytes int
	// CacheBlocks is the block cache capacity (cgroup-limited memory in
	// the paper's setup, §5.6).
	CacheBlocks int
	// BloomBitsPerKey sizes per-table bloom filters.
	BloomBitsPerKey int
	// CompactAt merges all tables into one when the table count reaches
	// it (tiered compaction).
	CompactAt int
	// PutCPU/GetCPU model per-operation compute.
	PutCPU, GetCPU sim.Time
	// ClientCPU, when set, is a shared CPU pool the per-operation compute
	// is charged on, so concurrent reader processes contend for cores the
	// way db_bench threads do. Nil charges compute on each process's own
	// virtual time instead.
	ClientCPU *sim.Resource
}

// DefaultOptions returns sensible defaults for the benchmarks.
func DefaultOptions() Options {
	return Options{
		MemtableBytes:   1 << 20,
		BlockBytes:      4096,
		CacheBlocks:     2048,
		BloomBitsPerKey: 10,
		CompactAt:       8,
		PutCPU:          600,
		GetCPU:          600,
	}
}

// Stats count store activity.
type Stats struct {
	Puts, Gets, Deletes    uint64
	Flushes, Compactions   uint64
	BloomSkips             uint64
	BlocksRead             uint64
	BlocksWritten          uint64
	WALWrites              uint64
	TablesNow, EntriesDisk int
}

// DB is an LSM store over a block device. One writer process and any
// number of reader processes may use it concurrently (the simulator's
// cooperative scheduling means methods never truly race, but state is kept
// consistent across the blocking points inside Flush and compaction).
type DB struct {
	dev   blockdev.Device
	opt   Options
	cache *blockdev.PageCache

	mem      map[string][]byte
	memBytes int
	// imm holds memtables being flushed, newest first; still readable.
	imm []*memSnapshot

	tables []*sstable // newest first

	nextBlock uint64 // device allocation cursor
	walBuf    int    // bytes accumulated toward the next WAL page
	walBlock  uint64 // dedicated WAL page, rewritten in place

	cpuDebt sim.Time
	stats   Stats
}

// Open creates an empty store on the device.
func Open(dev blockdev.Device, opt Options) *DB {
	if opt.BlockBytes <= 0 || opt.MemtableBytes <= 0 || opt.CacheBlocks <= 0 || opt.CompactAt < 2 {
		panic(fmt.Sprintf("kv: invalid options %+v", opt))
	}
	return &DB{
		dev:       dev,
		opt:       opt,
		cache:     blockdev.NewPageCache(dev, opt.CacheBlocks),
		mem:       make(map[string][]byte),
		nextBlock: 1, // block 0 is the WAL page
	}
}

// Stats returns a snapshot of the counters.
func (db *DB) Stats() Stats {
	s := db.stats
	s.TablesNow = len(db.tables)
	for _, t := range db.tables {
		s.EntriesDisk += t.entries
	}
	return s
}

// charge accounts modeled per-operation CPU: on the shared pool when one
// is configured (readers contend), otherwise batched into occasional
// sleeps on the calling process.
func (db *DB) charge(p *sim.Proc, d sim.Time) {
	if db.opt.ClientCPU != nil {
		c := p.NewCompletion()
		db.opt.ClientCPU.Schedule(d, func(sim.Time) { c.Complete() })
		c.Wait()
		return
	}
	db.cpuDebt += d
	if db.cpuDebt >= 20*sim.Microsecond {
		p.Sleep(db.cpuDebt)
		db.cpuDebt = 0
	}
}

// wal accounts write-ahead-log bytes and issues a device write per filled
// page (the paper places the WAL on Flash too). Writes are asynchronous —
// group commit without fsync-per-put, as db_bench runs by default — so the
// WAL adds device load but does not serialize the writer.
func (db *DB) wal(p *sim.Proc, n int) {
	db.walBuf += n
	for db.walBuf >= db.opt.BlockBytes {
		db.walBuf -= db.opt.BlockBytes
		db.stats.WALWrites++
		db.dev.Submit(core.OpWrite, db.walBlock, db.opt.BlockBytes, nil)
	}
}

// Put inserts or overwrites a key.
func (db *DB) Put(p *sim.Proc, key string, value []byte) {
	if value == nil {
		value = []byte{}
	}
	db.putInternal(p, key, value)
}

// Delete removes a key (tombstone).
func (db *DB) Delete(p *sim.Proc, key string) {
	db.stats.Deletes++
	db.putInternal(p, key, nil)
}

func (db *DB) putInternal(p *sim.Proc, key string, value []byte) {
	db.stats.Puts++
	db.charge(p, db.opt.PutCPU)
	db.wal(p, 6+len(key)+len(value))
	if old, ok := db.mem[key]; ok {
		db.memBytes -= len(key) + len(old)
	}
	db.mem[key] = value
	db.memBytes += len(key) + len(value)
	if db.memBytes >= db.opt.MemtableBytes {
		db.Flush(p)
	}
}

// Get returns the value for key. Lookup order: memtable, immutable
// memtables, then tables newest to oldest with bloom filters and the block
// cache short-circuiting device reads.
func (db *DB) Get(p *sim.Proc, key string) ([]byte, bool) {
	db.stats.Gets++
	db.charge(p, db.opt.GetCPU)
	if v, ok := db.mem[key]; ok {
		return v, v != nil
	}
	for _, snap := range db.imm {
		if v, ok := snap.m[key]; ok {
			return v, v != nil
		}
	}
	for _, t := range db.tables {
		if !t.filter.mayContain(key) {
			db.stats.BloomSkips++
			continue
		}
		bi := t.findBlock(key)
		if bi < 0 || bi >= len(t.blocks) {
			continue
		}
		db.readBlock(p, t, bi)
		if e, ok := searchBlock(decodeBlock(t.blocks[bi]), key); ok {
			return e.value, e.value != nil
		}
	}
	return nil, false
}

// readBlock accounts a timed, cached device read of table block bi.
func (db *DB) readBlock(p *sim.Proc, t *sstable, bi int) {
	db.stats.BlocksRead++
	db.cache.Ensure(p, []uint64{t.baseBlock + uint64(bi)})
}

// Flush turns the memtable into an SSTable.
func (db *DB) Flush(p *sim.Proc) {
	if len(db.mem) == 0 {
		return
	}
	db.stats.Flushes++
	snapshot := &memSnapshot{m: db.mem}
	db.mem = make(map[string][]byte)
	db.memBytes = 0
	db.imm = append([]*memSnapshot{snapshot}, db.imm...)

	entries := make([]entry, 0, len(snapshot.m))
	for k, v := range snapshot.m {
		entries = append(entries, entry{key: k, value: v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	t := db.writeTable(p, entries)

	// Publish: the new table is visible, the immutable memtable retires.
	db.tables = append([]*sstable{t}, db.tables...)
	for i, snap := range db.imm {
		if snap == snapshot {
			db.imm = append(db.imm[:i], db.imm[i+1:]...)
			break
		}
	}
	if len(db.tables) >= db.opt.CompactAt && db.anyOverlap() {
		db.compact(p)
	}
}

// anyOverlap reports whether any two live tables have intersecting key
// ranges. Sequentially filled tables are disjoint and need no compaction —
// which is what makes bulkload Flash-bound rather than compaction-bound,
// as RocksDB's bulkload mode arranges.
func (db *DB) anyOverlap() bool {
	byMin := append([]*sstable{}, db.tables...)
	sort.Slice(byMin, func(i, j int) bool { return byMin[i].minKey < byMin[j].minKey })
	for i := 1; i < len(byMin); i++ {
		if byMin[i-1].overlaps(byMin[i]) {
			return true
		}
	}
	return false
}

// memSnapshot wraps an immutable memtable so flushes can identify their
// own snapshot by pointer when retiring it.
type memSnapshot struct {
	m map[string][]byte
}

// writeTable builds an sstable and writes its blocks to the device.
func (db *DB) writeTable(p *sim.Proc, entries []entry) *sstable {
	t := buildSSTable(entries, db.opt.BlockBytes, db.opt.BloomBitsPerKey, db.nextBlock)
	db.nextBlock += uint64(len(t.blocks))
	// Sequential writes, issued in parallel batches (the device write
	// buffer absorbs them).
	wg := p.NewWaitGroup()
	for i := range t.blocks {
		wg.Add(1)
		db.stats.BlocksWritten++
		db.dev.Submit(core.OpWrite, t.baseBlock+uint64(i), db.opt.BlockBytes,
			func(sim.Time) { wg.Done() })
	}
	wg.Wait()
	return t
}

// compact merges every table into one, dropping shadowed versions and
// tombstones (a full merge is the only time tombstones can be discarded
// safely).
func (db *DB) compact(p *sim.Proc) {
	db.stats.Compactions++
	old := db.tables

	// Read every block of every table through the device, a batch at a
	// time (compaction streams with deep queues; its I/O is what makes
	// bulkload device-bound in Fig. 7c).
	merged := make(map[string]entry)
	for i := len(old) - 1; i >= 0; i-- { // oldest first; newer overwrite
		t := old[i]
		for lo := 0; lo < len(t.blocks); lo += 64 {
			hi := lo + 64
			if hi > len(t.blocks) {
				hi = len(t.blocks)
			}
			pages := make([]uint64, 0, hi-lo)
			for bi := lo; bi < hi; bi++ {
				pages = append(pages, t.baseBlock+uint64(bi))
			}
			db.stats.BlocksRead += uint64(hi - lo)
			db.cache.Ensure(p, pages)
			for bi := lo; bi < hi; bi++ {
				for _, e := range decodeBlock(t.blocks[bi]) {
					merged[e.key] = e
				}
			}
		}
	}
	entries := make([]entry, 0, len(merged))
	for _, e := range merged {
		if e.value == nil {
			continue // tombstone fully compacted away
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	t := db.writeTable(p, entries)

	// Replace exactly the tables we merged; tables flushed while we were
	// blocked (by another process) stay in front.
	keep := db.tables[:len(db.tables)-len(old)]
	db.tables = append(append([]*sstable{}, keep...), t)
}
