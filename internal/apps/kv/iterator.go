package kv

import (
	"container/heap"
	"sort"

	"github.com/reflex-go/reflex/internal/sim"
)

// Range scans: a merging iterator over the memtable, immutable memtables
// and every SSTable, newest source winning on duplicate keys and
// tombstones suppressing older values — the standard LSM read path for
// db_bench's seekrandom-style workloads.

// KV is one key/value pair returned by a scan.
type KV struct {
	Key   string
	Value []byte
}

// source is one sorted input to the merge.
type source struct {
	entries []entry
	pos     int
	// priority breaks key ties: lower wins (newer source).
	priority int
}

func (s *source) head() entry { return s.entries[s.pos] }
func (s *source) done() bool  { return s.pos >= len(s.entries) }

// mergeHeap orders sources by (head key, priority).
type mergeHeap []*source

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].head().key != h[j].head().key {
		return h[i].head().key < h[j].head().key
	}
	return h[i].priority < h[j].priority
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*source)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// sortedRange extracts [start, end) from a map as sorted entries.
func sortedRange(m map[string][]byte, start, end string) []entry {
	out := make([]entry, 0, 16)
	for k, v := range m {
		if k >= start && (end == "" || k < end) {
			out = append(out, entry{key: k, value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// tableRange reads the blocks of t covering [start, end) through the block
// cache and decodes the in-range entries.
func (db *DB) tableRange(p *sim.Proc, t *sstable, start, end string) []entry {
	if t.entries == 0 || (end != "" && t.minKey >= end) || t.maxKey < start {
		return nil
	}
	first := t.findBlock(start)
	if first < 0 {
		first = 0
	}
	var out []entry
	for bi := first; bi < len(t.blocks); bi++ {
		if end != "" && t.firstKeys[bi] >= end {
			break
		}
		db.readBlock(p, t, bi)
		for _, e := range decodeBlock(t.blocks[bi]) {
			if e.key < start {
				continue
			}
			if end != "" && e.key >= end {
				return out
			}
			out = append(out, e)
		}
	}
	return out
}

// Scan returns up to limit live key/value pairs in [start, end), in key
// order (end == "" means unbounded; limit <= 0 means unlimited). Newest
// versions win; tombstones hide older values and are not returned.
func (db *DB) Scan(p *sim.Proc, start, end string, limit int) []KV {
	var h mergeHeap
	add := func(entries []entry, priority int) {
		if len(entries) > 0 {
			h = append(h, &source{entries: entries, priority: priority})
		}
	}
	prio := 0
	add(sortedRange(db.mem, start, end), prio)
	prio++
	for _, snap := range db.imm {
		add(sortedRange(snap.m, start, end), prio)
		prio++
	}
	for _, t := range db.tables { // newest first
		add(db.tableRange(p, t, start, end), prio)
		prio++
	}
	heap.Init(&h)

	var out []KV
	lastKey := ""
	haveLast := false
	for h.Len() > 0 {
		if limit > 0 && len(out) >= limit {
			break
		}
		s := h[0]
		e := s.head()
		s.pos++
		if s.done() {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
		if haveLast && e.key == lastKey {
			continue // older version shadowed by a newer source
		}
		lastKey, haveLast = e.key, true
		if e.value == nil {
			continue // tombstone
		}
		val := make([]byte, len(e.value))
		copy(val, e.value)
		out = append(out, KV{Key: e.key, Value: val})
	}
	return out
}
