package kv

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

func instantDev(eng *sim.Engine) blockdev.Device {
	l := blockdev.NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			eng.After(0, func() { done(0) })
		}))
	l.Overhead = 0
	return l
}

func slowDev(eng *sim.Engine, read, write sim.Time) blockdev.Device {
	l := blockdev.NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			d := read
			if op == core.OpWrite {
				d = write
			}
			eng.After(d, func() { done(d) })
		}))
	l.Overhead = 0
	return l
}

// run executes fn in a process and drains the engine.
func run(eng *sim.Engine, fn func(p *sim.Proc)) {
	eng.Spawn("test", fn)
	eng.Run()
}

func smallOpts() Options {
	o := DefaultOptions()
	o.MemtableBytes = 4 << 10 // flush often to exercise tables
	o.CacheBlocks = 64
	return o
}

func TestPutGetMemtable(t *testing.T) {
	eng := sim.NewEngine()
	db := Open(instantDev(eng), DefaultOptions())
	run(eng, func(p *sim.Proc) {
		db.Put(p, "alpha", []byte("1"))
		db.Put(p, "beta", []byte("2"))
		if v, ok := db.Get(p, "alpha"); !ok || string(v) != "1" {
			t.Errorf("Get(alpha) = %q, %v", v, ok)
		}
		if _, ok := db.Get(p, "missing"); ok {
			t.Error("missing key found")
		}
		// Overwrite.
		db.Put(p, "alpha", []byte("1b"))
		if v, _ := db.Get(p, "alpha"); string(v) != "1b" {
			t.Errorf("overwrite lost: %q", v)
		}
	})
}

func TestFlushAndGetFromTable(t *testing.T) {
	eng := sim.NewEngine()
	db := Open(instantDev(eng), smallOpts())
	run(eng, func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			db.Put(p, fmt.Sprintf("key%04d", i), []byte(fmt.Sprintf("val%d", i)))
		}
		db.Flush(p)
		if db.Stats().Flushes == 0 {
			t.Fatal("no flush happened")
		}
		for i := 0; i < 100; i++ {
			v, ok := db.Get(p, fmt.Sprintf("key%04d", i))
			if !ok || string(v) != fmt.Sprintf("val%d", i) {
				t.Fatalf("key%04d = %q, %v", i, v, ok)
			}
		}
	})
}

func TestNewestVersionWinsAcrossTables(t *testing.T) {
	eng := sim.NewEngine()
	db := Open(instantDev(eng), smallOpts())
	run(eng, func(p *sim.Proc) {
		db.Put(p, "k", []byte("v1"))
		db.Flush(p)
		db.Put(p, "k", []byte("v2"))
		db.Flush(p)
		db.Put(p, "k", []byte("v3")) // memtable
		if v, _ := db.Get(p, "k"); string(v) != "v3" {
			t.Fatalf("got %q, want v3 (memtable)", v)
		}
		db.Flush(p)
		if v, _ := db.Get(p, "k"); string(v) != "v3" {
			t.Fatalf("got %q, want v3 (newest table)", v)
		}
	})
}

func TestDeleteTombstones(t *testing.T) {
	eng := sim.NewEngine()
	db := Open(instantDev(eng), smallOpts())
	run(eng, func(p *sim.Proc) {
		db.Put(p, "gone", []byte("x"))
		db.Flush(p)
		db.Delete(p, "gone")
		if _, ok := db.Get(p, "gone"); ok {
			t.Fatal("deleted key visible from memtable tombstone")
		}
		db.Flush(p)
		if _, ok := db.Get(p, "gone"); ok {
			t.Fatal("deleted key visible from table tombstone")
		}
	})
}

func TestCompactionMergesAndDropsTombstones(t *testing.T) {
	eng := sim.NewEngine()
	opt := smallOpts()
	opt.CompactAt = 3
	db := Open(instantDev(eng), opt)
	run(eng, func(p *sim.Proc) {
		db.Put(p, "dead", []byte("x"))
		db.Flush(p)
		db.Delete(p, "dead")
		db.Put(p, "live", []byte("y"))
		db.Flush(p)
		db.Put(p, "live", []byte("z"))
		db.Flush(p) // triggers compaction at 3 tables
		st := db.Stats()
		if st.Compactions == 0 {
			t.Fatal("no compaction")
		}
		if st.TablesNow != 1 {
			t.Fatalf("tables after compaction = %d, want 1", st.TablesNow)
		}
		if _, ok := db.Get(p, "dead"); ok {
			t.Fatal("tombstoned key resurrected by compaction")
		}
		if v, _ := db.Get(p, "live"); string(v) != "z" {
			t.Fatalf("live = %q, want z", v)
		}
		// The compacted table holds exactly one live entry.
		if st.EntriesDisk != 1 {
			t.Fatalf("entries on disk = %d, want 1", st.EntriesDisk)
		}
	})
}

func TestBloomFilterSkipsTables(t *testing.T) {
	eng := sim.NewEngine()
	opt := smallOpts()
	opt.CompactAt = 100 // keep many tables
	db := Open(instantDev(eng), opt)
	run(eng, func(p *sim.Proc) {
		for tbl := 0; tbl < 5; tbl++ {
			for i := 0; i < 50; i++ {
				db.Put(p, fmt.Sprintf("t%d-k%04d", tbl, i), []byte("v"))
			}
			db.Flush(p)
		}
		before := db.Stats().BlocksRead
		for i := 0; i < 200; i++ {
			db.Get(p, fmt.Sprintf("absent-%d", i))
		}
		st := db.Stats()
		if st.BloomSkips < 800 { // ~5 tables x 200 gets, minus false positives
			t.Errorf("bloom skips = %d, want ~1000", st.BloomSkips)
		}
		if extra := st.BlocksRead - before; extra > 100 {
			t.Errorf("absent-key gets read %d blocks; bloom ineffective", extra)
		}
	})
}

func TestBlockCacheReducesDeviceReads(t *testing.T) {
	eng := sim.NewEngine()
	issued := 0
	dev := blockdev.NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			if op == core.OpRead {
				issued++
			}
			eng.After(0, func() { done(0) })
		}))
	dev.Overhead = 0
	opt := smallOpts()
	db := Open(dev, opt)
	run(eng, func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			db.Put(p, fmt.Sprintf("k%04d", i), make([]byte, 64))
		}
		db.Flush(p)
		for rep := 0; rep < 10; rep++ {
			for i := 0; i < 200; i++ {
				db.Get(p, fmt.Sprintf("k%04d", i))
			}
		}
	})
	st := db.Stats()
	if st.BlocksRead < 1000 {
		t.Fatalf("logical block reads = %d, want ~2000", st.BlocksRead)
	}
	if issued > int(st.BlocksRead)/5 {
		t.Fatalf("device reads %d vs logical %d: cache not effective", issued, st.BlocksRead)
	}
}

func TestWALWritesAccrue(t *testing.T) {
	eng := sim.NewEngine()
	db := Open(instantDev(eng), DefaultOptions())
	run(eng, func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			db.Put(p, fmt.Sprintf("k%d", i), make([]byte, 200))
		}
	})
	if db.Stats().WALWrites < 4 {
		t.Fatalf("WAL writes = %d, want ~5 (100 x ~210B / 4KB)", db.Stats().WALWrites)
	}
}

func TestReadersDuringWriterFlushes(t *testing.T) {
	// One writer continuously inserting (forcing flushes and compactions)
	// while readers query known-stable keys: readers must always see them.
	eng := sim.NewEngine()
	opt := smallOpts()
	opt.CompactAt = 3
	db := Open(slowDev(eng, 50*sim.Microsecond, 20*sim.Microsecond), opt)
	stable := map[string]string{}
	eng.Spawn("init", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			k, v := fmt.Sprintf("stable%03d", i), fmt.Sprintf("sv%d", i)
			db.Put(p, k, []byte(v))
			stable[k] = v
		}
		db.Flush(p)

		eng.Spawn("writer", func(p *sim.Proc) {
			rng := sim.NewRNG(77)
			for i := 0; i < 2000; i++ {
				// Random keys so table ranges overlap and compaction runs.
				db.Put(p, fmt.Sprintf("churn%06d", rng.Intn(1<<20)), make([]byte, 128))
			}
		})
		for r := 0; r < 3; r++ {
			r := r
			eng.Spawn("reader", func(p *sim.Proc) {
				rng := sim.NewRNG(int64(r))
				for i := 0; i < 500; i++ {
					k := fmt.Sprintf("stable%03d", rng.Intn(50))
					v, ok := db.Get(p, k)
					if !ok || string(v) != stable[k] {
						t.Errorf("reader %d: %s = %q, %v", r, k, v, ok)
						return
					}
					p.Sleep(10 * sim.Microsecond)
				}
			})
		}
	})
	eng.Run()
	if db.Stats().Compactions == 0 {
		t.Fatal("test did not exercise compaction")
	}
}

func TestRandomOpsMatchReferenceMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		opt := smallOpts()
		opt.CompactAt = 4
		db := Open(instantDev(eng), opt)
		ref := map[string]string{}
		ok := true
		run(eng, func(p *sim.Proc) {
			for op := 0; op < 400; op++ {
				k := fmt.Sprintf("k%02d", rng.Intn(40))
				switch rng.Intn(4) {
				case 0, 1: // put
					v := fmt.Sprintf("v%d", op)
					db.Put(p, k, []byte(v))
					ref[k] = v
				case 2: // delete
					db.Delete(p, k)
					delete(ref, k)
				case 3: // get
					got, found := db.Get(p, k)
					want, wantFound := ref[k]
					if found != wantFound || (found && string(got) != want) {
						ok = false
						return
					}
				}
				if rng.Intn(50) == 0 {
					db.Flush(p)
				}
			}
			// Final verification of every key.
			for k, want := range ref {
				got, found := db.Get(p, k)
				if !found || string(got) != want {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowerDeviceSlowsWorkload(t *testing.T) {
	load := func(read, write sim.Time) sim.Time {
		eng := sim.NewEngine()
		db := Open(slowDev(eng, read, write), smallOpts())
		var elapsed sim.Time
		run(eng, func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < 2000; i++ {
				db.Put(p, fmt.Sprintf("key%06d", i), make([]byte, 100))
			}
			rng := sim.NewRNG(1)
			for i := 0; i < 2000; i++ {
				db.Get(p, fmt.Sprintf("key%06d", rng.Intn(2000)))
			}
			elapsed = p.Now() - start
		})
		return elapsed
	}
	fast := load(90*sim.Microsecond, 11*sim.Microsecond)
	slow := load(250*sim.Microsecond, 160*sim.Microsecond)
	if slow <= fast {
		t.Fatalf("slow device (%d) not slower than fast (%d)", slow, fast)
	}
}

func TestOptionsValidation(t *testing.T) {
	eng := sim.NewEngine()
	bad := []Options{
		{BlockBytes: 0, MemtableBytes: 1, CacheBlocks: 1, CompactAt: 2},
		{BlockBytes: 1, MemtableBytes: 0, CacheBlocks: 1, CompactAt: 2},
		{BlockBytes: 1, MemtableBytes: 1, CacheBlocks: 0, CompactAt: 2},
		{BlockBytes: 1, MemtableBytes: 1, CacheBlocks: 1, CompactAt: 1},
	}
	for i, o := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad options %d accepted", i)
				}
			}()
			Open(instantDev(eng), o)
		}()
	}
}

func TestBloomUnit(t *testing.T) {
	b := newBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		b.add(fmt.Sprintf("present-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(fmt.Sprintf("present-%d", i)) {
			t.Fatal("bloom false negative")
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.mayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	// 10 bits/key with k=4 should be ~2-3% false positives.
	if fp > 800 {
		t.Fatalf("false positive rate %d/10000 too high", fp)
	}
}

func TestBlockCodecRoundTrip(t *testing.T) {
	entries := []entry{
		{key: "a", value: []byte("1")},
		{key: "bb", value: nil}, // tombstone
		{key: "ccc", value: []byte{}},
		{key: "dddd", value: make([]byte, 1000)},
	}
	var b []byte
	for _, e := range entries {
		b = appendRecord(b, e)
	}
	got := decodeBlock(b)
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		if got[i].key != e.key {
			t.Fatalf("entry %d key %q != %q", i, got[i].key, e.key)
		}
		if (got[i].value == nil) != (e.value == nil) {
			t.Fatalf("entry %d tombstone mismatch", i)
		}
		if len(got[i].value) != len(e.value) {
			t.Fatalf("entry %d length mismatch", i)
		}
	}
}

func TestSSTableFindBlock(t *testing.T) {
	var entries []entry
	for i := 0; i < 300; i++ {
		entries = append(entries, entry{key: fmt.Sprintf("k%04d", i), value: make([]byte, 50)})
	}
	tbl := buildSSTable(entries, 512, 10, 0)
	if len(tbl.blocks) < 10 {
		t.Fatalf("only %d blocks; block splitting broken", len(tbl.blocks))
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%04d", i)
		bi := tbl.findBlock(k)
		if bi < 0 || bi >= len(tbl.blocks) {
			t.Fatalf("findBlock(%s) = %d", k, bi)
		}
		if _, ok := searchBlock(decodeBlock(tbl.blocks[bi]), k); !ok {
			t.Fatalf("key %s not in its block %d", k, bi)
		}
	}
	if bi := tbl.findBlock("a"); bi != -1 { // before all keys
		t.Fatalf("findBlock below range = %d, want -1", bi)
	}
}
