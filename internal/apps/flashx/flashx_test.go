package flashx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// instantDev completes I/O with zero latency.
func instantDev(eng *sim.Engine) blockdev.Device {
	l := blockdev.NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			eng.After(0, func() { done(0) })
		}))
	l.Overhead = 0
	return l
}

// slowDev completes I/O after a fixed latency.
func slowDev(eng *sim.Engine, lat sim.Time) blockdev.Device {
	l := blockdev.NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			eng.After(lat, func() { done(lat) })
		}))
	l.Overhead = 0
	return l
}

func pagedOn(eng *sim.Engine, g *Graph, dev blockdev.Device) *PagedGraph {
	cache := int(g.TotalPages()/4) + 2
	return NewPaged(g, dev, cache)
}

func ring(n int) *Graph {
	edges := make([][2]int32, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	return Build(n, edges)
}

func TestBuildCSR(t *testing.T) {
	g := Build(3, [][2]int32{{0, 1}, {0, 2}, {1, 2}})
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(2) != 0 {
		t.Fatalf("degrees wrong: %v", g.Offsets)
	}
	// Reverse graph: in-neighbors of 2 are {0, 1}.
	lo, hi := g.ROffsets[2], g.ROffsets[3]
	if hi-lo != 2 {
		t.Fatalf("in-degree of 2 = %d", hi-lo)
	}
}

func TestBFSOnRing(t *testing.T) {
	eng := sim.NewEngine()
	pg := pagedOn(eng, ring(50), instantDev(eng))
	var levels []int32
	eng.Spawn("t", func(p *sim.Proc) { levels = BFS(p, pg, 0) })
	eng.Run()
	for v, l := range levels {
		if l != int32(v) {
			t.Fatalf("ring BFS level[%d] = %d", v, l)
		}
	}
}

// refBFS is an in-memory reference.
func refBFS(g *Graph, src int) []int32 {
	levels := make([]int32, g.N)
	for i := range levels {
		levels[i] = -1
	}
	levels[src] = 0
	frontier := []int32{int32(src)}
	for d := int32(1); len(frontier) > 0; d++ {
		var next []int32
		for _, v := range frontier {
			for _, t := range g.Edges[g.Offsets[v]:g.Offsets[v+1]] {
				if levels[t] < 0 {
					levels[t] = d
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return levels
}

func TestBFSMatchesReference(t *testing.T) {
	g := GenPowerLaw(500, 6, 42)
	eng := sim.NewEngine()
	pg := pagedOn(eng, g, instantDev(eng))
	var levels []int32
	eng.Spawn("t", func(p *sim.Proc) { levels = BFS(p, pg, 0) })
	eng.Run()
	want := refBFS(g, 0)
	for v := range want {
		if levels[v] != want[v] {
			t.Fatalf("BFS level[%d] = %d, want %d", v, levels[v], want[v])
		}
	}
}

// refWCCCount counts weakly connected components with union-find.
func refWCCCount(g *Graph) int {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < g.N; v++ {
		for _, tgt := range g.Edges[g.Offsets[v]:g.Offsets[v+1]] {
			a, b := find(int32(v)), find(tgt)
			if a != b {
				parent[a] = b
			}
		}
	}
	seen := map[int32]bool{}
	for i := range parent {
		seen[find(int32(i))] = true
	}
	return len(seen)
}

func TestWCCTwoRings(t *testing.T) {
	// Two disjoint 10-rings: 2 components.
	var edges [][2]int32
	for i := 0; i < 10; i++ {
		edges = append(edges, [2]int32{int32(i), int32((i + 1) % 10)})
		edges = append(edges, [2]int32{int32(10 + i), int32(10 + (i+1)%10)})
	}
	g := Build(20, edges)
	eng := sim.NewEngine()
	pg := pagedOn(eng, g, instantDev(eng))
	var labels []int32
	eng.Spawn("t", func(p *sim.Proc) { labels = WCC(p, pg) })
	eng.Run()
	if n := countDistinct(labels); n != 2 {
		t.Fatalf("WCC components = %d, want 2", n)
	}
}

func TestWCCMatchesUnionFindProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		var edges [][2]int32
		for i := 0; i < n; i++ {
			edges = append(edges, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		g := Build(n, edges)
		eng := sim.NewEngine()
		pg := pagedOn(eng, g, instantDev(eng))
		var labels []int32
		eng.Spawn("t", func(p *sim.Proc) { labels = WCC(p, pg) })
		eng.Run()
		return countDistinct(labels) == refWCCCount(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCKnownGraph(t *testing.T) {
	// Cycle {0,1,2}, cycle {3,4}, bridge 2->3, isolated 5.
	g := Build(6, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 3}, {2, 3}})
	eng := sim.NewEngine()
	pg := pagedOn(eng, g, instantDev(eng))
	var comp []int32
	eng.Spawn("t", func(p *sim.Proc) { comp = SCC(p, pg) })
	eng.Run()
	if n := countDistinct(comp); n != 3 {
		t.Fatalf("SCC components = %d, want 3 (comp=%v)", n, comp)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle {0,1,2} split: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Fatalf("cycle {3,4} split: %v", comp)
	}
	if comp[0] == comp[3] || comp[0] == comp[5] || comp[3] == comp[5] {
		t.Fatalf("distinct SCCs merged: %v", comp)
	}
}

func TestSCCRingIsOneComponent(t *testing.T) {
	eng := sim.NewEngine()
	pg := pagedOn(eng, ring(30), instantDev(eng))
	var comp []int32
	eng.Spawn("t", func(p *sim.Proc) { comp = SCC(p, pg) })
	eng.Run()
	if countDistinct(comp) != 1 {
		t.Fatal("directed ring must be one SCC")
	}
}

func TestPageRankProperties(t *testing.T) {
	g := GenPowerLaw(300, 5, 9)
	eng := sim.NewEngine()
	pg := pagedOn(eng, g, instantDev(eng))
	var ranks []float64
	eng.Spawn("t", func(p *sim.Proc) { ranks = PageRank(p, pg, 10) })
	eng.Run()
	var sum float64
	for _, r := range ranks {
		if r <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += r
	}
	if sum < 0.97*float64(g.N) || sum > 1.03*float64(g.N) {
		t.Fatalf("rank mass = %.1f, want ~%d", sum, g.N)
	}
	// Vertex 0 is the biggest hub target in the power-law generator.
	if ranks[0] < ranks[g.N-1] {
		t.Fatal("low-ID hub does not out-rank tail vertex")
	}
}

func TestPageRankUniformOnRing(t *testing.T) {
	eng := sim.NewEngine()
	pg := pagedOn(eng, ring(40), instantDev(eng))
	var ranks []float64
	eng.Spawn("t", func(p *sim.Proc) { ranks = PageRank(p, pg, 20) })
	eng.Run()
	for _, r := range ranks {
		if r < 0.99 || r > 1.01 {
			t.Fatalf("ring ranks not uniform: %v", r)
		}
	}
}

func TestSlowerDeviceSlowsAlgorithms(t *testing.T) {
	g := GenPowerLaw(2000, 8, 5)
	run := func(lat sim.Time) sim.Time {
		eng := sim.NewEngine()
		pg := pagedOn(eng, g, slowDev(eng, lat))
		elapsed, _ := Run(eng, pg, AlgoBFS)
		return elapsed
	}
	fast := run(90 * sim.Microsecond)
	slow := run(250 * sim.Microsecond)
	if slow <= fast {
		t.Fatalf("250us device (%d) not slower than 90us device (%d)", slow, fast)
	}
}

func TestRunSummariesConsistentAcrossDevices(t *testing.T) {
	// The algorithm result must not depend on device speed.
	g := GenPowerLaw(1000, 6, 3)
	for _, algo := range []Algo{AlgoBFS, AlgoWCC, AlgoSCC, AlgoPR} {
		eng1 := sim.NewEngine()
		_, s1 := Run(eng1, pagedOn(eng1, g, instantDev(eng1)), algo)
		eng2 := sim.NewEngine()
		_, s2 := Run(eng2, pagedOn(eng2, g, slowDev(eng2, 200*sim.Microsecond)), algo)
		if s1 != s2 {
			t.Fatalf("%s summary differs across devices: %d vs %d", algo, s1, s2)
		}
	}
}

func TestCacheEvictionAndStats(t *testing.T) {
	eng := sim.NewEngine()
	c := blockdev.NewPageCache(instantDev(eng), 4)
	eng.Spawn("t", func(p *sim.Proc) {
		c.Ensure(p, []uint64{0, 1, 2, 3})
		if c.Misses != 4 || c.Hits != 0 || c.Len() != 4 {
			t.Errorf("after fill: misses=%d hits=%d len=%d", c.Misses, c.Hits, c.Len())
		}
		c.Ensure(p, []uint64{0, 1})
		if c.Hits != 2 {
			t.Errorf("hits = %d, want 2", c.Hits)
		}
		c.Ensure(p, []uint64{4}) // evicts LRU (page 2 or 3)
		if c.Evictions != 1 || c.Len() != 4 {
			t.Errorf("evictions=%d len=%d", c.Evictions, c.Len())
		}
		// Pages 0 and 1 were touched recently; still resident.
		c.Ensure(p, []uint64{0, 1})
		if c.Hits != 4 {
			t.Errorf("LRU did not protect recent pages: hits=%d", c.Hits)
		}
	})
	eng.Run()
}

func TestCacheSingleFlight(t *testing.T) {
	eng := sim.NewEngine()
	issued := 0
	dev := blockdev.NewLocal(eng, workload.TargetFunc(
		func(op core.OpType, b uint64, s int, done func(sim.Time)) {
			issued++
			eng.After(100*sim.Microsecond, func() { done(0) })
		}))
	dev.Overhead = 0
	c := blockdev.NewPageCache(dev, 8)
	finished := 0
	for i := 0; i < 3; i++ {
		eng.Spawn("t", func(p *sim.Proc) {
			c.Ensure(p, []uint64{7})
			finished++
		})
	}
	eng.Run()
	if issued != 1 {
		t.Fatalf("single-flight violated: %d device reads for one page", issued)
	}
	if finished != 3 {
		t.Fatalf("only %d waiters finished", finished)
	}
	if c.Waits != 2 {
		t.Fatalf("Waits = %d, want 2", c.Waits)
	}
}

func TestCachePrefetchAvoidsBlocking(t *testing.T) {
	eng := sim.NewEngine()
	c := blockdev.NewPageCache(slowDev(eng, 100*sim.Microsecond), 64)
	var elapsed sim.Time
	eng.Spawn("t", func(p *sim.Proc) {
		c.Prefetch([]uint64{1, 2, 3, 4})
		p.Sleep(150 * sim.Microsecond) // prefetches land meanwhile
		start := p.Now()
		c.Ensure(p, []uint64{1, 2, 3, 4})
		elapsed = p.Now() - start
	})
	eng.Run()
	if elapsed != 0 {
		t.Fatalf("Ensure after prefetch blocked %dus", elapsed/1000)
	}
	if c.Hits != 4 {
		t.Fatalf("hits = %d", c.Hits)
	}
}

func TestGenPowerLawDeterministicAndShaped(t *testing.T) {
	g1 := GenPowerLaw(1000, 8, 77)
	g2 := GenPowerLaw(1000, 8, 77)
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatal("generation not deterministic")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("generation not deterministic")
		}
	}
	// Low-ID vertices receive far more in-edges than high-ID ones.
	lowIn := g1.ROffsets[100] - g1.ROffsets[0]
	highIn := g1.ROffsets[1000] - g1.ROffsets[900]
	if lowIn < 3*highIn {
		t.Fatalf("degree distribution not skewed: low=%d high=%d", lowIn, highIn)
	}
	if g1.TotalPages() == 0 {
		t.Fatal("no pages")
	}
}

func TestGenValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad size accepted")
		}
	}()
	GenPowerLaw(1, 0, 1)
}

func TestCacheValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	blockdev.NewPageCache(instantDev(sim.NewEngine()), 0)
}

// refSCC is an in-memory Kosaraju reference.
func refSCC(g *Graph) []int32 {
	n := g.N
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	type frame struct {
		v    int32
		next int
	}
	var stack []frame
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		stack = append(stack[:0], frame{v: int32(s)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			lo, hi := g.Offsets[f.v], g.Offsets[f.v+1]
			advanced := false
			for f.next < int(hi-lo) {
				t := g.Edges[lo+int64(f.next)]
				f.next++
				if !visited[t] {
					visited[t] = true
					stack = append(stack, frame{v: t})
					advanced = true
					break
				}
			}
			if !advanced {
				order = append(order, f.v)
				stack = stack[:len(stack)-1]
			}
		}
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var dfs []int32
	next := int32(0)
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] >= 0 {
			continue
		}
		comp[root] = next
		dfs = append(dfs[:0], root)
		for len(dfs) > 0 {
			v := dfs[len(dfs)-1]
			dfs = dfs[:len(dfs)-1]
			for _, t := range g.REdges[g.ROffsets[v]:g.ROffsets[v+1]] {
				if comp[t] < 0 {
					comp[t] = next
					dfs = append(dfs, t)
				}
			}
		}
		next++
	}
	return comp
}

// samePartition checks two labelings induce the same partition.
func samePartition(a, b []int32) bool {
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := rev[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func TestSCCMatchesKosarajuProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		var edges [][2]int32
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			edges = append(edges, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		g := Build(n, edges)
		eng := sim.NewEngine()
		pg := pagedOn(eng, g, instantDev(eng))
		var comp []int32
		eng.Spawn("t", func(p *sim.Proc) { comp = SCC(p, pg) })
		eng.Run()
		return samePartition(comp, refSCC(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
