// Package flashx is a semi-external-memory graph analytics engine in the
// style of FlashX/FlashGraph (§5.6): vertex index arrays live in memory
// while edge lists live on flash pages, fetched on demand through a page
// cache backed by a block device. The four benchmark algorithms of
// Figure 7b — weakly connected components, PageRank, breadth-first search
// and strongly connected components — run as real algorithms over real
// adjacency data; only I/O time comes from the simulated device.
package flashx

import (
	"fmt"
	"math"

	"github.com/reflex-go/reflex/internal/sim"
)

// Graph is a directed graph in CSR form plus its reverse (CSC) for
// algorithms that traverse in-edges.
type Graph struct {
	N int
	// Offsets[v]..Offsets[v+1] index Edges with v's out-neighbors.
	Offsets []int64
	Edges   []int32
	// ROffsets/REdges are the reverse adjacency (in-neighbors).
	ROffsets []int64
	REdges   []int32
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// OutDegree returns v's out-degree.
func (g *Graph) OutDegree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Build constructs a graph (and its reverse) from an edge list.
func Build(n int, edges [][2]int32) *Graph {
	g := &Graph{N: n}
	deg := make([]int64, n+1)
	rdeg := make([]int64, n+1)
	for _, e := range edges {
		deg[e[0]+1]++
		rdeg[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
		rdeg[i+1] += rdeg[i]
	}
	g.Offsets = deg
	g.ROffsets = rdeg
	g.Edges = make([]int32, len(edges))
	g.REdges = make([]int32, len(edges))
	cur := make([]int64, n)
	rcur := make([]int64, n)
	for _, e := range edges {
		g.Edges[g.Offsets[e[0]]+cur[e[0]]] = e[1]
		cur[e[0]]++
		g.REdges[g.ROffsets[e[1]]+rcur[e[1]]] = e[0]
		rcur[e[1]]++
	}
	return g
}

// GenPowerLaw generates a deterministic scale-free-ish directed graph: each
// vertex emits ~avgDeg edges with targets biased toward low vertex IDs
// (degree ~ 1/sqrt(rank), like social graphs). About a third of edges are
// reciprocated, as in real social networks, which keeps the BFS diameter
// small; a ring edge guarantees connectivity. It stands in for the
// SOC-LiveJournal1 graph of §5.6, scaled down (see EXPERIMENTS.md).
func GenPowerLaw(n, avgDeg int, seed int64) *Graph {
	if n < 2 || avgDeg < 1 {
		panic(fmt.Sprintf("flashx: bad graph size n=%d avgDeg=%d", n, avgDeg))
	}
	rng := sim.NewRNG(seed)
	edges := make([][2]int32, 0, n*avgDeg+n)
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int32{int32(v), int32((v + 1) % n)})
		// Vary out-degree: a few hubs, many low-degree vertices.
		d := avgDeg - 1
		if rng.Float64() < 0.05 {
			d *= 8
		}
		for i := 0; i < d; i++ {
			u := rng.Float64()
			t := int32(math.Floor(u * u * float64(n)))
			if t >= int32(n) {
				t = int32(n - 1)
			}
			edges = append(edges, [2]int32{int32(v), t})
			if rng.Float64() < 0.35 {
				edges = append(edges, [2]int32{t, int32(v)})
			}
		}
	}
	return Build(n, edges)
}

// Page layout on the device: 4-byte edges, 1024 per 4KB page. Forward
// edges start at page 0; reverse edges follow.
const edgesPerPage = 1024

// fwdPage returns the device page holding forward edge index i.
func (g *Graph) fwdPage(i int64) uint64 { return uint64(i / edgesPerPage) }

// revBase returns the first device page of the reverse edge array.
func (g *Graph) revBase() uint64 {
	return uint64((int64(len(g.Edges)) + edgesPerPage - 1) / edgesPerPage)
}

// revPage returns the device page holding reverse edge index i.
func (g *Graph) revPage(i int64) uint64 {
	return g.revBase() + uint64(i/edgesPerPage)
}

// TotalPages returns the number of device pages the graph occupies.
func (g *Graph) TotalPages() uint64 {
	return g.revBase() + uint64((int64(len(g.REdges))+edgesPerPage-1)/edgesPerPage)
}
