package flashx

import (
	"sort"

	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/sim"
)

// PagedGraph serves adjacency lists through a page cache, charging modeled
// CPU time per traversed edge so compute and I/O overlap realistically.
type PagedGraph struct {
	G     *Graph
	cache *blockdev.PageCache

	// EdgeCPU is the modeled compute per traversed edge.
	EdgeCPU sim.Time
	// VertexCPU is the modeled compute per processed vertex.
	VertexCPU sim.Time
	// MissCPU is the initiator-side CPU stolen from the application core
	// per missed page: the kernel block/iSCSI/TCP processing that runs on
	// the same CPU as the vertex program. Backends set it (an iSCSI
	// initiator with its data copies costs far more than the local NVMe
	// path).
	MissCPU sim.Time
	// Readahead is how many pages ahead sequential scans prefetch.
	Readahead int

	cpuDebt    sim.Time
	seenMisses uint64
}

// NewPaged wraps a graph over a device with a cache of cachePages pages.
func NewPaged(g *Graph, dev blockdev.Device, cachePages int) *PagedGraph {
	return &PagedGraph{
		G:     g,
		cache: blockdev.NewPageCache(dev, cachePages),
		// Per-edge/vertex costs approximate FlashGraph's vertex-program
		// overhead scaled to our page sizes: compute and I/O bandwidth
		// demand are comparable, so a slow remote path shows up without
		// drowning out batching effects.
		EdgeCPU:   30,
		VertexCPU: 100,
		MissCPU:   sim.Microsecond,
		Readahead: 32,
	}
}

// Cache exposes cache statistics.
func (pg *PagedGraph) Cache() *blockdev.PageCache { return pg.cache }

// charge accumulates modeled CPU and sleeps in batches to keep the event
// count low.
func (pg *PagedGraph) charge(p *sim.Proc, d sim.Time) {
	pg.cpuDebt += d
	if pg.cpuDebt >= 20*sim.Microsecond {
		p.Sleep(pg.cpuDebt)
		pg.cpuDebt = 0
	}
}

// FlushCPU settles any remaining modeled CPU debt.
func (pg *PagedGraph) FlushCPU(p *sim.Proc) {
	pg.chargeMisses(p)
	if pg.cpuDebt > 0 {
		p.Sleep(pg.cpuDebt)
		pg.cpuDebt = 0
	}
}

// chargeMisses bills the application core for initiator CPU of any page
// misses since the last call.
func (pg *PagedGraph) chargeMisses(p *sim.Proc) {
	if cur := pg.cache.Misses; cur > pg.seenMisses {
		pg.charge(p, sim.Time(cur-pg.seenMisses)*pg.MissCPU)
		pg.seenMisses = cur
	}
}

// pageRange lists the pages covering edge indices [lo, hi) mapped by pageOf.
func pageRange(lo, hi int64, pageOf func(int64) uint64) []uint64 {
	if hi <= lo {
		return nil
	}
	first, last := pageOf(lo), pageOf(hi-1)
	pages := make([]uint64, 0, last-first+1)
	for pp := first; pp <= last; pp++ {
		pages = append(pages, pp)
	}
	return pages
}

// Neighbors returns v's out-neighbors, faulting in their pages.
func (pg *PagedGraph) Neighbors(p *sim.Proc, v int) []int32 {
	lo, hi := pg.G.Offsets[v], pg.G.Offsets[v+1]
	pg.cache.Ensure(p, pageRange(lo, hi, pg.G.fwdPage))
	pg.chargeMisses(p)
	pg.charge(p, pg.VertexCPU+sim.Time(hi-lo)*pg.EdgeCPU)
	return pg.G.Edges[lo:hi]
}

// InNeighbors returns v's in-neighbors, faulting in their pages.
func (pg *PagedGraph) InNeighbors(p *sim.Proc, v int) []int32 {
	lo, hi := pg.G.ROffsets[v], pg.G.ROffsets[v+1]
	pg.cache.Ensure(p, pageRange(lo, hi, pg.G.revPage))
	pg.chargeMisses(p)
	pg.charge(p, pg.VertexCPU+sim.Time(hi-lo)*pg.EdgeCPU)
	return pg.G.REdges[lo:hi]
}

// prefetchAround issues readahead for a sequential scan position.
func (pg *PagedGraph) prefetchAround(edgeIdx int64, total int64, pageOf func(int64) uint64) {
	if pg.Readahead <= 0 {
		return
	}
	basePage := pageOf(edgeIdx)
	lastPage := pageOf(maxI64(total-1, 0))
	pages := make([]uint64, 0, pg.Readahead)
	for i := 1; i <= pg.Readahead; i++ {
		next := basePage + uint64(i)
		if next > lastPage {
			break
		}
		pages = append(pages, next)
	}
	pg.cache.Prefetch(pages)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ForEachBatched visits the adjacency lists of a set of vertices with the
// asynchronous vertex-centric I/O pattern of FlashGraph: it faults the
// vertices' edge pages in cache-bounded chunks (all misses of a chunk in
// flight at once) and then hands each vertex's neighbor slice to fn. The
// chunk bound keeps a large frontier from evicting its own pages before
// they are consumed.
func (pg *PagedGraph) ForEachBatched(p *sim.Proc, vertices []int32, reverse bool, fn func(v int32, nbrs []int32)) {
	offsets, pageOf := pg.G.Offsets, pg.G.fwdPage
	edges := pg.G.Edges
	if reverse {
		offsets, pageOf = pg.G.ROffsets, pg.G.revPage
		edges = pg.G.REdges
	}
	// Sort the batch by vertex ID (equivalently, by edge-page order) so
	// chunks touch contiguous pages and each page is fetched once —
	// FlashGraph merges active-vertex I/O the same way.
	vertices = append([]int32(nil), vertices...)
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })
	budget := pg.cache.Cap() / 3
	if budget < 1 {
		budget = 1
	}
	// Split the batch into cache-bounded chunks up front so chunk k+1 can
	// be prefetched while chunk k computes (FlashGraph's compute/I/O
	// overlap).
	type chunk struct {
		lo, hi int
		pages  []uint64
	}
	var chunks []chunk
	for start := 0; start < len(vertices); {
		var pages []uint64
		end := start
		for end < len(vertices) && (len(pages) < budget || end == start) {
			v := vertices[end]
			pages = append(pages, pageRange(offsets[v], offsets[v+1], pageOf)...)
			end++
		}
		chunks = append(chunks, chunk{lo: start, hi: end, pages: pages})
		start = end
	}
	for i, ch := range chunks {
		pg.cache.Ensure(p, ch.pages)
		if i+1 < len(chunks) {
			// Fetch the next chunk while this one computes.
			pg.cache.Prefetch(chunks[i+1].pages)
		}
		pg.chargeMisses(p)
		for _, v := range vertices[ch.lo:ch.hi] {
			lo, hi := offsets[v], offsets[v+1]
			pg.charge(p, pg.VertexCPU+sim.Time(hi-lo)*pg.EdgeCPU)
			fn(v, edges[lo:hi])
		}
	}
}

// ScanNeighbors returns v's out-neighbors during a sequential
// vertex-ordered scan, with readahead.
func (pg *PagedGraph) ScanNeighbors(p *sim.Proc, v int) []int32 {
	lo := pg.G.Offsets[v]
	pg.prefetchAround(lo, int64(len(pg.G.Edges)), pg.G.fwdPage)
	return pg.Neighbors(p, v)
}

// ScanInNeighbors is ScanNeighbors for the reverse graph.
func (pg *PagedGraph) ScanInNeighbors(p *sim.Proc, v int) []int32 {
	lo := pg.G.ROffsets[v]
	pg.prefetchAround(lo, int64(len(pg.G.REdges)), pg.G.revPage)
	return pg.InNeighbors(p, v)
}
