package flashx

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/sim"
)

// BFS computes breadth-first levels from src (-1 = unreached). Like
// FlashGraph's vertex-centric engine, each level issues the page faults
// for the whole frontier at once (asynchronous I/O overlapped across the
// level) before traversing — random access, but massively parallel.
func BFS(p *sim.Proc, pg *PagedGraph, src int) []int32 {
	levels := make([]int32, pg.G.N)
	for i := range levels {
		levels[i] = -1
	}
	levels[src] = 0
	frontier := []int32{int32(src)}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []int32
		pg.ForEachBatched(p, frontier, false, func(v int32, nbrs []int32) {
			for _, t := range nbrs {
				if levels[t] < 0 {
					levels[t] = depth
					next = append(next, t)
				}
			}
		})
		frontier = next
	}
	pg.FlushCPU(p)
	return levels
}

// PageRank runs the standard damped power iteration for iters rounds using
// sequential scans over out-edges (push style) — the streaming pattern
// that makes PR bandwidth-bound.
func PageRank(p *sim.Proc, pg *PagedGraph, iters int) []float64 {
	n := pg.G.N
	const damping = 0.85
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1
	}
	for it := 0; it < iters; it++ {
		base := 1 - damping
		// Dangling mass is redistributed uniformly.
		var dangling float64
		for v := 0; v < n; v++ {
			if pg.G.OutDegree(v) == 0 {
				dangling += rank[v]
			}
		}
		base += damping * dangling / float64(n)
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			outs := pg.ScanNeighbors(p, v)
			if len(outs) == 0 {
				continue
			}
			share := damping * rank[v] / float64(len(outs))
			for _, t := range outs {
				next[t] += share
			}
		}
		rank, next = next, rank
	}
	pg.FlushCPU(p)
	return rank
}

// WCC computes weakly connected component labels by label propagation over
// both edge directions, scanning sequentially until a fixpoint.
func WCC(p *sim.Proc, pg *PagedGraph) []int32 {
	n := pg.G.N
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			m := labels[v]
			for _, t := range pg.ScanNeighbors(p, v) {
				if labels[t] < m {
					m = labels[t]
				}
			}
			for _, t := range pg.ScanInNeighbors(p, v) {
				if labels[t] < m {
					m = labels[t]
				}
			}
			if m < labels[v] {
				labels[v] = m
				changed = true
			}
			// Push the minimum outward so propagation converges in few
			// sweeps.
			for _, t := range pg.G.Edges[pg.G.Offsets[v]:pg.G.Offsets[v+1]] {
				if labels[t] > m {
					labels[t] = m
					changed = true
				}
			}
		}
	}
	pg.FlushCPU(p)
	return labels
}

// SCC computes strongly connected components with the forward-backward
// algorithm FlashGraph-class engines use: trim trivial components, then
// repeatedly take a pivot and intersect its forward- and backward-reachable
// sets, each computed with level-parallel (batched-I/O) BFS. Two heavy
// random-access sweeps per pivot — the benchmark iSCSI slows by 40% on in
// Fig. 7b.
func SCC(p *sim.Proc, pg *PagedGraph) []int32 {
	n := pg.G.N
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	nextComp := int32(0)

	// Trim: a vertex with no out-edges or no in-edges at all is its own
	// SCC (degree arrays are in memory; no I/O needed).
	for v := 0; v < n; v++ {
		if pg.G.Offsets[v+1] == pg.G.Offsets[v] || pg.G.ROffsets[v+1] == pg.G.ROffsets[v] {
			comp[v] = nextComp
			nextComp++
		}
	}

	// reach marks all active vertices reachable from pivot in the chosen
	// direction, with frontier-batched page faults.
	mark := make([]int32, n) // generation stamps
	gen := int32(0)
	reach := func(pivot int32, reverse bool) []int32 {
		gen++
		out := []int32{pivot}
		mark[pivot] = gen
		frontier := []int32{pivot}
		for len(frontier) > 0 {
			var next []int32
			pg.ForEachBatched(p, frontier, reverse, func(v int32, nbrs []int32) {
				for _, t := range nbrs {
					if comp[t] < 0 && mark[t] != gen {
						mark[t] = gen
						next = append(next, t)
						out = append(out, t)
					}
				}
			})
			frontier = next
		}
		return out
	}

	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		pivot := int32(s)
		fwd := reach(pivot, false)
		fwdMark := make(map[int32]bool, len(fwd))
		for _, v := range fwd {
			fwdMark[v] = true
		}
		bwd := reach(pivot, true)
		for _, v := range bwd {
			if fwdMark[v] {
				comp[v] = nextComp
			}
		}
		nextComp++
	}
	pg.FlushCPU(p)
	return comp
}

// Algo names a benchmark algorithm.
type Algo string

// The four §5.6 benchmarks.
const (
	AlgoWCC Algo = "WCC"
	AlgoPR  Algo = "PR"
	AlgoBFS Algo = "BFS"
	AlgoSCC Algo = "SCC"
)

// Run executes one algorithm over the paged graph in a fresh process and
// returns the elapsed virtual time plus a result summary value (reached
// vertices for BFS, component count for WCC/SCC, scaled rank mass for PR)
// for cross-configuration consistency checks.
func Run(eng *sim.Engine, pg *PagedGraph, algo Algo) (elapsed sim.Time, summary int64) {
	var start sim.Time
	eng.Spawn(string(algo), func(p *sim.Proc) {
		start = p.Now()
		switch algo {
		case AlgoBFS:
			levels := BFS(p, pg, 0)
			for _, l := range levels {
				if l >= 0 {
					summary++
				}
			}
		case AlgoPR:
			ranks := PageRank(p, pg, 10)
			var sum float64
			for _, r := range ranks {
				sum += r
			}
			summary = int64(sum)
		case AlgoWCC:
			summary = int64(countDistinct(WCC(p, pg)))
		case AlgoSCC:
			summary = int64(countDistinct(SCC(p, pg)))
		default:
			panic(fmt.Sprintf("flashx: unknown algorithm %q", algo))
		}
		elapsed = p.Now() - start
	})
	eng.Run()
	return elapsed, summary
}

func countDistinct(labels []int32) int {
	seen := make(map[int32]bool)
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
