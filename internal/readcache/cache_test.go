package readcache

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
)

func block(v byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = v
	}
	return b
}

// fillKey drives key through miss → admit → fill and fails the test if
// any step refuses.
func fillKey(t *testing.T, c *Cache, key uint64, data []byte) {
	t.Helper()
	for tries := 0; tries < 8; tries++ {
		hit, admit, epoch := c.Probe(key, 0, nil)
		if hit {
			return
		}
		if admit {
			if !c.CommitFill(key, epoch, data) {
				t.Fatalf("CommitFill(%d) aborted with no concurrent invalidation", key)
			}
			return
		}
	}
	t.Fatalf("key %d never admitted", key)
}

func TestCostAdmissionSecondMiss(t *testing.T) {
	// Default AdmitCost is one per-hit saving (ReadCost-HitCost), so the
	// second miss admits even with the server's nonzero HitCost.
	c, err := New(Config{Blocks: 64, Segments: 1, ReadCost: 1000, HitCost: 62})
	if err != nil {
		t.Fatal(err)
	}
	// First touch: miss, not admitted (no observed re-reference yet).
	hit, admit, _ := c.Probe(7, 0, nil)
	if hit || admit {
		t.Fatalf("first miss: hit=%v admit=%v, want false/false", hit, admit)
	}
	// Second touch: one re-reference observed; (2-1)*(1000-62) >= 938.
	_, admit, epoch := c.Probe(7, 0, nil)
	if !admit {
		t.Fatal("second miss not admitted: saving 938 covers default hurdle 938")
	}
	if !c.CommitFill(7, epoch, block(0xAB)) {
		t.Fatal("fill aborted")
	}
	dst := make([]byte, 16)
	hit, _, _ = c.Probe(7, 8, dst)
	if !hit {
		t.Fatal("expected hit after fill")
	}
	if dst[0] != 0xAB {
		t.Fatalf("hit returned %x, want ab", dst[0])
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 2 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCostAdmissionExplicitHurdle(t *testing.T) {
	// An explicit AdmitCost above one saving raises the bar: at
	// AdmitCost=ReadCost with HitCost=62 the saving per re-reference is
	// 938, so two re-references (the third miss) are needed.
	c, err := New(Config{Blocks: 64, Segments: 1, ReadCost: 1000, HitCost: 62, AdmitCost: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, admit, _ := c.Probe(7, 0, nil); admit {
			t.Fatalf("miss %d admitted below the 1000 hurdle", i+1)
		}
	}
	if _, admit, _ := c.Probe(7, 0, nil); !admit {
		t.Fatal("third miss not admitted: 2*938 >= 1000")
	}
}

func TestAdmitModes(t *testing.T) {
	always, _ := New(Config{Blocks: 8, Mode: ModeAlways})
	if _, admit, _ := always.Probe(1, 0, nil); !admit {
		t.Fatal("ModeAlways refused a miss")
	}
	never, _ := New(Config{Blocks: 8, Mode: ModeNever})
	for i := 0; i < 4; i++ {
		if _, admit, _ := never.Probe(1, 0, nil); admit {
			t.Fatal("ModeNever admitted")
		}
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"": ModeCost, "cost": ModeCost, "always": ModeAlways, "never": ModeNever} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Fatal("ParseMode accepted garbage")
	}
}

func TestInvalidateDropsAndFences(t *testing.T) {
	c, _ := New(Config{Blocks: 32, Segments: 1, Mode: ModeAlways})
	fillKey(t, c, 5, block(1))

	// Resident entry dropped.
	c.Invalidate(5, 1)
	if hit, _, _ := c.Probe(5, 0, nil); hit {
		t.Fatal("hit after Invalidate")
	}

	// In-flight fill fenced: epoch sampled before the invalidation.
	_, admit, epoch := c.Probe(9, 0, nil)
	if !admit {
		t.Fatal("ModeAlways must admit")
	}
	c.Invalidate(9, 1) // write lands between the miss and the fill
	if c.CommitFill(9, epoch, block(2)) {
		t.Fatal("stale fill committed across an invalidation")
	}
	if hit, _, _ := c.Probe(9, 0, nil); hit {
		t.Fatal("fenced fill became visible")
	}
	if st := c.Stats(); st.FillAborts != 1 {
		t.Fatalf("FillAborts = %d, want 1", st.FillAborts)
	}
}

// TestLostFenceAbortsInFlightFill reproduces the fence-loss interleave:
// a fill is probed, its key's ghost entry (the only per-key fence state)
// is displaced by ghost-table churn, a write to the key lands — finding
// no entry to stamp — and a fresh miss re-creates a clean entry. The
// lostInval watermark must still abort the original fill, or it would
// commit pre-write data after the write was acked.
func TestLostFenceAbortsInFlightFill(t *testing.T) {
	// ModeCost with defaults: minRefs = 2, so one-touch ghost entries
	// are not fence-carrying and evicting them advances nothing — the
	// property the interleave below exploits.
	c, _ := New(Config{Blocks: 2, Segments: 1})
	const K = uint64(12345)
	// Admit K on the second miss; the fill is now "in flight" at epoch.
	c.Probe(K, 0, nil)
	_, admit, epoch := c.Probe(K, 0, nil)
	if !admit {
		t.Fatal("second miss not admitted")
	}
	// Churn the ghost table (4 entries at this size) with double-probed
	// keys until K's entry — the fill's only per-key fence — is
	// displaced by a min-refs tie.
	s := c.seg(K)
	evicted := false
	for j := uint64(1); j <= 256 && !evicted; j++ {
		c.Probe(K+j*7919, 0, nil)
		c.Probe(K+j*7919, 0, nil)
		s.mu.Lock()
		evicted = s.ghostOf(K) == nil
		s.mu.Unlock()
	}
	if !evicted {
		t.Fatal("ghost churn never displaced the fill's fence entry")
	}
	// Leave a one-touch entry for the later re-creation of K to evict,
	// so that re-creation cannot itself re-arm the fence.
	c.Probe(K+(1<<40), 0, nil)
	// The write lands and is acked: nothing resident, no ghost to stamp.
	c.Invalidate(K, 1)
	// A fresh miss re-creates K's ghost entry with a clean fence,
	// displacing only the one-touch entry above.
	c.Probe(K, 0, nil)
	// The fill probed before the write must not commit pre-write data.
	if c.CommitFill(K, epoch, block(0xEE)) {
		t.Fatal("stale fill committed after its fence entry was evicted")
	}
	if hit, _, _ := c.Probe(K, 0, nil); hit {
		t.Fatal("pre-write data visible after an acked write")
	}
}

// TestFenceLosingEvictionNotSelfFencing: the probe whose own miss
// displaces a fence-carrying ghost entry samples its epoch after the
// clock bump, so its fill still commits.
func TestFenceLosingEvictionNotSelfFencing(t *testing.T) {
	c, _ := New(Config{Blocks: 2, Segments: 1, Mode: ModeAlways})
	// Fill the 4-entry ghost table; in ModeAlways every entry could be
	// fencing a fill.
	for k := uint64(1); k <= 4; k++ {
		c.Probe(k, 0, nil)
	}
	_, admit, epoch := c.Probe(99, 0, nil)
	if !admit {
		t.Fatal("ModeAlways must admit")
	}
	s := c.seg(99)
	s.mu.Lock()
	lost := s.lostInval
	s.mu.Unlock()
	if lost == 0 {
		t.Fatal("probe did not displace a fence-carrying ghost entry")
	}
	if !c.CommitFill(99, epoch, block(1)) {
		t.Fatal("evicting probe fenced its own fill")
	}
	if hit, _, _ := c.Probe(99, 0, nil); !hit {
		t.Fatal("fill not resident")
	}
}

func TestInvalidateRange(t *testing.T) {
	c, _ := New(Config{Blocks: 64, Mode: ModeAlways})
	for b := uint64(0); b < 8; b++ {
		fillKey(t, c, Key(0, 100+b), block(byte(b)))
	}
	c.Invalidate(Key(0, 102), 3)
	for b := uint64(0); b < 8; b++ {
		hit, _, _ := c.Probe(Key(0, 100+b), 0, nil)
		want := b < 2 || b > 4
		if hit != want {
			t.Fatalf("block %d: hit=%v want %v", 100+b, hit, want)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(Config{Blocks: 4, Segments: 1, Mode: ModeAlways})
	for k := uint64(0); k < 4; k++ {
		fillKey(t, c, k, block(byte(k)))
	}
	// Touch 0 so 1 is the LRU victim.
	if hit, _, _ := c.Probe(0, 0, nil); !hit {
		t.Fatal("warm entry missing")
	}
	fillKey(t, c, 99, block(99))
	if hit, _, _ := c.Probe(1, 0, nil); hit {
		t.Fatal("LRU victim still resident")
	}
	for _, k := range []uint64{0, 2, 3, 99} {
		if hit, _, _ := c.Probe(k, 0, nil); !hit {
			t.Fatalf("key %d evicted, want resident", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFlushAll(t *testing.T) {
	c, _ := New(Config{Blocks: 64, Mode: ModeAlways})
	for k := uint64(0); k < 32; k++ {
		fillKey(t, c, k, block(byte(k)))
	}
	// Sample a fill epoch before the flush: the flush must fence it.
	_, _, epoch := c.Probe(1000, 0, nil)
	c.FlushAll()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries after flush: %d", st.Entries)
	}
	for k := uint64(0); k < 32; k++ {
		if hit, _, _ := c.Probe(k, 0, nil); hit {
			t.Fatalf("key %d survived FlushAll", k)
		}
	}
	if c.CommitFill(1000, epoch, block(1)) {
		t.Fatal("fill crossed a FlushAll fence")
	}
}

func TestNoDataMode(t *testing.T) {
	c, _ := New(Config{Blocks: 16, Mode: ModeAlways, NoData: true})
	_, admit, epoch := c.Probe(3, 0, nil)
	if !admit {
		t.Fatal("not admitted")
	}
	if !c.CommitFill(3, epoch, nil) {
		t.Fatal("presence-only fill refused")
	}
	if hit, _, _ := c.Probe(3, 0, nil); !hit {
		t.Fatal("presence-only hit missing")
	}
}

func TestKeySpacesDisjoint(t *testing.T) {
	if Key(0, 42) == Key(1, 42) {
		t.Fatal("device keyspaces collide")
	}
	if Key(3, 42)&(1<<56-1) != 42 {
		t.Fatal("block bits mangled")
	}
}

func TestSubBlockCopy(t *testing.T) {
	c, _ := New(Config{Blocks: 8, Mode: ModeAlways})
	data := make([]byte, BlockSize)
	for i := 0; i < BlockSize; i += 8 {
		binary.LittleEndian.PutUint64(data[i:], uint64(i))
	}
	fillKey(t, c, 1, data)
	dst := make([]byte, 512)
	if hit, _, _ := c.Probe(1, 1024, dst); !hit {
		t.Fatal("miss")
	}
	if !bytes.Equal(dst, data[1024:1536]) {
		t.Fatal("sub-block copy window wrong")
	}
}

// TestProbeHitZeroAlloc is the cache-hit alloc gate: the pcore hot path
// leans on Probe/Invalidate/CommitFill staying allocation-free over a
// steady-state working set (entries preallocated, ghost table fixed,
// index churn confined to existing map cells).
func TestProbeHitZeroAlloc(t *testing.T) {
	c, _ := New(Config{Blocks: 256, Mode: ModeAlways})
	keys := make([]uint64, 64)
	data := block(7)
	for i := range keys {
		keys[i] = Key(0, uint64(i*3))
		fillKey(t, c, keys[i], data)
	}
	dst := make([]byte, 512)

	i := 0
	if n := testing.AllocsPerRun(500, func() {
		hit, _, _ := c.Probe(keys[i%len(keys)], 128, dst)
		if !hit {
			t.Fatal("steady-state probe missed")
		}
		i++
	}); n != 0 {
		t.Fatalf("Probe hit allocates %.1f/op, want 0", n)
	}

	// Misses on an untracked key (ghost bookkeeping only).
	if n := testing.AllocsPerRun(500, func() {
		c.Probe(Key(2, uint64(i%1024)), 0, nil)
		i++
	}); n != 0 {
		t.Fatalf("Probe miss allocates %.1f/op, want 0", n)
	}

	// Write-invalidate + refill cycle on a stable working set.
	if n := testing.AllocsPerRun(500, func() {
		k := keys[i%len(keys)]
		c.Invalidate(k, 1)
		_, _, epoch := c.Probe(k, 0, nil)
		if !c.CommitFill(k, epoch, data) {
			t.Fatal("refill aborted")
		}
		i++
	}); n != 0 {
		t.Fatalf("invalidate+refill allocates %.1f/op, want 0", n)
	}
}

// TestConcurrentChurn hammers one segment set from probing, filling and
// invalidating goroutines; run under -race it checks the locking and the
// invariant that a hit never returns torn data (a block is stamped with
// one repeated byte; any mix means a copy raced an overwrite).
func TestConcurrentChurn(t *testing.T) {
	c, _ := New(Config{Blocks: 128, Segments: 4, Mode: ModeAlways})
	const keys = 32
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup

	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed byte) {
			defer writers.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(v) % keys
				c.Invalidate(k, 1)
				_, _, epoch := c.Probe(k, 0, nil)
				c.CommitFill(k, epoch, block(v))
				v++
			}
		}(byte(w * 100))
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			dst := make([]byte, BlockSize)
			for n := 0; n < 20000; n++ {
				k := uint64(n) % keys
				if hit, _, _ := c.Probe(k, 0, dst); hit {
					v := dst[0]
					for i := 1; i < BlockSize; i += 977 {
						if dst[i] != v {
							t.Errorf("torn read: dst[0]=%d dst[%d]=%d", v, i, dst[i])
							return
						}
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
