// Package readcache is a sharded, bounded DRAM read cache that sits in
// front of a Flash device (real backend or flashsim) and turns the QoS
// cost model (§3.2.1) into an admission policy.
//
// The cache holds whole 4KB device blocks — the costing granularity — in
// buffers leased once from internal/bufpool at construction and owned for
// the cache's lifetime, so the steady-state hot path performs no
// allocation and no pool traffic. Capacity is split across lock-striped
// segments (each with its own mutex, index, and intrusive LRU over a
// preallocated slot array) so per-core server loops never contend on a
// shared cache-wide lock.
//
// Admission is cost-model-driven: a miss is only worth filling when the
// device tokens its future hits will save exceed the token cost of the
// fill itself (one device read) plus the eviction it forces. Each segment
// keeps a small fixed "ghost" table of recently missed keys with a
// re-reference count; a block is admitted once
//
//	(refs-1) × (ReadCost - HitCost) ≥ AdmitCost
//
// i.e. the re-reference traffic actually observed, valued at the per-hit
// token saving, has paid for the admission overhead. The default
// AdmitCost is one per-hit saving (ReadCost - HitCost), so whatever the
// HitCost the cache admits on the second miss — one observed
// re-reference proves the block is not a streaming scan and has already
// paid the hurdle. Pricing AdmitCost higher raises the bar: at
// AdmitCost = ReadCost a nonzero HitCost pushes admission to the third
// miss.
//
// Consistency contract: writers must call Invalidate after the backend
// write applies and before the write is acknowledged. Fills are fenced
// per key: Probe samples the segment's invalidation clock as the fill
// epoch, Invalidate stamps the written key's ghost entry with the clock,
// and CommitFill aborts when the key was stamped after the fill's epoch
// (or when the fence bookkeeping itself was lost — ghost eviction or
// FlushAll — tracked by the segment's lostInval/flushed watermarks).
// Writes to other keys in the segment never abort a fill, so slow fills
// survive unrelated write traffic. Under that ordering a read issued
// after a write's ack can never observe pre-write data (see DESIGN.md §17
// for the interleaving argument).
package readcache

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/reflex-go/reflex/internal/bufpool"
	"github.com/reflex-go/reflex/internal/obs"
)

// BlockSize is the cache line: one 4KB device block, the cost model's
// pricing unit.
const BlockSize = 4096

// Mode selects the admission policy.
type Mode int

const (
	// ModeCost admits a block only when its ghost-table re-reference
	// count has paid the admission hurdle in saved device tokens.
	ModeCost Mode = iota
	// ModeAlways admits every miss (classic LRU; useful as a baseline
	// and in experiments isolating the admission policy's effect).
	ModeAlways
	// ModeNever disables fills: the cache serves existing entries until
	// they are invalidated but never admits new ones.
	ModeNever
)

// ParseMode maps the -cache-admit flag values to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "cost":
		return ModeCost, nil
	case "always":
		return ModeAlways, nil
	case "never":
		return ModeNever, nil
	}
	return 0, fmt.Errorf("readcache: unknown admission mode %q (want cost, always or never)", s)
}

func (m Mode) String() string {
	switch m {
	case ModeAlways:
		return "always"
	case ModeNever:
		return "never"
	default:
		return "cost"
	}
}

// Config sizes and parameterizes a Cache.
type Config struct {
	// Blocks is the capacity in 4KB entries (the DRAM budget is
	// Blocks × 4KB plus index overhead). Must be positive.
	Blocks int
	// Segments is the lock-stripe count, rounded up to a power of two;
	// 0 means min(16, Blocks).
	Segments int
	// Mode selects the admission policy (default ModeCost).
	Mode Mode
	// ReadCost is the device's per-4KB read price in millitokens — what
	// one future hit saves. Used only by ModeCost; 0 means 1000.
	ReadCost int64
	// HitCost is the millitoken price of serving a hit
	// (CostModel.CacheServeCost); subtracted from the per-hit saving.
	HitCost int64
	// AdmitCost is the admission overhead hurdle in millitokens. 0 means
	// ReadCost-HitCost (one per-hit saving), which admits on the second
	// miss regardless of HitCost: fills piggyback on the miss read that
	// happens anyway, so one proven re-reference covers the bookkeeping.
	AdmitCost int64
	// NoData runs the cache presence-only: entries carry no payload
	// buffers. The simulated dataplane uses this — flashsim models time,
	// not data, so the cache only needs to decide hit/miss.
	NoData bool
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits          uint64 // probes served from cache
	Misses        uint64 // probes that fell through to the device
	Admits        uint64 // misses the admission policy asked to fill
	Fills         uint64 // fills committed into the cache
	FillAborts    uint64 // fills dropped by the invalidation fence
	Evictions     uint64 // entries evicted to make room
	Invalidations uint64 // entries dropped by Invalidate/FlushAll
	Entries       int    // resident entries now
	CapBlocks     int    // capacity in entries
}

// Cache is a sharded read cache. All methods are safe for concurrent use.
type Cache struct {
	segs    []segment
	segMask uint64
	mode    Mode
	// minRefs is the ghost count at which ModeCost admits: smallest r
	// with (r-1)*(ReadCost-HitCost) >= AdmitCost.
	minRefs uint32
	noData  bool
	capBlk  int

	hits       atomic.Uint64
	misses     atomic.Uint64
	admits     atomic.Uint64
	fills      atomic.Uint64
	fillAborts atomic.Uint64
	evictions  atomic.Uint64
	invals     atomic.Uint64
	entries    atomic.Int64
}

const (
	noSlot     = int32(-1)
	ghostProbe = 4 // linear-probe window in the ghost table
)

type slot struct {
	key        uint64
	buf        *bufpool.Buf // nil in NoData mode
	prev, next int32        // intrusive LRU links (index into slots)
}

type ghostEnt struct {
	key  uint64
	refs uint32
	// inval is the segment version at the key's last invalidation: the
	// per-key fill fence. A fill whose epoch predates it raced a write.
	inval uint64
}

type segment struct {
	mu sync.Mutex
	// version is the segment's invalidation clock: bumped by every
	// invalidation or flush that touches this segment. Probes sample it
	// as the fill epoch; the fence itself is per-key (ghostEnt.inval),
	// so an unrelated write in the segment does not abort a fill.
	version uint64
	// flushed is the version at the last FlushAll: a wholesale fence
	// (fills probed before the flush abort even though their key's ghost
	// entry may have been re-created since).
	flushed uint64
	// lostInval is the version at the last eviction of a ghost entry
	// that could have carried fence state (a stamped entry, or one with
	// enough refs that a fill may be in flight for it). The eviction
	// bumps version first and then records it here, so every fill probed
	// at an earlier epoch — including fills probed at the pre-eviction
	// version, which can no longer prove their key unwritten — aborts,
	// while the evicting probe itself samples the post-bump clock and is
	// not self-fenced. Evicting one-touch unstamped entries — the
	// overwhelmingly common case — does not advance it.
	lostInval uint64
	idx       map[uint64]int32
	slots     []slot
	free      int32 // free-list head threaded through slot.next
	lruHead   int32 // most recently used
	lruTail   int32 // least recently used
	ghost     []ghostEnt
	gmask     uint64
	// pad keeps neighbouring segments' mutexes off one cache line.
	_ [64]byte
}

// New builds a cache. In data mode every slot's 4KB buffer is leased from
// bufpool up front and held for the cache's lifetime, so the hot path
// never touches the pool.
func New(cfg Config) (*Cache, error) {
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("readcache: Blocks must be positive (got %d)", cfg.Blocks)
	}
	if cfg.ReadCost <= 0 {
		cfg.ReadCost = 1000
	}
	if cfg.HitCost < 0 || cfg.HitCost >= cfg.ReadCost {
		return nil, fmt.Errorf("readcache: HitCost %d must be in [0, ReadCost)", cfg.HitCost)
	}
	if cfg.AdmitCost <= 0 {
		cfg.AdmitCost = cfg.ReadCost - cfg.HitCost
	}
	nseg := cfg.Segments
	if nseg <= 0 {
		nseg = 16
		if nseg > cfg.Blocks {
			nseg = cfg.Blocks
		}
	}
	nseg = ceilPow2(nseg)

	saving := cfg.ReadCost - cfg.HitCost
	minRefs := uint32(1 + (cfg.AdmitCost+saving-1)/saving)

	c := &Cache{
		segs:    make([]segment, nseg),
		segMask: uint64(nseg - 1),
		mode:    cfg.Mode,
		minRefs: minRefs,
		noData:  cfg.NoData,
		capBlk:  0,
	}
	perSeg := (cfg.Blocks + nseg - 1) / nseg
	for i := range c.segs {
		s := &c.segs[i]
		s.idx = make(map[uint64]int32, perSeg)
		s.slots = make([]slot, perSeg)
		s.lruHead, s.lruTail = noSlot, noSlot
		// Thread the free list through next links.
		for j := range s.slots {
			s.slots[j].next = int32(j) + 1
			if !cfg.NoData {
				s.slots[j].buf = bufpool.Get(BlockSize)
			}
		}
		s.slots[perSeg-1].next = noSlot
		s.free = 0
		ng := ceilPow2(2 * perSeg)
		s.ghost = make([]ghostEnt, ng)
		s.gmask = uint64(ng - 1)
		c.capBlk += perSeg
	}
	return c, nil
}

// Key composes a cache key from a device index and a 4KB block index.
// Device bits live in the top byte so per-device block spaces never
// collide.
func Key(dev int, block uint64) uint64 {
	return uint64(dev)<<56 | (block & (1<<56 - 1))
}

// mix is Fibonacci hashing; segment choice and ghost slots use disjoint
// bit ranges of the mixed key.
func mix(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 }

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (c *Cache) seg(key uint64) *segment { return &c.segs[(mix(key)>>32)&c.segMask] }

// Probe looks up one 4KB block. On a hit it copies len(dst) bytes
// starting at off within the cached block into dst (both ignored in
// NoData mode, where dst is nil) and refreshes the entry's recency. On a
// miss it bumps the block's ghost re-reference count; admit reports
// whether the admission policy wants the block filled and epoch is the
// fence to hand back to CommitFill. The copy happens under the segment
// lock, so a concurrent Invalidate can never expose a torn entry.
func (c *Cache) Probe(key uint64, off int, dst []byte) (hit, admit bool, epoch uint64) {
	s := c.seg(key)
	s.mu.Lock()
	if i, ok := s.idx[key]; ok {
		sl := &s.slots[i]
		if !c.noData && dst != nil {
			copy(dst, sl.buf.Bytes()[off:off+len(dst)])
		}
		s.lruTouch(i)
		s.mu.Unlock()
		c.hits.Add(1)
		return true, false, 0
	}
	// The epoch is sampled after admitMiss: if recording this miss
	// evicts a fence-carrying ghost entry, admitMiss advances the clock
	// and this probe's own fill must postdate the bump, not be aborted
	// by it.
	admit = c.admitMiss(s, key)
	epoch = s.version
	s.mu.Unlock()
	c.misses.Add(1)
	if admit {
		c.admits.Add(1)
	}
	return false, admit, epoch
}

// admitMiss records a miss in the segment's ghost table and applies the
// admission policy. The ghost entry is maintained in every mode — it
// doubles as the per-key fill fence — so even ModeAlways records the
// miss before admitting. Caller holds s.mu.
func (c *Cache) admitMiss(s *segment, key uint64) bool {
	h := mix(key) & s.gmask
	victim := h
	var victimRefs uint32 = ^uint32(0)
	tracked := false
	var refs uint32
	for p := uint64(0); p < ghostProbe; p++ {
		g := &s.ghost[(h+p)&s.gmask]
		if g.key == key && g.refs > 0 {
			g.refs++
			tracked, refs = true, g.refs
			break
		}
		if g.refs < victimRefs {
			victimRefs = g.refs
			victim = (h + p) & s.gmask
		}
	}
	if !tracked {
		// Not tracked: claim the coldest probed entry. Evicting the
		// smallest refs decays stale history and keeps one-touch scans
		// from displacing blocks that are accumulating evidence.
		ev := &s.ghost[victim]
		if ev.inval > 0 || ev.refs >= c.fillRefs() {
			// The displaced entry could have fenced an in-flight fill;
			// without it, fills probed up to now can't be proven safe.
			// Advance the clock before recording the watermark so those
			// fills (probed at versions < the new one) all abort — a
			// later write to the displaced key would otherwise find no
			// ghost entry to stamp and the fill would resurrect
			// pre-write data.
			s.version++
			s.lostInval = s.version
		}
		*ev = ghostEnt{key: key, refs: 1}
		refs = 1
	}
	switch c.mode {
	case ModeAlways:
		return true
	case ModeNever:
		return false
	}
	return refs >= c.minRefs
}

// fillRefs is the smallest ghost refcount a key with an in-flight fill
// can have: fills launch only on admitted misses, so in ModeCost that is
// minRefs and in ModeAlways a single touch. Ghost evictions below this
// cannot orphan a fill and so don't advance the lostInval watermark.
func (c *Cache) fillRefs() uint32 {
	if c.mode == ModeCost {
		return c.minRefs
	}
	return 1
}

// ghostOf returns the key's ghost entry, or nil if it has been evicted.
// Caller holds s.mu.
func (s *segment) ghostOf(key uint64) *ghostEnt {
	h := mix(key) & s.gmask
	for p := uint64(0); p < ghostProbe; p++ {
		g := &s.ghost[(h+p)&s.gmask]
		if g.key == key && g.refs > 0 {
			return g
		}
	}
	return nil
}

// CommitFill inserts a block read from the device. epoch must come from
// the Probe that missed; if this key was invalidated since (or its fence
// bookkeeping was evicted, or the whole cache was flushed), the fill is
// stale and is dropped (returns false). Writes to other keys in the
// segment do not abort it — the fence is per key, which is what lets
// slow fills survive an unrelated write-heavy tenant. data must be the
// full 4KB block in data mode and is ignored in NoData mode. Filling an
// already-resident key just refreshes it.
func (c *Cache) CommitFill(key, epoch uint64, data []byte) bool {
	if !c.noData && len(data) != BlockSize {
		return false
	}
	s := c.seg(key)
	s.mu.Lock()
	g := s.ghostOf(key)
	if epoch < s.flushed || epoch < s.lostInval || g == nil || g.inval > epoch {
		s.mu.Unlock()
		c.fillAborts.Add(1)
		return false
	}
	if i, ok := s.idx[key]; ok {
		// Another filler won the race; its data is as fresh as ours
		// (both postdate the last invalidation in this epoch).
		s.lruTouch(i)
		s.mu.Unlock()
		return true
	}
	i := s.free
	if i != noSlot {
		s.free = s.slots[i].next
	} else {
		i = s.evictLRU()
		if i == noSlot { // zero-capacity segment (can't happen: perSeg ≥ 1)
			s.mu.Unlock()
			return false
		}
		c.evictions.Add(1)
		c.entries.Add(-1)
	}
	sl := &s.slots[i]
	sl.key = key
	if !c.noData {
		copy(sl.buf.Bytes()[:BlockSize], data)
	}
	s.idx[key] = i
	s.lruPushFront(i)
	s.mu.Unlock()
	c.fills.Add(1)
	c.entries.Add(1)
	return true
}

// Invalidate drops n consecutive blocks starting at key. Writers call it
// after the backend write applies and before acking the client; it also
// stamps each key's per-key fill fence, so a fill racing the write can
// never resurrect pre-write data. A written key with no ghost entry
// needs no stamp: a fill can only be in flight for a key whose admitted
// ghost entry existed at probe time, and evicting such an entry advances
// the segment's lostInval watermark, which aborts those fills wholesale.
func (c *Cache) Invalidate(key uint64, n uint64) {
	for i := uint64(0); i < n; i++ {
		k := key + i
		s := c.seg(k)
		s.mu.Lock()
		s.version++
		if g := s.ghostOf(k); g != nil {
			g.inval = s.version
		}
		if si, ok := s.idx[k]; ok {
			s.dropSlot(k, si)
			c.invals.Add(1)
			c.entries.Add(-1)
		}
		s.mu.Unlock()
	}
}

// FlushAll empties the cache and fences every in-flight fill. Shard-map
// cutovers use it: after a MoveShard the destination may have accepted
// writes this replica never saw, so everything cached here is suspect —
// including ghost history, which is wiped too.
func (c *Cache) FlushAll() {
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.Lock()
		s.version++
		s.flushed = s.version
		for j := range s.ghost {
			s.ghost[j] = ghostEnt{}
		}
		for k, si := range s.idx {
			s.dropSlot(k, si)
			c.invals.Add(1)
			c.entries.Add(-1)
		}
		s.mu.Unlock()
	}
}

// dropSlot unlinks a resident entry and returns its slot to the free
// list. Caller holds s.mu.
func (s *segment) dropSlot(key uint64, i int32) {
	s.lruUnlink(i)
	delete(s.idx, key)
	sl := &s.slots[i]
	sl.next = s.free
	s.free = i
}

// evictLRU removes the least recently used entry and returns its slot
// index, or noSlot if the segment is empty. Caller holds s.mu.
func (s *segment) evictLRU() int32 {
	i := s.lruTail
	if i == noSlot {
		return noSlot
	}
	s.lruUnlink(i)
	delete(s.idx, s.slots[i].key)
	return i
}

func (s *segment) lruPushFront(i int32) {
	sl := &s.slots[i]
	sl.prev = noSlot
	sl.next = s.lruHead
	if s.lruHead != noSlot {
		s.slots[s.lruHead].prev = i
	}
	s.lruHead = i
	if s.lruTail == noSlot {
		s.lruTail = i
	}
}

func (s *segment) lruUnlink(i int32) {
	sl := &s.slots[i]
	if sl.prev != noSlot {
		s.slots[sl.prev].next = sl.next
	} else {
		s.lruHead = sl.next
	}
	if sl.next != noSlot {
		s.slots[sl.next].prev = sl.prev
	} else {
		s.lruTail = sl.prev
	}
}

func (s *segment) lruTouch(i int32) {
	if s.lruHead == i {
		return
	}
	s.lruUnlink(i)
	s.lruPushFront(i)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Admits:        c.admits.Load(),
		Fills:         c.fills.Load(),
		FillAborts:    c.fillAborts.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invals.Load(),
		Entries:       int(c.entries.Load()),
		CapBlocks:     c.capBlk,
	}
}

// HitRatio returns hits/(hits+misses), or 0 before any probe.
func (c *Cache) HitRatio() float64 {
	h, m := float64(c.hits.Load()), float64(c.misses.Load())
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}

// CapBlocks returns the capacity in 4KB entries.
func (c *Cache) CapBlocks() int { return c.capBlk }

// RegisterMetrics exposes the cache through an obs registry.
func (c *Cache) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("cache_hits_total", "read probes served from the DRAM read cache",
		func() float64 { return float64(c.hits.Load()) }, labels...)
	reg.CounterFunc("cache_misses_total", "read probes that fell through to the device",
		func() float64 { return float64(c.misses.Load()) }, labels...)
	reg.CounterFunc("cache_admits_total", "misses the cost-model admission asked to fill",
		func() float64 { return float64(c.admits.Load()) }, labels...)
	reg.CounterFunc("cache_fills_total", "fills committed into the cache",
		func() float64 { return float64(c.fills.Load()) }, labels...)
	reg.CounterFunc("cache_fill_aborts_total", "fills dropped by the write-invalidation fence",
		func() float64 { return float64(c.fillAborts.Load()) }, labels...)
	reg.CounterFunc("cache_evictions_total", "entries evicted to admit new blocks",
		func() float64 { return float64(c.evictions.Load()) }, labels...)
	reg.CounterFunc("cache_invalidations_total", "entries dropped by write invalidation or flush",
		func() float64 { return float64(c.invals.Load()) }, labels...)
	reg.GaugeFunc("cache_entries", "resident 4KB entries (capacity "+strconv.Itoa(c.capBlk)+")",
		func() float64 { return float64(c.entries.Load()) }, labels...)
	reg.GaugeFunc("cache_hit_ratio", "hits / (hits+misses) since start",
		c.HitRatio, labels...)
}
