// Package baseline implements the comparison systems of the paper's
// evaluation (§5.1):
//
//   - LocalNode: direct access to the NVMe device through SPDK-style
//     userspace queues — the best-case local configuration ("Local (SPDK)"
//     in Table 2, the "Local" curves of Figures 4 and 7a).
//   - Server with LibaioProfile: a lightweight remote storage server built
//     on Linux epoll/libevent + libaio — efficient for Linux, but
//     interrupt-driven and ~75K IOPS/core (§2.1, §5.3).
//   - Server with ISCSIProfile: the Linux iSCSI path, with heavyweight
//     protocol processing and data copies between socket, SCSI and
//     application buffers (§5.2).
//
// Both remote baselines run on the same simulated network and flash device
// as the ReFlex dataplane, so every comparison differs only in the
// architecture being modeled.
package baseline

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
)

// LocalNode models a host issuing I/O to its local NVMe device through
// userspace (SPDK-style) queues: no network, minimal per-request CPU. Each
// core runs a polling loop that alternates bounded batches of completions
// and submissions, exactly like a real SPDK reactor, so neither side
// starves under overload.
type LocalNode struct {
	eng   *sim.Engine
	dev   *flashsim.Device
	cores []*localCore

	// SubmitCPU and CompleteCPU are charged on the issuing core around
	// each device access; together they set the ~870K IOPS/core ceiling
	// of §5.3.
	SubmitCPU   sim.Time
	CompleteCPU sim.Time
	// MaxBatch caps how many queue entries one polling pass handles.
	MaxBatch int
}

type localOp struct {
	op    core.OpType
	block uint64
	size  int
	start sim.Time
	done  func(lat sim.Time)
}

type localCore struct {
	node    *LocalNode
	res     *sim.Resource
	sq      []*localOp // submissions waiting for CPU
	cq      []*localOp // device completions waiting for CPU
	running bool
}

// NewLocalNode creates a local SPDK-style node with the given core count.
func NewLocalNode(eng *sim.Engine, dev *flashsim.Device, cores int) *LocalNode {
	if cores <= 0 {
		panic("baseline: LocalNode needs at least one core")
	}
	n := &LocalNode{eng: eng, dev: dev, SubmitCPU: 600, CompleteCPU: 550, MaxBatch: 64}
	for i := 0; i < cores; i++ {
		n.cores = append(n.cores, &localCore{
			node: n,
			res:  sim.NewResource(eng, fmt.Sprintf("spdk/core%d", i)),
		})
	}
	return n
}

// Core returns a workload target bound to core i. Each target mimics one
// application thread polling its own NVMe queue pair.
func (n *LocalNode) Core(i int) CoreTarget {
	return CoreTarget{c: n.cores[i]}
}

// Cores returns the number of cores.
func (n *LocalNode) Cores() int { return len(n.cores) }

// CoreTarget issues I/O from one local core; it satisfies workload.Target.
type CoreTarget struct {
	c *localCore
}

// Issue submits one I/O through the local core.
func (t CoreTarget) Issue(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	lo := &localOp{op: op, block: block, size: size, start: t.c.node.eng.Now(), done: done}
	t.c.sq = append(t.c.sq, lo)
	t.c.kick()
}

func (c *localCore) kick() {
	if c.running {
		return
	}
	c.running = true
	c.node.eng.After(0, c.pass)
}

func (c *localCore) pass() {
	n := c.node
	take := func(q *[]*localOp) []*localOp {
		k := len(*q)
		if k > n.MaxBatch {
			k = n.MaxBatch
		}
		batch := (*q)[:k:k]
		*q = append([]*localOp(nil), (*q)[k:]...)
		return batch
	}
	// Completions first, as polling loops drain the CQ before submitting.
	for _, lo := range take(&c.cq) {
		lo := lo
		c.res.Schedule(n.CompleteCPU, func(at sim.Time) {
			if lo.done != nil {
				lo.done(at - lo.start)
			}
		})
	}
	for _, lo := range take(&c.sq) {
		lo := lo
		c.res.Schedule(n.SubmitCPU, func(sim.Time) {
			fop := flashsim.OpRead
			if lo.op == core.OpWrite {
				fop = flashsim.OpWrite
			}
			n.dev.Submit(&flashsim.Request{
				Op:    fop,
				Block: lo.block,
				Size:  lo.size,
				OnComplete: func(sim.Time) {
					c.cq = append(c.cq, lo)
					c.kick()
				},
			})
		})
	}
	c.res.Schedule(0, func(sim.Time) {
		c.running = false
		if len(c.sq) > 0 || len(c.cq) > 0 {
			c.kick()
		}
	})
}

// ServerProfile parameterizes an interrupt-driven remote storage server.
type ServerProfile struct {
	Name    string
	Threads int

	// RxCPU/TxCPU are per-request processing costs on a server core; their
	// sum sets the per-core IOPS ceiling (13.3us -> 75K IOPS for libaio,
	// 14.3us -> 70K for iSCSI).
	RxCPU sim.Time
	TxCPU sim.Time
	// CopyCPUPerKB is extra CPU on the data-bearing direction (iSCSI
	// copies between socket, SCSI and application buffers).
	CopyCPUPerKB sim.Time
	// RxLatency/TxLatency are fixed non-CPU adders: interrupt delivery,
	// softirq scheduling, kernel block/SCSI layer traversal.
	RxLatency sim.Time
	TxLatency sim.Time
	// WriteExtraLatency is an additional write-path adder (iSCSI command
	// acknowledgement handling).
	WriteExtraLatency sim.Time
	// MaxBatch is how many events one epoll wakeup handles.
	MaxBatch int
}

// LibaioProfile returns the libevent+libaio server of §5.1: the fastest
// remote-Flash server Linux sockets support.
func LibaioProfile(threads int) ServerProfile {
	return ServerProfile{
		Name:      "libaio",
		Threads:   threads,
		RxCPU:     6650, // 13.3us total -> 75K IOPS/core
		TxCPU:     6650,
		RxLatency: 5 * sim.Microsecond,
		TxLatency: 5 * sim.Microsecond,
		MaxBatch:  16,
	}
}

// ISCSIProfile returns the Linux open-iscsi path of §5.1.
func ISCSIProfile(threads int) ServerProfile {
	return ServerProfile{
		Name:              "iscsi",
		Threads:           threads,
		RxCPU:             7150, // 14.3us total -> 70K IOPS/core
		TxCPU:             7150,
		CopyCPUPerKB:      2 * sim.Microsecond,
		RxLatency:         30 * sim.Microsecond,
		TxLatency:         30 * sim.Microsecond,
		WriteExtraLatency: 10 * sim.Microsecond,
		MaxBatch:          16,
	}
}

func (p *ServerProfile) validate() error {
	if p.Threads <= 0 {
		return fmt.Errorf("baseline: %s: Threads must be positive", p.Name)
	}
	if p.MaxBatch <= 0 {
		return fmt.Errorf("baseline: %s: MaxBatch must be positive", p.Name)
	}
	return nil
}

// Server is an interrupt-driven remote storage server without QoS
// scheduling: requests go to the device in FIFO order.
type Server struct {
	eng      *sim.Engine
	net      *netsim.Network
	endpoint *netsim.Endpoint
	dev      *flashsim.Device
	prof     ServerProfile
	threads  []*bthread
	next     int
}

type bthread struct {
	srv     *Server
	core    *sim.Resource
	rxQ     []*breq
	cqQ     []*breq
	running bool
}

type breq struct {
	conn *Conn
	op   core.OpType
	blk  uint64
	size int
}

// NewServer creates a baseline server on the network and device.
func NewServer(eng *sim.Engine, net *netsim.Network, dev *flashsim.Device, prof ServerProfile) *Server {
	if err := prof.validate(); err != nil {
		panic(err)
	}
	s := &Server{
		eng:      eng,
		net:      net,
		endpoint: net.NewEndpoint(prof.Name, netsim.NullStack(), 9001),
		dev:      dev,
		prof:     prof,
	}
	for i := 0; i < prof.Threads; i++ {
		s.threads = append(s.threads, &bthread{
			srv:  s,
			core: sim.NewResource(eng, fmt.Sprintf("%s/core%d", prof.Name, i)),
		})
	}
	return s
}

// Endpoint returns the server's network endpoint.
func (s *Server) Endpoint() *netsim.Endpoint { return s.endpoint }

// Conn is one client connection, bound round-robin to a server thread.
type Conn struct {
	srv    *Server
	thread *bthread
	client *netsim.Endpoint
	lat    map[*breq]func(sim.Time)
	start  map[*breq]sim.Time
}

// Connect opens a connection from the client endpoint.
func (s *Server) Connect(client *netsim.Endpoint) *Conn {
	th := s.threads[s.next%len(s.threads)]
	s.next++
	return &Conn{
		srv:    s,
		thread: th,
		client: client,
		lat:    make(map[*breq]func(sim.Time)),
		start:  make(map[*breq]sim.Time),
	}
}

// Issue sends one I/O to the server; it satisfies workload.Target.
func (c *Conn) Issue(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	r := &breq{conn: c, op: op, blk: block, size: size}
	if done != nil {
		c.lat[r] = done
	}
	c.start[r] = c.srv.eng.Now()
	wire := 48 // iSCSI/libaio request PDU
	if op == core.OpWrite {
		wire += size
	}
	c.client.Send(c.srv.endpoint, wire, func(sim.Time) {
		// Interrupt delivery and wakeup before the server thread sees it.
		c.srv.eng.After(c.srv.prof.RxLatency, func() {
			c.thread.arrive(r)
		})
	})
}

func (th *bthread) arrive(r *breq) {
	th.rxQ = append(th.rxQ, r)
	th.kick()
}

func (th *bthread) complete(r *breq) {
	th.cqQ = append(th.cqQ, r)
	th.kick()
}

func (th *bthread) kick() {
	if th.running {
		return
	}
	th.running = true
	th.srv.eng.After(0, th.pass)
}

func (th *bthread) pass() {
	p := &th.srv.prof
	take := func(q *[]*breq) []*breq {
		n := len(*q)
		if n > p.MaxBatch {
			n = p.MaxBatch
		}
		batch := (*q)[:n:n]
		*q = append([]*breq(nil), (*q)[n:]...)
		return batch
	}
	for _, r := range take(&th.rxQ) {
		r := r
		cpu := p.RxCPU
		if r.op == core.OpWrite {
			cpu += sim.Time(r.size/1024) * p.CopyCPUPerKB
		}
		th.core.Schedule(cpu, func(sim.Time) { th.submit(r) })
	}
	for _, r := range take(&th.cqQ) {
		r := r
		cpu := p.TxCPU
		if r.op == core.OpRead {
			cpu += sim.Time(r.size/1024) * p.CopyCPUPerKB
		}
		th.core.Schedule(cpu, func(sim.Time) { r.conn.respond(r) })
	}
	th.core.Schedule(0, func(sim.Time) {
		th.running = false
		if len(th.rxQ) > 0 || len(th.cqQ) > 0 {
			th.kick()
		}
	})
}

func (th *bthread) submit(r *breq) {
	fop := flashsim.OpRead
	if r.op == core.OpWrite {
		fop = flashsim.OpWrite
	}
	th.srv.dev.Submit(&flashsim.Request{
		Op:    fop,
		Block: r.blk,
		Size:  r.size,
		OnComplete: func(sim.Time) {
			th.complete(r)
		},
	})
}

func (c *Conn) respond(r *breq) {
	p := &c.srv.prof
	delay := p.TxLatency
	if r.op == core.OpWrite {
		delay += p.WriteExtraLatency
	}
	c.srv.eng.After(delay, func() {
		wire := 48
		if r.op == core.OpRead {
			wire += r.size
		}
		c.srv.endpoint.Send(c.client, wire, func(at sim.Time) {
			start := c.start[r]
			delete(c.start, r)
			if done, ok := c.lat[r]; ok {
				delete(c.lat, r)
				done(at - start)
			}
		})
	})
}
