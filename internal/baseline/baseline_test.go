package baseline

import (
	"testing"

	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

func qd1Read(t *testing.T, target workload.Target, eng *sim.Engine) *workload.Result {
	t.Helper()
	res := workload.ClosedLoop{
		Depth:    1,
		Mix:      workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
		Duration: 200 * sim.Millisecond,
		Seed:     1,
	}.Start(eng, target)
	eng.Run()
	return res
}

func TestLocalSPDKUnloadedLatency(t *testing.T) {
	// Table 2 "Local (SPDK)": reads avg 78us p95 90us.
	eng := sim.NewEngine()
	dev := flashsim.New(eng, flashsim.DeviceA(), 21)
	node := NewLocalNode(eng, dev, 1)
	res := qd1Read(t, node.Core(0), eng)
	avg := res.ReadLat.Mean() / 1000
	p95 := float64(res.ReadLat.Quantile(0.95)) / 1000
	if avg < 72 || avg > 88 {
		t.Errorf("local read avg = %.1fus, want ~79us", avg)
	}
	if p95 < 82 || p95 > 100 {
		t.Errorf("local read p95 = %.1fus, want ~91us", p95)
	}
}

func TestLocalSPDKPerCoreCeiling(t *testing.T) {
	// §5.3: "A single core can support up to 870K IOPS on local Flash."
	eng := sim.NewEngine()
	dev := flashsim.New(eng, flashsim.DeviceA(), 22)
	node := NewLocalNode(eng, dev, 1)
	res := workload.OpenLoop{
		IOPS:     1_200_000,
		Mix:      workload.Mix{ReadPercent: 100, Size: 1024, Blocks: 1 << 20},
		Warmup:   10 * sim.Millisecond,
		Duration: 200 * sim.Millisecond,
		Seed:     2,
	}.Start(eng, node.Core(0))
	eng.Run()
	if iops := res.IOPS(); iops < 780_000 || iops > 960_000 {
		t.Errorf("local 1-core IOPS = %.0f, want ~870K", iops)
	}
}

func remoteRig(t *testing.T, prof ServerProfile, stack netsim.StackProfile) (*sim.Engine, *Conn) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 23)
	srv := NewServer(eng, net, dev, prof)
	client := net.NewEndpoint("client", stack, 5)
	return eng, srv.Connect(client)
}

func TestLibaioUnloadedLatency(t *testing.T) {
	// Table 2 "Libaio (IX Client)": reads avg 121us.
	eng, conn := remoteRig(t, LibaioProfile(1), netsim.IXClientStack())
	res := qd1Read(t, conn, eng)
	avg := res.ReadLat.Mean() / 1000
	if avg < 110 || avg > 132 {
		t.Errorf("libaio/IX read avg = %.1fus, want ~121us", avg)
	}
}

func TestISCSIUnloadedLatency(t *testing.T) {
	// Table 2 "iSCSI" (Linux client): reads avg 211us, p95 251us.
	eng, conn := remoteRig(t, ISCSIProfile(1), netsim.LinuxClientStack())
	res := qd1Read(t, conn, eng)
	avg := res.ReadLat.Mean() / 1000
	if avg < 190 || avg > 232 {
		t.Errorf("iSCSI read avg = %.1fus, want ~211us", avg)
	}
}

func TestISCSIWriteLatency(t *testing.T) {
	// Table 2 "iSCSI" writes: avg 155us — far above local's 11us.
	eng, conn := remoteRig(t, ISCSIProfile(1), netsim.LinuxClientStack())
	res := workload.ClosedLoop{
		Depth:    1,
		Mix:      workload.Mix{ReadPercent: 0, Size: 4096, Blocks: 1 << 20},
		Duration: 200 * sim.Millisecond,
		Seed:     3,
	}.Start(eng, conn)
	eng.Run()
	avg := res.WriteLat.Mean() / 1000
	if avg < 120 || avg > 175 {
		t.Errorf("iSCSI write avg = %.1fus, want ~155us", avg)
	}
}

func TestLibaioPerCoreCeiling(t *testing.T) {
	// §5.3: "the libaio-libevent server achieves only 75K IOPS/core".
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 24)
	srv := NewServer(eng, net, dev, LibaioProfile(1))
	var results []*workload.Result
	for i := 0; i < 4; i++ {
		conn := srv.Connect(net.NewEndpoint("client", netsim.IXClientStack(), int64(30+i)))
		results = append(results, workload.OpenLoop{
			IOPS:     40_000,
			Mix:      workload.Mix{ReadPercent: 100, Size: 1024, Blocks: 1 << 20},
			Warmup:   20 * sim.Millisecond,
			Duration: 300 * sim.Millisecond,
			Seed:     int64(40 + i),
		}.Start(eng, conn))
	}
	eng.Run()
	total := 0.0
	for _, r := range results {
		total += r.IOPS()
	}
	if total < 65_000 || total > 85_000 {
		t.Errorf("libaio 1-core IOPS = %.0f, want ~75K", total)
	}
}

func TestOrderingOfArchitectures(t *testing.T) {
	// The qualitative Table 2 result: local < ReFlex-class < libaio < iSCSI.
	eng1, libaio := remoteRig(t, LibaioProfile(1), netsim.IXClientStack())
	r1 := qd1Read(t, libaio, eng1)
	eng2, iscsi := remoteRig(t, ISCSIProfile(1), netsim.IXClientStack())
	r2 := qd1Read(t, iscsi, eng2)
	if !(r2.ReadLat.Mean() > r1.ReadLat.Mean()) {
		t.Errorf("iSCSI (%.0fus) not slower than libaio (%.0fus)",
			r2.ReadLat.Mean()/1000, r1.ReadLat.Mean()/1000)
	}
}

func TestConnectionsRoundRobinAcrossThreads(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 25)
	srv := NewServer(eng, net, dev, LibaioProfile(3))
	seen := map[*bthread]int{}
	for i := 0; i < 6; i++ {
		c := srv.Connect(net.NewEndpoint("c", netsim.IXClientStack(), int64(i)))
		seen[c.thread]++
	}
	if len(seen) != 3 {
		t.Fatalf("connections spread over %d threads, want 3", len(seen))
	}
	for th, n := range seen {
		if n != 2 {
			t.Errorf("thread %p got %d conns, want 2", th, n)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 26)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero threads", func() { NewServer(eng, net, dev, ServerProfile{MaxBatch: 1}) })
	mustPanic("zero batch", func() { NewServer(eng, net, dev, ServerProfile{Threads: 1}) })
	mustPanic("local zero cores", func() { NewLocalNode(eng, dev, 0) })
}
