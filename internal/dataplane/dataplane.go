// Package dataplane simulates the ReFlex server (§3.1, §4.1): per-core
// threads with exclusive network and NVMe queue pairs, a two-step
// run-to-completion execution model (packet reception to Flash submission,
// Flash completion to reply transmission), adaptive batching capped at 64,
// and the shared QoS scheduler from internal/core invoked on every pass.
//
// Each thread's CPU is a serial resource in virtual time; per-request
// processing costs are charged on it, so per-core IOPS ceilings, queueing
// under load and batching behaviour all emerge from the cost parameters
// rather than being asserted.
package dataplane

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/ctrl"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/readcache"
	"github.com/reflex-go/reflex/internal/sim"
)

// Wire sizes of the ReFlex binary protocol (internal/protocol implements
// the real encoding; the simulator only needs the sizes).
const (
	ReqHeaderBytes  = 24
	RespHeaderBytes = 24
)

// Config holds the dataplane cost parameters. All per-request costs are for
// a 4KB request on an otherwise idle cache-warm core.
type Config struct {
	// Threads is the number of dataplane cores.
	Threads int

	// RxCost covers packet reception, protocol parsing and access control.
	RxCost sim.Time
	// SchedFixed is the fixed cost of one QoS scheduling round.
	SchedFixed sim.Time
	// SchedPerReq is the scheduling cost per admitted request.
	SchedPerReq sim.Time
	// SchedPerTenant is the per-round cost of visiting one registered
	// tenant (token generation, queue checks). It is what limits a core
	// to a few thousand tenants (Fig. 6b).
	SchedPerTenant sim.Time
	// SubmitCost covers NVMe command submission.
	SubmitCost sim.Time
	// CqeCost covers NVMe completion processing.
	CqeCost sim.Time
	// TxCost covers response transmission through the TCP stack.
	TxCost sim.Time

	// MaxBatch caps adaptive batching (§3.1: 64).
	MaxBatch int
	// SchedTick bounds the time between scheduling rounds when requests
	// wait for tokens ("does not exceed 5% of the strictest SLO").
	SchedTick sim.Time

	// ConnBase is the per-thread connection count that fits the last-level
	// cache; beyond it, per-request CPU cost inflates (Fig. 6c).
	ConnBase int
	// ConnFactor is the fractional CPU inflation per 1000 connections
	// above ConnBase.
	ConnFactor float64

	// TokenRate is the device's total token generation rate (mt/s) at the
	// strictest latency SLO; the control plane computes it (§4.3).
	TokenRate core.Tokens

	// CacheBlocks enables a DRAM read cache of this many 4KB blocks
	// (0 = no cache). The simulator caches presence only (readcache
	// NoData mode): a hit skips the device and is charged the cost
	// model's CacheServeCost instead of a device read, which is the
	// token-accounting effect the ext-cache experiment measures.
	CacheBlocks int
	// CacheAdmit selects the cache admission policy: "cost" (default,
	// the cost-model re-reference hurdle) or "always".
	CacheAdmit string
	// CacheHitService is the simulated DRAM+copy service time of a hit
	// (it replaces the device access entirely). 0 with CacheBlocks > 0
	// defaults to 2µs — a hit must cost some time, or the simulation
	// silently overstates the cache's benefit.
	CacheHitService sim.Time

	// StreamByClass tags writes with an FDP-style placement stream by
	// tenant class (LC=0, BE=1) so the device's GC segregates their
	// lifetimes. Requires a device in placement mode (EraseUnitPages>0)
	// with PlacementStreams >= 2 to have any effect.
	StreamByClass bool

	// DisableQoS bypasses the scheduler and submits requests directly —
	// the "I/O sched disabled" configuration of Figure 5.
	DisableQoS bool

	// BlockingModel emulates the monolithic run-to-completion model the
	// paper rejects (§4.1): the thread blocks on every Flash access
	// instead of overlapping it with other requests. Requires DisableQoS
	// (it exists only for the two-step ablation).
	BlockingModel bool

	// Shed configures graceful load shedding (internal/ctrl): when a
	// thread's scheduler backlog, connection count or aggregate token debt
	// crosses the configured high watermark, best-effort requests are
	// answered immediately with a shed response instead of queueing
	// without bound. Latency-critical requests are never shed. The zero
	// value disables shedding.
	Shed ctrl.ShedConfig
}

// DefaultConfig returns the calibrated ReFlex dataplane profile: ~1.18us of
// CPU per 4KB request, giving the paper's ~850K IOPS per core (§5.3).
func DefaultConfig(threads int, tokenRate core.Tokens) Config {
	return Config{
		Threads:        threads,
		RxCost:         450,
		SchedFixed:     300,
		SchedPerReq:    26,
		SchedPerTenant: 70,
		SubmitCost:     150,
		CqeCost:        150,
		TxCost:         400,
		MaxBatch:       64,
		SchedTick:      50 * sim.Microsecond,
		ConnBase:       500,
		ConnFactor:     0.08,
		TokenRate:      tokenRate,
	}
}

func (c *Config) validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("dataplane: Threads must be positive")
	case c.MaxBatch <= 0:
		return fmt.Errorf("dataplane: MaxBatch must be positive")
	case c.SchedTick <= 0:
		return fmt.Errorf("dataplane: SchedTick must be positive")
	case c.BlockingModel && !c.DisableQoS:
		return fmt.Errorf("dataplane: BlockingModel requires DisableQoS")
	}
	return nil
}

// Server is a simulated ReFlex server fronting one NVMe device.
type Server struct {
	eng      *sim.Engine
	net      *netsim.Network
	endpoint *netsim.Endpoint
	dev      *flashsim.Device
	model    core.CostModel
	cfg      Config
	cache    *readcache.Cache
	shared   *core.SharedState
	threads  []*thread
	tenantAt map[*core.Tenant]int
	conns    map[*Conn]struct{}
	nextConn uint64

	// shedder is the graceful-overload signal (nil when Config.Shed is
	// zero). Threads feed it their backlog each pass and consult it at
	// parse time for best-effort requests.
	shedder *ctrl.Shedder

	// reg/ring are the unified telemetry layer (internal/obs): a
	// virtual-time metrics registry over every layer's stats and the
	// per-request span trace ring. reqSeq numbers spans.
	reg    *obs.Registry
	ring   *obs.Ring
	reqSeq uint64
}

// ModelForDevice derives the cost model from a simulated device's spec.
func ModelForDevice(spec flashsim.Spec) core.CostModel {
	ro := core.TokenUnit
	if spec.ReadOnlyHalf {
		ro = core.TokenUnit / 2
	}
	return core.CostModel{
		ReadCost:         core.TokenUnit,
		ReadOnlyReadCost: ro,
		WriteCost:        core.Tokens(spec.WriteCost) * core.TokenUnit,
	}
}

// NewServer creates a ReFlex server on the given network and device, with
// its own NIC endpoint.
func NewServer(eng *sim.Engine, net *netsim.Network, dev *flashsim.Device, cfg Config) *Server {
	return NewServerOn(eng, net, net.NewEndpoint("reflex", netsim.NullStack(), 7001), dev, cfg)
}

// NewServerOn creates a ReFlex server sharing an existing NIC endpoint —
// several servers (one per device) on one physical machine and link, the
// §5.3 multi-device deployment.
func NewServerOn(eng *sim.Engine, net *netsim.Network, endpoint *netsim.Endpoint, dev *flashsim.Device, cfg Config) *Server {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	s := &Server{
		eng:      eng,
		net:      net,
		endpoint: endpoint,
		dev:      dev,
		model:    ModelForDevice(dev.Spec()),
		cfg:      cfg,
		shared:   core.NewSharedState(cfg.Threads, cfg.TokenRate),
	}
	if cfg.Shed != (ctrl.ShedConfig{}) {
		s.shedder = ctrl.NewShedder(cfg.Shed)
	}
	if cfg.CacheBlocks > 0 {
		if s.cfg.CacheHitService <= 0 {
			s.cfg.CacheHitService = 2 * sim.Microsecond
		}
		mode, err := readcache.ParseMode(cfg.CacheAdmit)
		if err != nil {
			panic(fmt.Errorf("dataplane: %w", err))
		}
		c, err := readcache.New(readcache.Config{
			Blocks:   cfg.CacheBlocks,
			Mode:     mode,
			ReadCost: int64(s.model.ReadCost),
			HitCost:  int64(s.model.CacheServeCost()),
			NoData:   true,
		})
		if err != nil {
			panic(fmt.Errorf("dataplane: %w", err))
		}
		s.cache = c
	}
	for i := 0; i < cfg.Threads; i++ {
		th := &thread{
			srv:  s,
			id:   i,
			core: sim.NewResource(eng, fmt.Sprintf("reflex/core%d", i)),
		}
		th.sched = core.NewScheduler(s.model, i, s.shared)
		th.sched.ReadOnlyProbe = dev.ReadOnlyMode
		s.threads = append(s.threads, th)
	}
	s.initTelemetry()
	return s
}

// Endpoint returns the server's network endpoint.
func (s *Server) Endpoint() *netsim.Endpoint { return s.endpoint }

// Shared returns the scheduler state shared across threads.
func (s *Server) Shared() *core.SharedState { return s.shared }

// Model returns the server's cost model.
func (s *Server) Model() core.CostModel { return s.model }

// Device returns the backing flash device.
func (s *Server) Device() *flashsim.Device { return s.dev }

// Cache returns the DRAM read cache, or nil when Config.CacheBlocks is 0.
func (s *Server) Cache() *readcache.Cache { return s.cache }

// Threads returns the number of dataplane threads.
func (s *Server) Threads() int { return len(s.threads) }

// OnNegLimit installs the LC deficit notification on every thread.
func (s *Server) OnNegLimit(fn func(*core.Tenant)) {
	for _, th := range s.threads {
		th.sched.OnNegLimit = fn
	}
}

// OverrideModel swaps the cost model on every thread (ablation support).
// It must be called before any tenant is registered, because LC rates are
// derived from the model at registration.
func (s *Server) OverrideModel(m core.CostModel) {
	if len(s.tenantAt) > 0 {
		panic("dataplane: OverrideModel after tenant registration")
	}
	s.model = m
	for _, th := range s.threads {
		th.sched.Model = m
	}
}

// OverrideNegLimit changes the LC burst deficit floor on every thread
// (ablation support).
func (s *Server) OverrideNegLimit(v core.Tokens) {
	for _, th := range s.threads {
		th.sched.NegLimit = v
	}
}

// OverrideDonateFraction changes the POS_LIMIT donation fraction on every
// thread (ablation support).
func (s *Server) OverrideDonateFraction(f float64) {
	for _, th := range s.threads {
		th.sched.DonateFraction = f
	}
}

// RegisterTenant places a tenant on the thread with the fewest tenants
// (tenants never span threads, §4.1) and returns the thread index.
func (s *Server) RegisterTenant(t *core.Tenant) int {
	best := 0
	for i, th := range s.threads {
		if th.tenants < s.threads[best].tenants {
			best = i
		}
	}
	s.RegisterTenantOn(t, best)
	return best
}

// RegisterTenantOn places a tenant on a specific thread (used by scaling
// experiments that pin tenants).
func (s *Server) RegisterTenantOn(t *core.Tenant, thread int) {
	th := s.threads[thread]
	th.tenants++
	th.sched.Register(t)
	if s.tenantAt == nil {
		s.tenantAt = make(map[*core.Tenant]int)
	}
	s.tenantAt[t] = thread
}

// threadOf returns the thread a tenant is registered on, or -1.
func (s *Server) threadOf(t *core.Tenant) int {
	if idx, ok := s.tenantAt[t]; ok {
		return idx
	}
	return -1
}

// SubmittedTokens returns the total millitokens admitted across all
// tenants (the "token usage" series of Fig. 6a).
func (s *Server) SubmittedTokens() core.Tokens {
	var total core.Tokens
	for _, th := range s.threads {
		lc, be := th.sched.Tenants()
		for _, t := range lc {
			total += t.Stats().SubmittedTokens
		}
		for _, t := range be {
			total += t.Stats().SubmittedTokens
		}
	}
	return total
}

// Pending returns the number of requests waiting in scheduler queues
// across all threads (time-series "queue depth" column).
func (s *Server) Pending() int {
	var n int
	for _, th := range s.threads {
		n += th.sched.Pending()
	}
	return n
}

// CoreUtilization returns the mean dataplane core utilization.
func (s *Server) CoreUtilization() float64 {
	var u float64
	for _, th := range s.threads {
		u += th.core.Utilization()
	}
	return u / float64(len(s.threads))
}

// Stats aggregates per-thread counters.
type Stats struct {
	Requests   uint64
	Batches    uint64
	MaxBatch   int
	SchedRuns  uint64
	TickPasses uint64
	Shed       uint64
}

// Stats returns aggregate server counters.
func (s *Server) Stats() Stats {
	var st Stats
	for _, th := range s.threads {
		st.Requests += th.requests
		st.Batches += th.batches
		st.SchedRuns += th.sched.Rounds()
		st.TickPasses += th.ticks
		st.Shed += th.shed
		if th.maxBatch > st.MaxBatch {
			st.MaxBatch = th.maxBatch
		}
	}
	return st
}

// ShedActive reports whether the graceful-overload signal is currently
// refusing best-effort work.
func (s *Server) ShedActive() bool {
	return s.shedder != nil && s.shedder.Active()
}
