package dataplane

import (
	"strconv"
	"strings"
	"testing"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// TestTelemetryMatchesStats runs a workload and cross-checks the registry
// against the server's native Stats(), then verifies spans landed in the
// trace ring with the full two-step lifecycle stamped.
func TestTelemetryMatchesStats(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 1)
	srv := NewServer(eng, net, dev, DefaultConfig(2, 600_000*core.TokenUnit))

	tn, err := core.NewTenant(1, "lc0", core.LatencyCritical,
		core.SLO{IOPS: 20_000, ReadPercent: 90, LatencyP95: 2 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterTenant(tn)
	client := net.NewEndpoint("client", netsim.IXClientStack(), 11)
	conn := srv.Connect(client, tn)
	res := workload.OpenLoop{
		IOPS:     10_000,
		Mix:      workload.Mix{ReadPercent: 90, Size: 4096, Blocks: 1 << 20},
		Warmup:   10 * sim.Millisecond,
		Duration: 50 * sim.Millisecond,
		Seed:     3,
	}.Start(eng, conn)
	eng.RunUntil(70 * sim.Millisecond)

	if res.Completed == 0 {
		t.Fatal("workload completed nothing")
	}
	st := srv.Stats()
	reg := srv.Obs()

	// Per-thread dp_requests_total must sum to Stats().Requests.
	var total float64
	for i := 0; i < srv.Threads(); i++ {
		v, ok := reg.LookupValue("dp_requests_total", obs.L("thread", strconv.Itoa(i)))
		if !ok {
			t.Fatalf("dp_requests_total{thread=%d} missing", i)
		}
		total += v
	}
	if total != float64(st.Requests) {
		t.Errorf("dp_requests_total sum = %v, Stats().Requests = %d", total, st.Requests)
	}

	// Device counters flow through flashsim's read-side metrics.
	devLbl := obs.L("device", dev.Spec().Name)
	if v, ok := reg.LookupValue("flash_reads_total", devLbl); !ok || v != float64(dev.Stats().Reads) {
		t.Errorf("flash_reads_total = %v (ok=%v), want %d", v, ok, dev.Stats().Reads)
	}

	// Shared scheduler state is exposed from atomics.
	if v, ok := reg.LookupValue("token_rate"); !ok || v != float64(600_000*core.TokenUnit) {
		t.Errorf("token_rate = %v (ok=%v)", v, ok)
	}

	// The trace ring recorded one span per completed request, with every
	// stage of the two-step model stamped.
	ring := srv.TraceRing()
	if ring.Count() < res.Completed {
		t.Fatalf("ring has %d spans, workload completed %d", ring.Count(), res.Completed)
	}
	for _, sp := range ring.Recent(32) {
		if sp.Total() <= 0 {
			t.Fatalf("span %d has non-positive total", sp.ID)
		}
		for st := obs.StageArrival; st <= obs.StageTx; st++ {
			if sp.Stamps[st] == 0 {
				t.Fatalf("span %d missing stage %v: %s", sp.ID, st, sp.Breakdown())
			}
		}
	}
	if slow := ring.Slowest(); len(slow) == 0 || !strings.Contains(slow[0].Breakdown(), "devdone=") {
		t.Error("slow log empty or missing device stage")
	}

	// Prometheus text renders from virtual time without touching hot state.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dp_requests_total{thread=\"0\"}") {
		t.Error("scrape missing per-thread requests counter")
	}
	if snap := reg.Snapshot(); snap.Time != eng.Now() {
		t.Errorf("snapshot time %d != engine now %d", snap.Time, eng.Now())
	}
}
