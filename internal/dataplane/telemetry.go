package dataplane

import (
	"strconv"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/obs"
)

// Trace-ring sizing: enough recent spans to cover several scheduling
// epochs, and a top-K slow log deep enough to show the tail shape.
const (
	traceRingCapacity = 4096
	traceSlowK        = 16
)

// initTelemetry builds the server's registry (virtual-time clock) and
// trace ring, and wires every layer's stats through it: per-thread
// dataplane counters, the shared QoS scheduler state (internal/core), the
// flash device (internal/flashsim), and the NIC endpoint (internal/netsim).
// All metrics are read-side functions, so the simulated hot path pays
// nothing for exposition; span tracing stamps timestamps into each
// request's embedded lifecycle record.
func (s *Server) initTelemetry() {
	reg := obs.NewRegistry()
	reg.SetClock(func() int64 { return s.eng.Now() })
	s.reg = reg
	s.ring = obs.NewRing(traceRingCapacity, traceSlowK)

	for _, th := range s.threads {
		th := th
		lbl := obs.L("thread", strconv.Itoa(th.id))
		reg.CounterFunc("dp_requests_total", "requests parsed by the dataplane",
			func() float64 { return float64(th.requests) }, lbl)
		reg.CounterFunc("dp_batches_total", "receive batches drained (adaptive batching §3.1)",
			func() float64 { return float64(th.batches) }, lbl)
		reg.CounterFunc("dp_tick_passes_total", "scheduler ticks fired for token accrual",
			func() float64 { return float64(th.ticks) }, lbl)
		reg.CounterFunc("requests_shed", "best-effort requests refused under overload (LC is never shed)",
			func() float64 { return float64(th.shed) }, lbl)
		reg.GaugeFunc("dp_max_batch", "largest receive batch observed (cap 64)",
			func() float64 { return float64(th.maxBatch) }, lbl)
		reg.GaugeFunc("dp_conns", "connections bound to the thread",
			func() float64 { return float64(th.conns) }, lbl)
		reg.GaugeFunc("dp_rx_queue_depth", "arrivals awaiting a processing pass",
			func() float64 { return float64(len(th.rxQ)) }, lbl)
		reg.GaugeFunc("dp_cq_queue_depth", "flash completions awaiting transmission",
			func() float64 { return float64(len(th.cqQ)) }, lbl)
		reg.GaugeFunc("dp_core_utilization", "dataplane core utilization since start",
			th.core.Utilization, lbl)
		core.RegisterSchedulerMetrics(reg, th.sched, lbl)
	}
	core.RegisterSharedMetrics(reg, s.shared)
	if s.cache != nil {
		s.cache.RegisterMetrics(reg)
	}
	s.dev.RegisterMetrics(reg, obs.L("device", s.dev.Spec().Name))
	s.endpoint.RegisterMetrics(reg, obs.L("endpoint", "server"))
}

// Obs returns the server's telemetry registry. Scrape it from engine
// context (inside a scheduled event) or after the simulation stops; the
// underlying stats are single-writer simulator state.
func (s *Server) Obs() *obs.Registry { return s.reg }

// TraceRing returns the per-request span ring and slow-request log.
func (s *Server) TraceRing() *obs.Ring { return s.ring }
