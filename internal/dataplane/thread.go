package dataplane

import (
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/readcache"
	"github.com/reflex-go/reflex/internal/sim"
)

// ioRequest is one in-flight remote I/O inside the server.
type ioRequest struct {
	conn *Conn
	op   core.OpType
	blk  uint64
	size int
	// shed marks a request refused by the graceful-overload signal: it is
	// answered immediately (header only, no payload) without touching the
	// scheduler or the device.
	shed bool
	// hit marks a read found in the DRAM cache at parse time: it is
	// charged the cache-service cost and never touches the device.
	hit bool
	// fill marks an admitted read miss: its completion commits the block
	// into the cache, fenced by fillEpoch against racing writes.
	fill      bool
	fillEpoch uint64
	// span is the request's lifecycle record (embedded by value: stamping
	// stages allocates nothing). It is copied into the server's trace ring
	// when the response is transmitted.
	span obs.Span
}

// thread is one dataplane core with exclusive network and NVMe queues.
type thread struct {
	srv   *Server
	id    int
	core  *sim.Resource
	sched *core.Scheduler

	rxQ []*ioRequest // arrived, not yet processed
	cqQ []*ioRequest // flash-completed, response not yet sent
	// ready holds parsed requests awaiting their turn in the
	// BlockingModel ablation (one outstanding Flash access at a time).
	ready []*ioRequest

	tenants int
	conns   int

	running   bool
	tickArmed bool
	// blocked is set while the thread waits on a Flash access in the
	// monolithic BlockingModel ablation.
	blocked bool

	requests uint64
	batches  uint64
	maxBatch int
	ticks    uint64
	shed     uint64
}

// debt sums the thread's tenants' negative token balances — the overload
// indicator the shedder watches (a growing aggregate debt means admission
// is outrunning token generation).
func (th *thread) debt() core.Tokens {
	var d core.Tokens
	lc, be := th.sched.Tenants()
	for _, t := range lc {
		if b := t.Tokens(); b < 0 {
			d -= b
		}
	}
	for _, t := range be {
		if b := t.Tokens(); b < 0 {
			d -= b
		}
	}
	return d
}

// cpuFactor inflates per-request CPU cost with connection count, modeling
// TCP state falling out of the last-level cache (Fig. 6c).
func (th *thread) cpuFactor() float64 {
	over := th.conns - th.srv.cfg.ConnBase
	if over <= 0 {
		return 1
	}
	return 1 + th.srv.cfg.ConnFactor*float64(over)/1000
}

// arrive enqueues an incoming request and kicks the polling loop.
func (th *thread) arrive(r *ioRequest) {
	r.span.Mark(obs.StageArrival, th.srv.eng.Now())
	th.rxQ = append(th.rxQ, r)
	th.kick()
}

// complete enqueues a flash completion and kicks the polling loop.
func (th *thread) complete(r *ioRequest) {
	r.span.Mark(obs.StageDevDone, th.srv.eng.Now())
	th.blocked = false
	th.cqQ = append(th.cqQ, r)
	th.kick()
}

// kick starts a processing pass unless one is already queued. The thread
// polls its queues; in the simulator an idle thread simply has no pending
// events instead of spinning.
func (th *thread) kick() {
	if th.running {
		return
	}
	th.running = true
	th.srv.eng.After(0, th.pass)
}

// pass is one iteration of the two-step run-to-completion loop (Fig. 2):
// drain a bounded batch of arrivals through parse+schedule+submit, then a
// bounded batch of completions through event+send. Batch sizes adapt to
// whatever accumulated while the core was busy, capped at MaxBatch.
func (th *thread) pass() {
	cfg := &th.srv.cfg
	inflate := th.cpuFactor()
	cost := func(c sim.Time) sim.Time { return sim.Time(float64(c) * inflate) }

	if th.blocked {
		// Monolithic model: nothing happens until the outstanding Flash
		// access completes.
		th.running = false
		return
	}

	// Feed the graceful-overload signal once per pass (hysteresis lives in
	// the shedder, so per-pass sampling cannot flap it).
	if sh := th.srv.shedder; sh != nil {
		sh.Observe(th.sched.Pending()+len(th.rxQ), th.conns, th.debt())
	}

	// Step 1: network receive -> tenant queues.
	nrx := len(th.rxQ)
	if nrx > cfg.MaxBatch {
		nrx = cfg.MaxBatch
	}
	if cfg.BlockingModel && nrx > 1 {
		nrx = 1
	}
	if nrx > 0 {
		batch := th.rxQ[:nrx:nrx]
		th.rxQ = append([]*ioRequest(nil), th.rxQ[nrx:]...)
		th.batches++
		if nrx > th.maxBatch {
			th.maxBatch = nrx
		}
		for _, r := range batch {
			r := r
			th.core.Schedule(cost(cfg.RxCost), func(sim.Time) {
				th.requests++
				r.span.Mark(obs.StageParse, th.srv.eng.Now())
				if sh := th.srv.shedder; sh != nil && sh.Active() &&
					r.conn.tenant.Class == core.BestEffort {
					// Graceful shed: refuse the best-effort request with an
					// immediate header-only response. LC requests are never
					// shed — admission control reserved their capacity.
					r.shed = true
					th.shed++
					th.core.Schedule(cost(cfg.TxCost), func(sim.Time) {
						r.conn.respond(r)
					})
					return
				}
				if c := th.srv.cache; c != nil {
					switch {
					case r.op == core.OpRead && r.size <= readcache.BlockSize:
						hit, admit, epoch := c.Probe(readcache.Key(0, r.blk), 0, nil)
						if hit {
							r.hit = true
						} else if admit {
							r.fill, r.fillEpoch = true, epoch
						}
					case r.op == core.OpWrite:
						blocks := uint64((r.size + readcache.BlockSize - 1) / readcache.BlockSize)
						c.Invalidate(readcache.Key(0, r.blk), blocks)
					}
				}
				if cfg.DisableQoS {
					if cfg.BlockingModel {
						// Park until the single outstanding Flash slot
						// frees up.
						th.ready = append(th.ready, r)
						th.kick()
						return
					}
					// Figure 5 "I/O sched disabled": straight to the device.
					th.core.Schedule(cost(cfg.SubmitCost), func(sim.Time) {
						th.submit(r)
					})
					return
				}
				req := &core.Request{
					Op:      r.op,
					Block:   r.blk,
					Size:    r.size,
					Arrival: th.srv.eng.Now(),
					Context: r,
				}
				if r.hit {
					// A DRAM hit never reaches the device: charge the
					// cache-service cost, not a device read's tokens.
					req.CostOverride = th.srv.model.CacheServeCost()
				}
				th.sched.Enqueue(r.conn.tenant, req)
			})
		}
	}

	// BlockingModel: submit at most one parsed request, then wait for its
	// completion. The flag flips synchronously here so no concurrent pass
	// can slip another submission in.
	if cfg.BlockingModel && len(th.ready) > 0 {
		r := th.ready[0]
		th.ready = th.ready[1:]
		th.blocked = true
		th.core.Schedule(cost(cfg.SubmitCost), func(sim.Time) {
			th.submit(r)
		})
	}

	// QoS scheduling round: admit whatever tokens allow. Skipped when no
	// request work exists; token accrual catches up on the next round.
	if !cfg.DisableQoS && (nrx > 0 || th.sched.Pending() > 0) {
		roundCost := cfg.SchedFixed + cfg.SchedPerTenant*sim.Time(th.tenants)
		th.core.Schedule(cost(roundCost), func(end sim.Time) {
			th.sched.Schedule(th.srv.eng.Now(), func(cr *core.Request) {
				r := cr.Context.(*ioRequest)
				r.span.Mark(obs.StageAdmit, th.srv.eng.Now())
				th.core.Schedule(cost(cfg.SubmitCost+cfg.SchedPerReq), func(sim.Time) {
					th.submit(r)
				})
			})
		})
	}

	// Step 2: flash completion -> response transmission.
	ncq := len(th.cqQ)
	if ncq > cfg.MaxBatch {
		ncq = cfg.MaxBatch
	}
	if ncq > 0 {
		batch := th.cqQ[:ncq:ncq]
		th.cqQ = append([]*ioRequest(nil), th.cqQ[ncq:]...)
		for _, r := range batch {
			r := r
			th.core.Schedule(cost(cfg.CqeCost+cfg.TxCost), func(sim.Time) {
				r.conn.respond(r)
			})
		}
	}

	// Close the pass: decide whether to run again immediately, wait for a
	// scheduler tick, or go idle.
	th.core.Schedule(0, func(sim.Time) {
		th.running = false
		if len(th.rxQ) > 0 || len(th.cqQ) > 0 || (len(th.ready) > 0 && !th.blocked) {
			th.kick()
			return
		}
		if !cfg.DisableQoS && th.sched.Pending() > 0 {
			th.armTick()
		}
	})
}

// armTick schedules a future scheduling round for requests waiting on
// token accrual.
func (th *thread) armTick() {
	if th.tickArmed {
		return
	}
	th.tickArmed = true
	th.srv.eng.After(th.srv.cfg.SchedTick, func() {
		th.tickArmed = false
		th.ticks++
		th.kick()
	})
}

// submit issues the I/O to the NVMe device, or serves a cache hit from
// DRAM without touching it.
func (th *thread) submit(r *ioRequest) {
	r.span.Mark(obs.StageSubmit, th.srv.eng.Now())
	if r.hit {
		// DRAM hit: the device — and its token-paced queues — are never
		// involved. Completion arrives after the DRAM service time.
		th.srv.eng.After(th.srv.cfg.CacheHitService, func() {
			th.complete(r)
		})
		return
	}
	if th.srv.cfg.BlockingModel {
		th.blocked = true
	}
	op := flashsim.OpRead
	if r.op == core.OpWrite {
		op = flashsim.OpWrite
	}
	stream := 0
	if th.srv.cfg.StreamByClass && r.op == core.OpWrite &&
		r.conn.tenant.Class == core.BestEffort {
		stream = 1
	}
	th.srv.dev.Submit(&flashsim.Request{
		Op:     op,
		Block:  r.blk,
		Size:   r.size,
		Stream: stream,
		OnComplete: func(sim.Time) {
			if r.fill {
				th.srv.cache.CommitFill(readcache.Key(0, r.blk), r.fillEpoch, nil)
			}
			th.complete(r)
		},
	})
}
