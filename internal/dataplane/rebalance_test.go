package dataplane

import (
	"testing"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

func TestMoveTenantPreservesService(t *testing.T) {
	// A tenant moved mid-run keeps completing every request: no loss.
	r := newRig(t, 2, 1_200_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenantOn(tn, 0)
	conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), 1), tn)
	res := workload.OpenLoop{
		IOPS: 100_000, Mix: workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
		Warmup: 10 * sim.Millisecond, Duration: 100 * sim.Millisecond, Seed: 5,
	}.Start(r.eng, conn)
	moved := false
	r.eng.At(50*sim.Millisecond, func() {
		r.srv.MoveTenant(tn, 1)
		moved = true
	})
	r.eng.Run()
	if !moved {
		t.Fatal("move never ran")
	}
	if r.srv.threadOf(tn) != 1 {
		t.Fatal("tenant not on thread 1")
	}
	// ~100K IOPS delivered across the move, no cliff.
	if iops := res.IOPS(); iops < 95_000 {
		t.Fatalf("IOPS across move = %.0f, want ~100K (no loss)", iops)
	}
	// Post-move traffic runs on thread 1.
	if loads := r.srv.ThreadLoads(); loads[1] <= 0 {
		t.Fatal("destination thread did no work after the move")
	}
}

func TestMoveTenantCarriesQueueAndConns(t *testing.T) {
	r := newRig(t, 2, 600_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenantOn(tn, 0)
	c1 := r.srv.Connect(r.client(t, netsim.IXClientStack(), 1), tn)
	c2 := r.srv.Connect(r.client(t, netsim.IXClientStack(), 2), tn)
	_ = c2
	done := 0
	r.eng.At(0, func() {
		// Queue work, then immediately move before it completes.
		for i := 0; i < 50; i++ {
			c1.Read(uint64(i), 4096, func(sim.Time) { done++ })
		}
	})
	r.eng.At(sim.Millisecond, func() {
		if got := r.srv.threads[0].conns; got != 2 {
			t.Errorf("thread 0 conns = %d before move, want 2", got)
		}
		r.srv.MoveTenant(tn, 1)
		if got := r.srv.threads[1].conns; got != 2 {
			t.Errorf("thread 1 conns = %d after move, want 2", got)
		}
		if got := r.srv.threads[0].conns; got != 0 {
			t.Errorf("thread 0 conns = %d after move, want 0", got)
		}
	})
	r.eng.Run()
	if done != 50 {
		t.Fatalf("completed %d of 50 requests across a move", done)
	}
}

func TestMoveTenantNoOpAndValidation(t *testing.T) {
	r := newRig(t, 2, 600_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenantOn(tn, 1)
	r.eng.At(0, func() {
		r.srv.MoveTenant(tn, 1) // same thread: no-op
		if r.srv.threadOf(tn) != 1 {
			t.Error("no-op move changed placement")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range move did not panic")
				}
			}()
			r.srv.MoveTenant(tn, 5)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("moving unregistered tenant did not panic")
				}
			}()
			r.srv.MoveTenant(beTenant(t, 99), 0)
		}()
	})
	r.eng.Run()
}

func TestRebalanceEvensLoad(t *testing.T) {
	// All tenants start on thread 0 (the degenerate placement after a
	// thread-count change); Rebalance spreads them and throughput of an
	// overloaded server improves.
	run := func(rebalance bool) float64 {
		r := newRig(t, 4, 4_000_000*core.TokenUnit)
		var results []*workload.Result
		for i := 0; i < 8; i++ {
			tn := beTenant(t, i+1)
			r.srv.RegisterTenantOn(tn, 0) // everything piled on thread 0
			conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), int64(i)), tn)
			// 512B reads keep the 10GbE TX link out of the picture so the
			// comparison isolates CPU placement.
			results = append(results, workload.OpenLoop{
				IOPS: 200_000, Mix: workload.Mix{ReadPercent: 100, Size: 512, Blocks: 1 << 20},
				Warmup: 20 * sim.Millisecond, Duration: 150 * sim.Millisecond, Seed: int64(i),
			}.Start(r.eng, conn))
		}
		if rebalance {
			r.eng.At(5*sim.Millisecond, func() {
				if moves := r.srv.Rebalance(); moves != 6 {
					t.Errorf("Rebalance moved %d tenants, want 6 (8 over 4 threads)", moves)
				}
			})
		}
		r.eng.RunUntil(200 * sim.Millisecond)
		var total float64
		for _, res := range results {
			total += res.IOPS()
		}
		return total
	}
	piled := run(false)
	balanced := run(true)
	// One thread caps near 850K; four threads take the offered 1.6M to
	// the device's ~1.2M read-only ceiling.
	if piled > 1_000_000 {
		t.Fatalf("piled-up placement delivered %.0f; expected single-core ceiling", piled)
	}
	if balanced < 1.3*piled {
		t.Fatalf("rebalance did not relieve the hot thread: %.0f vs %.0f", balanced, piled)
	}
}

func TestRebalanceAlreadyBalanced(t *testing.T) {
	r := newRig(t, 2, 600_000*core.TokenUnit)
	for i := 0; i < 4; i++ {
		r.srv.RegisterTenant(beTenant(t, i+1)) // auto-balanced 2/2
	}
	r.eng.At(0, func() {
		if moves := r.srv.Rebalance(); moves != 0 {
			t.Errorf("balanced server moved %d tenants", moves)
		}
	})
	r.eng.Run()
}
