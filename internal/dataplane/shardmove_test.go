package dataplane

import (
	"testing"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/shard"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// TestMoveTenantInterleavedWithShardMove: tenant→thread placement
// (dataplane.MoveTenant) and shard→node placement (the shard map's
// dual-ownership move window) are independent coordinates — moving a
// tenant between threads mid-run while its LBA shard is being re-homed
// in the cluster map must neither drop requests nor corrupt either
// placement. The sim drives a real open-loop workload across the
// interleave; the shard map transitions exactly as a coordinator's
// MoveShard would (v+1 Migrating set, v+2 cutover) at instants that
// bracket the MoveTenant call.
func TestMoveTenantInterleavedWithShardMove(t *testing.T) {
	r := newRig(t, 2, 1_200_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenantOn(tn, 0)
	conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), 1), tn)

	// The cluster map this node would hold: 4 shards over two nodes, the
	// tenant's working set inside shard 1, owned by "self".
	nodes := []shard.Node{
		{Name: "self", Addrs: []string{"self:1"}},
		{Name: "peer", Addrs: []string{"peer:1"}},
	}
	m1 := shard.BuildMap(nodes, 4, 1<<20, 16)
	self, peer := m1.NodeIndex("self"), m1.NodeIndex("peer")
	m1.Assign[1] = int32(self)
	cur := m1

	res := workload.OpenLoop{
		IOPS: 100_000, Mix: workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
		Warmup: 10 * sim.Millisecond, Duration: 100 * sim.Millisecond, Seed: 9,
	}.Start(r.eng, conn)

	lbaInShard1 := uint64(1)<<20 + 4096 // well inside shard 1

	// t=40ms: migration window opens (dual ownership, v+1) — the exact
	// state a node's installed map holds mid-MoveShard.
	r.eng.At(40*sim.Millisecond, func() {
		nm := cur.Clone()
		nm.Migrating[1] = int32(peer)
		cur = nm
		if !cur.OwnedBy("self", lbaInShard1, 8) || !cur.OwnedBy("peer", lbaInShard1, 8) {
			t.Error("dual-ownership window: both source and destination must own the shard")
		}
	})

	// t=50ms: the tenant moves threads in the middle of the window.
	r.eng.At(50*sim.Millisecond, func() {
		r.srv.MoveTenant(tn, 1)
		// Thread placement must not perturb the map...
		if cur.Migrating[1] != int32(peer) || cur.Assign[1] != int32(self) {
			t.Error("MoveTenant perturbed the shard map")
		}
	})

	// t=60ms: cutover (v+2): peer owns, the window closes, and the old
	// owner no longer serves the range.
	r.eng.At(60*sim.Millisecond, func() {
		nm := cur.Clone()
		nm.Assign[1] = int32(peer)
		nm.Migrating[1] = shard.Unassigned
		cur = nm
		if cur.OwnedBy("self", lbaInShard1, 8) {
			t.Error("post-cutover: old owner still owns the shard")
		}
		if !cur.OwnedBy("peer", lbaInShard1, 8) {
			t.Error("post-cutover: new owner does not own the shard")
		}
		// ...and the map churn must not perturb thread placement.
		if r.srv.threadOf(tn) != 1 {
			t.Error("shard cutover perturbed tenant thread placement")
		}
	})

	r.eng.Run()

	// No loss across the interleave: the workload's delivered IOPS shows
	// no cliff, and the tenant ends on the destination thread with the
	// map at the cutover version.
	if iops := res.IOPS(); iops < 95_000 {
		t.Fatalf("IOPS across interleaved moves = %.0f, want ~100K (no loss)", iops)
	}
	if r.srv.threadOf(tn) != 1 {
		t.Fatal("tenant not on thread 1 after the interleave")
	}
	if cur.Version != m1.Version+2 {
		t.Fatalf("map at v%d, want v%d (window + cutover)", cur.Version, m1.Version+2)
	}
	if loads := r.srv.ThreadLoads(); loads[1] <= 0 {
		t.Fatal("destination thread served nothing after the tenant move")
	}
}
