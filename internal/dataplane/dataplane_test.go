package dataplane

import (
	"testing"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

// rig is a ready-to-use simulated cluster: network, device A, server.
type rig struct {
	eng *sim.Engine
	net *netsim.Network
	dev *flashsim.Device
	srv *Server
}

func newRig(t *testing.T, threads int, tokenRate core.Tokens) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 1001)
	srv := NewServer(eng, net, dev, DefaultConfig(threads, tokenRate))
	return &rig{eng: eng, net: net, dev: dev, srv: srv}
}

func (r *rig) client(t *testing.T, stack netsim.StackProfile, seed int64) *netsim.Endpoint {
	t.Helper()
	return r.net.NewEndpoint("client", stack, seed)
}

func beTenant(t *testing.T, id int) *core.Tenant {
	t.Helper()
	tn, err := core.NewTenant(id, "be", core.BestEffort, core.SLO{})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func lcTenant(t *testing.T, id, iops, readPct int, latP95 sim.Time) *core.Tenant {
	t.Helper()
	tn, err := core.NewTenant(id, "lc", core.LatencyCritical,
		core.SLO{IOPS: iops, ReadPercent: readPct, LatencyP95: latP95})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestUnloadedRemoteReadLatencyIXClient(t *testing.T) {
	// Table 2 "ReFlex (IX Client)": 4KB random reads QD1: avg 99us, p95 113us
	// — about 21us over local flash.
	r := newRig(t, 1, 600_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenant(tn)
	conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), 42), tn)
	res := workload.ClosedLoop{
		Depth:    1,
		Mix:      workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
		Duration: 200 * sim.Millisecond,
		Seed:     5,
	}.Start(r.eng, conn)
	r.eng.Run()
	avg := res.ReadLat.Mean() / 1000
	p95 := float64(res.ReadLat.Quantile(0.95)) / 1000
	if avg < 92 || avg > 108 {
		t.Errorf("IX client unloaded read avg = %.1fus, want ~99us", avg)
	}
	if p95 < 103 || p95 > 125 {
		t.Errorf("IX client unloaded read p95 = %.1fus, want ~113us", p95)
	}
}

func TestUnloadedRemoteWriteLatencyIXClient(t *testing.T) {
	// Table 2 "ReFlex (IX Client)": writes avg 31us, p95 34us.
	r := newRig(t, 1, 600_000*core.TokenUnit)
	tn := lcTenant(t, 1, 50_000, 0, 2*sim.Millisecond)
	r.srv.RegisterTenant(tn)
	conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), 42), tn)
	res := workload.ClosedLoop{
		Depth:    1,
		Mix:      workload.Mix{ReadPercent: 0, Size: 4096, Blocks: 1 << 20},
		Duration: 200 * sim.Millisecond,
		Seed:     6,
	}.Start(r.eng, conn)
	r.eng.Run()
	avg := res.WriteLat.Mean() / 1000
	if avg < 26 || avg > 40 {
		t.Errorf("IX client unloaded write avg = %.1fus, want ~31us", avg)
	}
}

func TestLinuxClientAddsLatency(t *testing.T) {
	// Table 2: ReFlex Linux client ~117us vs IX client ~99us for reads.
	measure := func(stack netsim.StackProfile) float64 {
		r := newRig(t, 1, 600_000*core.TokenUnit)
		tn := beTenant(t, 1)
		r.srv.RegisterTenant(tn)
		conn := r.srv.Connect(r.client(t, stack, 42), tn)
		res := workload.ClosedLoop{
			Depth:    1,
			Mix:      workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
			Duration: 200 * sim.Millisecond,
			Seed:     7,
		}.Start(r.eng, conn)
		r.eng.Run()
		return res.ReadLat.Mean() / 1000
	}
	ix := measure(netsim.IXClientStack())
	linux := measure(netsim.LinuxClientStack())
	if diff := linux - ix; diff < 14 || diff > 24 {
		t.Errorf("linux adds %.1fus over IX, want ~18us", diff)
	}
}

func TestPerCoreIOPSCeiling(t *testing.T) {
	// §5.3: a single ReFlex core serves ~850K IOPS for 1KB reads. Offer
	// 1.1M and verify delivery is CPU-capped near 850K.
	r := newRig(t, 1, 1_200_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenant(tn)
	// Spread load over several connections/clients like mutilate does.
	var targets []workload.Target
	for i := 0; i < 8; i++ {
		conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), int64(100+i)), tn)
		targets = append(targets, conn)
	}
	var results []*workload.Result
	for i, tgt := range targets {
		results = append(results, workload.OpenLoop{
			IOPS:     1_100_000 / 8,
			Mix:      workload.Mix{ReadPercent: 100, Size: 1024, Blocks: 1 << 20},
			Warmup:   20 * sim.Millisecond,
			Duration: 300 * sim.Millisecond,
			Seed:     int64(i),
		}.Start(r.eng, tgt))
	}
	r.eng.Run()
	total := 0.0
	for _, res := range results {
		total += res.IOPS()
	}
	if total < 750_000 || total > 950_000 {
		t.Errorf("1-core ReFlex delivered %.0f IOPS, want ~850K", total)
	}
	if u := r.srv.CoreUtilization(); u < 0.9 {
		t.Errorf("core utilization %.2f under overload, want ~1", u)
	}
}

func TestTwoCoresReachDeviceLimit(t *testing.T) {
	// §5.3: "With two cores, ReFlex saturates 1M IOPS on Flash." In our
	// model, as in the paper's testbed, the 10GbE TX link binds at ~1M
	// 1KB responses/s, just below the device's read-only ceiling.
	r := newRig(t, 2, 1_200_000*core.TokenUnit)
	var results []*workload.Result
	for i := 0; i < 2; i++ {
		tn := beTenant(t, i+1)
		r.srv.RegisterTenant(tn) // one tenant per thread
		for j := 0; j < 4; j++ {
			conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), int64(200+i*4+j)), tn)
			results = append(results, workload.OpenLoop{
				IOPS:     1_600_000 / 8,
				Mix:      workload.Mix{ReadPercent: 100, Size: 1024, Blocks: 1 << 20},
				Warmup:   20 * sim.Millisecond,
				Duration: 300 * sim.Millisecond,
				Seed:     int64(300 + i*4 + j),
			}.Start(r.eng, conn))
		}
	}
	r.eng.Run()
	total := 0.0
	for _, res := range results {
		total += res.IOPS()
	}
	if total < 950_000 || total > 1_100_000 {
		t.Errorf("2-core ReFlex delivered %.0f IOPS, want NIC/device-limited ~1M", total)
	}
}

func TestAdaptiveBatchingGrowsWithLoad(t *testing.T) {
	run := func(iops float64) Stats {
		r := newRig(t, 1, 1_200_000*core.TokenUnit)
		tn := beTenant(t, 1)
		r.srv.RegisterTenant(tn)
		conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), 42), tn)
		workload.OpenLoop{
			IOPS:     iops,
			Mix:      workload.Mix{ReadPercent: 100, Size: 1024, Blocks: 1 << 20},
			Duration: 100 * sim.Millisecond,
			Seed:     11,
		}.Start(r.eng, conn)
		r.eng.Run()
		return r.srv.Stats()
	}
	low := run(5_000)
	high := run(800_000)
	if low.MaxBatch > 4 {
		t.Errorf("low-load max batch = %d, want small", low.MaxBatch)
	}
	if high.MaxBatch <= low.MaxBatch {
		t.Errorf("batch did not grow with load: %d vs %d", high.MaxBatch, low.MaxBatch)
	}
	if high.MaxBatch > 64 {
		t.Errorf("batch exceeded cap: %d", high.MaxBatch)
	}
}

func TestQoSDisabledInterference(t *testing.T) {
	// Without the scheduler, a write-heavy BE tenant destroys a read
	// tenant's tail latency (Fig. 5 "I/O sched disabled").
	run := func(disable bool) float64 {
		eng := sim.NewEngine()
		net := netsim.New(eng, netsim.TenGbE())
		dev := flashsim.New(eng, flashsim.DeviceA(), 77)
		cfg := DefaultConfig(1, 420_000*core.TokenUnit)
		cfg.DisableQoS = disable
		srv := NewServer(eng, net, dev, cfg)
		reader := lcTenant(t, 1, 100_000, 100, 500*sim.Microsecond)
		writer := beTenant(t, 2)
		srv.RegisterTenant(reader)
		srv.RegisterTenant(writer)
		rc := srv.Connect(net.NewEndpoint("c1", netsim.IXClientStack(), 1), reader)
		wc := srv.Connect(net.NewEndpoint("c2", netsim.IXClientStack(), 2), writer)
		rres := workload.OpenLoop{
			IOPS: 80_000, Mix: workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
			Warmup: 20 * sim.Millisecond, Duration: 300 * sim.Millisecond, Seed: 3,
		}.Start(eng, rc)
		workload.OpenLoop{
			IOPS: 60_000, Mix: workload.Mix{ReadPercent: 0, Size: 4096, Blocks: 1 << 20},
			Warmup: 20 * sim.Millisecond, Duration: 300 * sim.Millisecond, Seed: 4,
		}.Start(eng, wc)
		eng.Run()
		return float64(rres.ReadLat.Quantile(0.95)) / 1000 // us
	}
	enabled := run(false)
	disabled := run(true)
	if disabled < 2*enabled {
		t.Errorf("QoS made little difference: p95 %.0fus (sched) vs %.0fus (no sched)",
			enabled, disabled)
	}
	if enabled > 600 {
		t.Errorf("scheduled reader p95 = %.0fus, want bounded", enabled)
	}
}

func TestConnectionScalingInflatesCPU(t *testing.T) {
	r := newRig(t, 1, 600_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenant(tn)
	cl := r.client(t, netsim.IXClientStack(), 42)
	th := r.srv.threads[0]
	if f := th.cpuFactor(); f != 1 {
		t.Fatalf("cpuFactor with 0 conns = %v, want 1", f)
	}
	var conns []*Conn
	for i := 0; i < 5500; i++ {
		conns = append(conns, r.srv.Connect(cl, tn))
	}
	f := th.cpuFactor()
	if f < 1.3 || f > 1.6 {
		t.Errorf("cpuFactor with 5500 conns = %v, want ~1.4 (LLC pressure)", f)
	}
	for _, c := range conns {
		c.Close()
		c.Close() // double close is a no-op
	}
	if th.conns != 0 {
		t.Errorf("conns = %d after closing all", th.conns)
	}
}

func TestTenantPlacementBalanced(t *testing.T) {
	r := newRig(t, 4, 600_000*core.TokenUnit)
	idx := make(map[int]int)
	for i := 0; i < 8; i++ {
		idx[r.srv.RegisterTenant(beTenant(t, i))]++
	}
	for th, n := range idx {
		if n != 2 {
			t.Errorf("thread %d has %d tenants, want 2", th, n)
		}
	}
}

func TestConnectUnregisteredTenantPanics(t *testing.T) {
	r := newRig(t, 1, 600_000*core.TokenUnit)
	defer func() {
		if recover() == nil {
			t.Error("Connect before RegisterTenant did not panic")
		}
	}()
	r.srv.Connect(r.client(t, netsim.IXClientStack(), 1), beTenant(t, 1))
}

func TestIOOnClosedConnPanics(t *testing.T) {
	r := newRig(t, 1, 600_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenant(tn)
	conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), 1), tn)
	conn.Close()
	defer func() {
		if recover() == nil {
			t.Error("Read on closed conn did not panic")
		}
	}()
	conn.Read(0, 4096, nil)
}

func TestInvalidConfigPanics(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 1)
	defer func() {
		if recover() == nil {
			t.Error("zero-thread config did not panic")
		}
	}()
	NewServer(eng, net, dev, Config{})
}

func TestModelForDevice(t *testing.T) {
	m := ModelForDevice(flashsim.DeviceA())
	if m.WriteCost != 10*core.TokenUnit || m.ReadOnlyReadCost != core.TokenUnit/2 {
		t.Fatalf("device A model = %+v", m)
	}
	mb := ModelForDevice(flashsim.DeviceB())
	if mb.WriteCost != 20*core.TokenUnit || mb.ReadOnlyReadCost != core.TokenUnit {
		t.Fatalf("device B model = %+v", mb)
	}
}

func TestServerAccessors(t *testing.T) {
	r := newRig(t, 3, 123*core.TokenUnit)
	if r.srv.Threads() != 3 {
		t.Fatal("Threads accessor")
	}
	if r.srv.Device() != r.dev {
		t.Fatal("Device accessor")
	}
	if r.srv.Shared().TokenRate() != 123*core.TokenUnit {
		t.Fatal("Shared accessor")
	}
	if r.srv.Endpoint() == nil {
		t.Fatal("Endpoint accessor")
	}
	if r.srv.Model().ReadCost != core.TokenUnit {
		t.Fatal("Model accessor")
	}
}

func TestNegLimitNotificationPlumbed(t *testing.T) {
	r := newRig(t, 1, 420_000*core.TokenUnit)
	tn := lcTenant(t, 1, 1_000, 100, sim.Millisecond) // tiny SLO
	r.srv.RegisterTenant(tn)
	hits := 0
	r.srv.OnNegLimit(func(x *core.Tenant) {
		if x == tn {
			hits++
		}
	})
	conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), 1), tn)
	// Burst far beyond the 1K IOPS SLO.
	workload.OpenLoop{
		IOPS: 50_000, Mix: workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
		Duration: 50 * sim.Millisecond, Seed: 8,
	}.Start(r.eng, conn)
	r.eng.Run()
	if hits == 0 {
		t.Error("LC tenant bursting over its SLO never triggered OnNegLimit")
	}
}

func TestTokenAccounting(t *testing.T) {
	r := newRig(t, 1, 600_000*core.TokenUnit)
	tn := beTenant(t, 1)
	r.srv.RegisterTenant(tn)
	conn := r.srv.Connect(r.client(t, netsim.IXClientStack(), 1), tn)
	res := workload.OpenLoop{
		IOPS: 10_000, Mix: workload.Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
		Duration: 100 * sim.Millisecond, Seed: 9,
	}.Start(r.eng, conn)
	r.eng.Run()
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	if got := r.srv.SubmittedTokens(); got <= 0 {
		t.Errorf("SubmittedTokens = %d, want positive", got)
	}
}

func TestCacheHitServiceDefault(t *testing.T) {
	// A cache-enabled server must never serve hits in zero simulated
	// time: leaving CacheHitService unset defaults it to 2us.
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 1)
	cfg := DefaultConfig(1, 600_000*core.TokenUnit)
	cfg.CacheBlocks = 64
	srv := NewServer(eng, net, dev, cfg)
	if srv.cfg.CacheHitService != 2*sim.Microsecond {
		t.Fatalf("CacheHitService default = %v, want 2us", srv.cfg.CacheHitService)
	}
	// An explicit value is preserved.
	cfg.CacheHitService = 5 * sim.Microsecond
	srv2 := NewServerOn(eng, net, net.NewEndpoint("reflex2", netsim.NullStack(), 7002), dev, cfg)
	if srv2.cfg.CacheHitService != 5*sim.Microsecond {
		t.Fatalf("explicit CacheHitService overridden: %v", srv2.cfg.CacheHitService)
	}
}
