package dataplane

import (
	"fmt"
	"sort"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/sim"
)

// Tenant rebalancing (§4.3): when the control plane grows or shrinks the
// thread count, tenants and their connections move between threads. A
// tenant's scheduler state — token balance, grant history, queued
// requests — travels with it, and in-flight Flash operations complete on
// whichever thread submitted them, so no request is lost or reordered
// within a connection ("Rebalancing takes a few milliseconds and does not
// lead to packet dropping or reordering").

// MoveTenant migrates a tenant (and the connections bound to it) to the
// given thread. It must run from engine context, like all simulator
// mutations.
func (s *Server) MoveTenant(t *core.Tenant, to int) {
	if to < 0 || to >= len(s.threads) {
		panic(fmt.Sprintf("dataplane: MoveTenant to thread %d of %d", to, len(s.threads)))
	}
	from, ok := s.tenantAt[t]
	if !ok {
		panic("dataplane: MoveTenant of unregistered tenant")
	}
	if from == to {
		return
	}
	src, dst := s.threads[from], s.threads[to]
	src.sched.Unregister(t)
	src.tenants--
	dst.sched.Register(t)
	dst.tenants++
	s.tenantAt[t] = to

	// Connections follow their tenant.
	moved := s.connsOf(t)
	src.conns -= moved
	dst.conns += moved

	// The destination may need a pass for the tenant's queued requests.
	dst.kick()
}

// connsOf counts open connections bound to a tenant.
func (s *Server) connsOf(t *core.Tenant) int {
	n := 0
	for c := range s.conns {
		if c.tenant == t && !c.closed {
			n++
		}
	}
	return n
}

// Rebalance spreads tenants evenly across threads by registered count,
// moving as few tenants as possible. It returns the number of moves.
func (s *Server) Rebalance() int {
	type slot struct {
		thread  int
		tenants []*core.Tenant
	}
	slots := make([]slot, len(s.threads))
	for i := range slots {
		slots[i].thread = i
	}
	for t, th := range s.tenantAt {
		slots[th].tenants = append(slots[th].tenants, t)
	}
	for i := range slots {
		// Deterministic order for reproducible simulations.
		sort.Slice(slots[i].tenants, func(a, b int) bool {
			return slots[i].tenants[a].ID < slots[i].tenants[b].ID
		})
	}

	total := len(s.tenantAt)
	base := total / len(s.threads)
	extra := total % len(s.threads)
	quota := func(i int) int {
		if i < extra {
			return base + 1
		}
		return base
	}

	// Collect overflow from loaded threads, then fill underloaded ones.
	var overflow []*core.Tenant
	for i := range slots {
		for len(slots[i].tenants) > quota(i) {
			last := slots[i].tenants[len(slots[i].tenants)-1]
			slots[i].tenants = slots[i].tenants[:len(slots[i].tenants)-1]
			overflow = append(overflow, last)
		}
	}
	moves := 0
	for i := range slots {
		for len(slots[i].tenants) < quota(i) && len(overflow) > 0 {
			t := overflow[len(overflow)-1]
			overflow = overflow[:len(overflow)-1]
			slots[i].tenants = append(slots[i].tenants, t)
			s.MoveTenant(t, i)
			moves++
		}
	}
	return moves
}

// ThreadLoads returns per-thread core utilization, for control-plane
// scaling decisions (ctrl.ThreadScaler).
func (s *Server) ThreadLoads() []float64 {
	out := make([]float64, len(s.threads))
	for i, th := range s.threads {
		out[i] = th.core.Utilization()
	}
	return out
}

// ThreadBusy returns each thread's cumulative CPU busy time; control loops
// difference successive samples for windowed utilization.
func (s *Server) ThreadBusy() []sim.Time {
	out := make([]sim.Time, len(s.threads))
	for i, th := range s.threads {
		out[i] = th.core.BusyTime()
	}
	return out
}

// Tenants returns the registered tenants in deterministic (ID) order.
func (s *Server) Tenants() []*core.Tenant {
	out := make([]*core.Tenant, 0, len(s.tenantAt))
	for t := range s.tenantAt {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Repack distributes every tenant across threads [0, active), the §4.3
// "allocate resources for additional threads / deallocate threads and
// return them to Linux" move: shrinking concentrates tenants on fewer
// cores, growing spreads them out.
func (s *Server) Repack(active int) int {
	if active < 1 {
		active = 1
	}
	if active > len(s.threads) {
		active = len(s.threads)
	}
	moves := 0
	for i, t := range s.Tenants() {
		want := i % active
		if s.tenantAt[t] != want {
			s.MoveTenant(t, want)
			moves++
		}
	}
	return moves
}
