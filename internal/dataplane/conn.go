package dataplane

import (
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/obs"
	"github.com/reflex-go/reflex/internal/sim"
)

// Conn is one client network connection bound to a tenant. Thousands of
// connections may share a tenant (§3.2); each connection is served by the
// tenant's thread.
type Conn struct {
	id     uint64
	srv    *Server
	tenant *core.Tenant
	client *netsim.Endpoint

	inflight map[*ioRequest]func(lat sim.Time)
	issued   map[*ioRequest]sim.Time
	closed   bool
}

// thread resolves the tenant's current thread; connections follow their
// tenant across rebalancing moves (§4.3).
func (c *Conn) thread() *thread {
	return c.srv.threads[c.srv.threadOf(c.tenant)]
}

// Connect opens a connection from a client endpoint to the server for the
// given tenant. The tenant must already be registered.
func (s *Server) Connect(client *netsim.Endpoint, tenant *core.Tenant) *Conn {
	ti := s.threadOf(tenant)
	if ti < 0 {
		panic("dataplane: Connect before RegisterTenant")
	}
	s.nextConn++
	s.threads[ti].conns++
	c := &Conn{
		id:       s.nextConn,
		srv:      s,
		tenant:   tenant,
		client:   client,
		inflight: make(map[*ioRequest]func(sim.Time)),
		issued:   make(map[*ioRequest]sim.Time),
	}
	if s.conns == nil {
		s.conns = make(map[*Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return c
}

// Close releases the connection's thread accounting. In-flight requests
// still complete.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.thread().conns--
	delete(c.srv.conns, c)
}

// Tenant returns the tenant this connection is bound to.
func (c *Conn) Tenant() *core.Tenant { return c.tenant }

// Read issues a remote read of size bytes at the given 4KB block address.
// done (optional) fires in engine context with the end-to-end latency seen
// by the client application.
func (c *Conn) Read(block uint64, size int, done func(lat sim.Time)) {
	c.issue(core.OpRead, block, size, done)
}

// Write issues a remote write.
func (c *Conn) Write(block uint64, size int, done func(lat sim.Time)) {
	c.issue(core.OpWrite, block, size, done)
}

// Issue dispatches on op; it makes Conn satisfy workload.Target.
func (c *Conn) Issue(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	c.issue(op, block, size, done)
}

func (c *Conn) issue(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	if c.closed {
		panic("dataplane: I/O on closed connection")
	}
	r := &ioRequest{conn: c, op: op, blk: block, size: size}
	c.srv.reqSeq++
	r.span.ID = c.srv.reqSeq
	r.span.Tenant = c.tenant.ID
	r.span.Write = op == core.OpWrite
	r.span.Size = size
	if done != nil {
		c.inflight[r] = done
	}
	c.issued[r] = c.srv.eng.Now()
	wire := ReqHeaderBytes
	if op == core.OpWrite {
		wire += size
	}
	c.client.Send(c.srv.endpoint, wire, func(sim.Time) {
		c.thread().arrive(r)
	})
}

// respond sends the response back to the client (server side).
func (c *Conn) respond(r *ioRequest) {
	r.span.Mark(obs.StageTx, c.srv.eng.Now())
	c.srv.ring.Push(r.span)
	wire := RespHeaderBytes
	if r.op == core.OpRead && !r.shed {
		wire += r.size // shed responses carry no payload
	}
	c.srv.endpoint.Send(c.client, wire, func(at sim.Time) {
		start := c.issued[r]
		delete(c.issued, r)
		if done, ok := c.inflight[r]; ok {
			delete(c.inflight, r)
			done(at - start)
		}
	})
}
