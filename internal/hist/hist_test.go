package hist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.95) != 0 ||
		h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestSingleSample(t *testing.T) {
	h := New()
	h.Record(12345)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		got := h.Quantile(q)
		if got != 12345 {
			t.Fatalf("Quantile(%v) = %d, want 12345 (min/max clamp)", q, got)
		}
	}
	if h.Mean() != 12345 {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestExactSmallValues(t *testing.T) {
	// Values below 64 are recorded exactly.
	h := New()
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 32 {
		t.Fatalf("p50 = %d, want 32", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 63 {
		t.Fatalf("p100 = %d, want 63", got)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Relative error of any quantile must be below the bucket resolution.
	rng := rand.New(rand.NewSource(7))
	h := New()
	var vals []int64
	for i := 0; i < 50000; i++ {
		// Log-uniform over 1us..10ms, the range of flash latencies.
		v := int64(1000 * (1 << uint(rng.Intn(14))))
		v += rng.Int63n(v)
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		relErr := float64(got-exact) / float64(exact)
		if relErr < -0.001 || relErr > 0.04 {
			t.Errorf("Quantile(%v) = %d, exact %d, relErr %.3f", q, got, exact, relErr)
		}
	}
}

func TestMeanSumMinMax(t *testing.T) {
	h := New()
	for _, v := range []int64{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Sum() != 100 || h.Mean() != 25 || h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("sum=%d mean=%v min=%d max=%d", h.Sum(), h.Mean(), h.Min(), h.Max())
	}
}

func TestNegativeClamped(t *testing.T) {
	h := New()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative sample must clamp to 0")
	}
}

func TestRecordN(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 10; i++ {
		a.Record(777)
	}
	b.RecordN(777, 10)
	if a.Count() != b.Count() || a.Sum() != b.Sum() ||
		a.Quantile(0.95) != b.Quantile(0.95) {
		t.Fatal("RecordN(v,10) must equal 10x Record(v)")
	}
	b.RecordN(5, 0) // no-op
	if b.Count() != 10 {
		t.Fatal("RecordN with n=0 must be a no-op")
	}
}

func TestMerge(t *testing.T) {
	a, b, both := New(), New(), New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1_000_000)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() ||
		a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatal("merge must preserve count/sum/min/max")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("merge changed Quantile(%v)", q)
		}
	}
	a.Merge(nil)   // no-op
	a.Merge(New()) // no-op
	if a.Count() != both.Count() {
		t.Fatal("merging empty/nil changed count")
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Record(123)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.95) != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestQuantilesBatch(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		h.Record(rng.Int63n(10_000_000))
	}
	qs := []float64{0.1, 0.5, 0.9, 0.95, 0.99, 0.999}
	batch := h.Quantiles(qs)
	for i, q := range qs {
		if single := h.Quantile(q); batch[i] != single {
			t.Errorf("Quantiles[%v] = %d, Quantile = %d", q, batch[i], single)
		}
	}
}

func TestQuantilesUnsortedPanics(t *testing.T) {
	h := New()
	h.Record(1)
	defer func() {
		if recover() == nil {
			t.Error("unsorted Quantiles input did not panic")
		}
	}()
	h.Quantiles([]float64{0.9, 0.5})
}

func TestSnapshotString(t *testing.T) {
	h := New()
	h.Record(100_000) // 100us
	s := h.Snapshot()
	if s.Count != 1 || s.P95 != 100_000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if str := s.String(); str == "" {
		t.Fatal("empty String()")
	}
}

func TestDump(t *testing.T) {
	h := New()
	h.Record(10)
	h.Record(1000)
	if h.Dump() == "" {
		t.Fatal("Dump of non-empty histogram is empty")
	}
}

// Property: quantile estimates never undercut the true value's bucket lower
// bound and are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New()
		n := 100 + rng.Intn(1000)
		for i := 0; i < n; i++ {
			h.Record(rng.Int63n(1 << 30))
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: recorded value v is bucketed such that Quantile over a single
// sample returns a value within 2% of v (or exact below 64).
func TestBucketResolutionProperty(t *testing.T) {
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		v %= 1 << 40
		h := New()
		h.Record(v)
		got := h.Quantile(0.5)
		if v < 64 {
			return got == v
		}
		return got == v // single sample: clamped to max, always exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) % 1_000_000)
	}
}

func BenchmarkQuantile(b *testing.B) {
	h := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Record(rng.Int63n(1_000_000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.95)
	}
}
