package hist

import (
	"math/rand"
	"testing"
)

// TestPercentiles checks the percent-scale batch helper: unsorted input is
// accepted, results come back in input order, and each value matches the
// corresponding Quantile call.
func TestPercentiles(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		h.Record(rng.Int63n(5_000_000))
	}
	ps := []float64{99, 50, 95, 99.9, 10} // deliberately unsorted
	got := h.Percentiles(ps)
	if len(got) != len(ps) {
		t.Fatalf("len = %d, want %d", len(got), len(ps))
	}
	for i, p := range ps {
		if want := h.Quantile(p / 100); got[i] != want {
			t.Errorf("Percentiles[%v] = %d, Quantile(%v) = %d", p, got[i], p/100, want)
		}
	}
	// The input slice must not be reordered.
	want := []float64{99, 50, 95, 99.9, 10}
	for i := range ps {
		if ps[i] != want[i] {
			t.Fatalf("input slice reordered: %v", ps)
		}
	}
	if out := New().Percentiles([]float64{50}); len(out) != 1 || out[0] != 0 {
		t.Fatalf("empty histogram Percentiles = %v", out)
	}
}

// TestMergeShardsThenQuantile simulates the per-thread shard pattern: N
// shards recording disjoint streams must merge into a histogram whose
// quantiles equal a single histogram that saw everything.
func TestMergeShardsThenQuantile(t *testing.T) {
	const shards = 4
	whole := New()
	parts := make([]*Hist, shards)
	for i := range parts {
		parts[i] = New()
	}
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 40000; i++ {
		v := rng.Int63n(10_000_000)
		parts[i%shards].Record(v)
		whole.Record(v)
	}
	merged := New()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() {
		t.Fatalf("count/sum mismatch after shard merge")
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("Quantile(%v): merged %d != whole %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestClone checks that Clone is a deep, independent copy.
func TestClone(t *testing.T) {
	h := New()
	h.Record(100)
	h.Record(1000)
	c := h.Clone()
	if c.Count() != 2 || c.Quantile(0.95) != h.Quantile(0.95) {
		t.Fatal("clone does not match source")
	}
	h.Record(1 << 20)
	if c.Count() != 2 {
		t.Fatal("clone shares state with source")
	}
	c.Record(5)
	if h.Count() != 3 {
		t.Fatal("source affected by clone mutation")
	}
}

// TestDelta checks interval extraction: cur.Delta(prev) must contain
// exactly the samples recorded between the two snapshots.
func TestDelta(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 10000; i++ {
		h.Record(rng.Int63n(1_000_000))
	}
	prev := h.Clone()

	interval := New()
	for i := 0; i < 5000; i++ {
		v := 2_000_000 + rng.Int63n(1_000_000) // distinct range for clarity
		h.Record(v)
		interval.Record(v)
	}
	d := h.Clone().Delta(prev)
	if d.Count() != interval.Count() {
		t.Fatalf("delta count = %d, want %d", d.Count(), interval.Count())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if d.Quantile(q) != interval.Quantile(q) {
			t.Errorf("delta Quantile(%v) = %d, interval %d", q, d.Quantile(q), interval.Quantile(q))
		}
	}

	// Delta against nil is the whole histogram.
	whole := h.Clone().Delta(nil)
	if whole.Count() != h.Count() {
		t.Fatalf("Delta(nil) count = %d, want %d", whole.Count(), h.Count())
	}
	// Delta with no new samples is empty.
	same := h.Clone().Delta(h.Clone())
	if same.Count() != 0 || same.Quantile(0.95) != 0 {
		t.Fatalf("empty delta not empty: count=%d", same.Count())
	}
}
