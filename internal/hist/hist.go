// Package hist provides a fixed-memory, log-bucketed latency histogram in
// the spirit of HDR histograms. Recording is O(1) and allocation-free;
// quantiles are approximate with a relative error bounded by the sub-bucket
// resolution (<2% with the default 64 sub-buckets per power of two), which
// is far below the run-to-run variance of the experiments that use it.
//
// All values are durations in nanoseconds, matching the sim package.
package hist

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const (
	subBits    = 6 // sub-buckets per power of two: 64
	subBuckets = 1 << subBits
	majors     = 40 // covers up to ~2^(40+6) ns ≈ 19 hours
)

// Hist is a latency histogram. The zero value is ready to use.
type Hist struct {
	counts [majors * subBuckets]uint32
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *Hist {
	return &Hist{}
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// major = position of the highest set bit above the sub-bucket field.
	major := bits.Len64(uint64(v)) - 1 - subBits
	sub := int(v >> uint(major) & (subBuckets - 1))
	idx := (major+1)*subBuckets + sub
	if idx >= majors*subBuckets {
		idx = majors*subBuckets - 1
	}
	return idx
}

// Record adds one sample.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// RecordN adds n identical samples.
func (h *Hist) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)] += uint32(n)
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * int64(n)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the sum of all recorded samples.
func (h *Hist) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 if empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 if empty).
func (h *Hist) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of recorded samples (0 if empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper-bound estimate for quantile q in [0, 1].
// Quantile(0.95) is the p95. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += uint64(c)
		if cum > target {
			u := upperValue(idx)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// upperValue returns the largest value that maps into bucket idx.
func upperValue(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	major := idx/subBuckets - 1
	sub := int64(idx % subBuckets)
	lo := (sub | subBuckets) << uint(major)
	hi := lo + (int64(1) << uint(major)) - 1
	return hi
}

// Merge adds all samples of other into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Reset clears all recorded samples.
func (h *Hist) Reset() {
	*h = Hist{}
}

// Snapshot is a compact summary of a histogram.
type Snapshot struct {
	Count uint64
	Mean  float64
	Min   int64
	P50   int64
	P95   int64
	P99   int64
	P999  int64
	Max   int64
}

// Snapshot returns the standard summary.
func (h *Hist) Snapshot() Snapshot {
	return Snapshot{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String formats the snapshot with microsecond units, the natural scale for
// flash latencies.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus",
		s.Count, s.Mean/1000, float64(s.P50)/1000, float64(s.P95)/1000,
		float64(s.P99)/1000, float64(s.Max)/1000)
}

// Quantiles returns estimates for several quantiles at once, more cheaply
// than repeated Quantile calls. qs must be sorted ascending.
func (h *Hist) Quantiles(qs []float64) []int64 {
	if !sort.Float64sAreSorted(qs) {
		panic("hist: Quantiles requires sorted input")
	}
	out := make([]int64, len(qs))
	if h.count == 0 {
		return out
	}
	var cum uint64
	qi := 0
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += uint64(c)
		for qi < len(qs) {
			target := uint64(qs[qi] * float64(h.count))
			if target >= h.count {
				target = h.count - 1
			}
			if cum > target {
				u := upperValue(idx)
				if u > h.max {
					u = h.max
				}
				if u < h.min {
					u = h.min
				}
				out[qi] = u
				qi++
			} else {
				break
			}
		}
		if qi == len(qs) {
			break
		}
	}
	for ; qi < len(qs); qi++ {
		out[qi] = h.max
	}
	return out
}

// Percentiles returns estimates for several percentiles given on the
// [0, 100] scale, in the input's order. Unlike Quantiles, the input need
// not be sorted; the result for Percentiles([]float64{50, 95, 99}) matches
// Quantile(0.50), Quantile(0.95), Quantile(0.99).
func (h *Hist) Percentiles(ps []float64) []int64 {
	qs := make([]float64, len(ps))
	order := make([]int, len(ps))
	for i, p := range ps {
		qs[i] = p / 100
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return qs[order[a]] < qs[order[b]] })
	sorted := make([]float64, len(ps))
	for i, oi := range order {
		sorted[i] = qs[oi]
	}
	vals := h.Quantiles(sorted)
	out := make([]int64, len(ps))
	for i, oi := range order {
		out[oi] = vals[i]
	}
	return out
}

// Clone returns an independent copy of the histogram.
func (h *Hist) Clone() *Hist {
	c := *h
	return &c
}

// Delta returns a histogram holding the samples recorded in h since prev
// was captured. prev must be an earlier snapshot (Clone) of the same
// histogram; a nil prev returns a copy of h. Min/max of the delta are
// bounded by the cumulative min/max, which is the best a bucketed
// histogram can reconstruct; quantiles of the interval are exact to bucket
// resolution.
func (h *Hist) Delta(prev *Hist) *Hist {
	if prev == nil || prev.count == 0 {
		return h.Clone()
	}
	d := &Hist{}
	var lo, hi int64 = -1, 0
	for i := range h.counts {
		c := h.counts[i] - prev.counts[i]
		if c == 0 {
			continue
		}
		d.counts[i] = c
		u := upperValue(i)
		if lo < 0 {
			lo = u
		}
		hi = u
	}
	d.count = h.count - prev.count
	d.sum = h.sum - prev.sum
	if d.count > 0 {
		d.min = lo
		if d.min < h.min {
			d.min = h.min
		}
		d.max = hi
		if d.max > h.max {
			d.max = h.max
		}
		if d.min > d.max {
			d.min = d.max
		}
	}
	return d
}

// Dump renders a human-readable bucket listing for debugging, with one line
// per non-empty bucket.
func (h *Hist) Dump() string {
	var b strings.Builder
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "<=%dns: %d\n", upperValue(idx), c)
	}
	return b.String()
}
