package core

import "testing"

func modelA() CostModel {
	return CostModel{ReadCost: TokenUnit, ReadOnlyReadCost: TokenUnit / 2, WriteCost: 10 * TokenUnit}
}

func TestCostPageMath(t *testing.T) {
	m := modelA()
	cases := []struct {
		op       OpType
		size     int
		readOnly bool
		want     Tokens
	}{
		{OpRead, 4096, false, 1000},        // 1 token
		{OpRead, 512, false, 1000},         // <=4KB costs a full page
		{OpRead, 0, false, 1000},           // zero size = one page
		{OpRead, 4097, false, 2000},        // rounds up
		{OpRead, 32 * 1024, false, 8000},   // 8 back-to-back 4KB (§3.2.1)
		{OpRead, 4096, true, 500},          // C(read, r=100%) = 1/2 token
		{OpRead, 32 * 1024, true, 4000},    // scales with size in read-only too
		{OpWrite, 4096, false, 10000},      // write cost 10 tokens (device A)
		{OpWrite, 4096, true, 10000},       // read-only flag irrelevant for writes
		{OpWrite, 16 * 1024, false, 40000}, // 4 pages
	}
	for _, c := range cases {
		if got := m.Cost(c.op, c.size, c.readOnly); got != c.want {
			t.Errorf("Cost(%v, %d, %v) = %d, want %d", c.op, c.size, c.readOnly, got, c.want)
		}
	}
}

func TestRateForSLOPaperExamples(t *testing.T) {
	m := modelA()
	// §3.2.2: "a tenant registering an SLO of 100K IOPS with an 80% read
	// ratio is guaranteed to receive tokens at a rate of ... 280K tokens/sec"
	if got := m.RateForSLO(100_000, 80); got != 280_000*TokenUnit {
		t.Errorf("RateForSLO(100K, 80%%) = %d mt/s, want 280M", got)
	}
	// §5.4 Scenario 1: tenant B requires 70K IOPS at 80% read -> 196K
	// tokens/sec; tenant A 120K IOPS at 100% read -> 120K tokens/sec.
	if got := m.RateForSLO(70_000, 80); got != 196_000*TokenUnit {
		t.Errorf("RateForSLO(70K, 80%%) = %d mt/s, want 196M", got)
	}
	if got := m.RateForSLO(120_000, 100); got != 120_000*TokenUnit {
		t.Errorf("RateForSLO(120K, 100%%) = %d mt/s, want 120M", got)
	}
}

func TestRateForSLOClamps(t *testing.T) {
	m := modelA()
	if got := m.RateForSLO(-5, 80); got != 0 {
		t.Errorf("negative IOPS rate = %d, want 0", got)
	}
	if got := m.RateForSLO(1000, -10); got != m.RateForSLO(1000, 0) {
		t.Error("ReadPercent < 0 not clamped to 0")
	}
	if got := m.RateForSLO(1000, 200); got != m.RateForSLO(1000, 100) {
		t.Error("ReadPercent > 100 not clamped to 100")
	}
}

func TestCostModelValidate(t *testing.T) {
	good := modelA()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []CostModel{
		{ReadCost: 0, ReadOnlyReadCost: 1, WriteCost: 10},
		{ReadCost: 1000, ReadOnlyReadCost: 0, WriteCost: 10000},
		{ReadCost: 1000, ReadOnlyReadCost: 2000, WriteCost: 10000}, // RO > read
		{ReadCost: 1000, ReadOnlyReadCost: 1000, WriteCost: 500},   // write < read
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d passed validation", i)
		}
	}
}

func TestOpTypeString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("OpType.String wrong")
	}
}

func TestClassString(t *testing.T) {
	if LatencyCritical.String() != "LC" || BestEffort.String() != "BE" {
		t.Fatal("Class.String wrong")
	}
}
