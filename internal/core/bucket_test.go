package core

import (
	"sync"
	"testing"
)

func TestGlobalBucketAddTake(t *testing.T) {
	g := NewGlobalBucket(1)
	g.Add(1000)
	g.Add(-5) // no-op
	g.Add(0)  // no-op
	if g.Tokens() != 1000 {
		t.Fatalf("tokens = %d, want 1000", g.Tokens())
	}
	if got := g.TryTake(300); got != 300 {
		t.Fatalf("TryTake(300) = %d", got)
	}
	if got := g.TryTake(5000); got != 700 {
		t.Fatalf("TryTake beyond balance = %d, want 700", got)
	}
	if got := g.TryTake(1); got != 0 {
		t.Fatalf("TryTake on empty = %d, want 0", got)
	}
	if got := g.TryTake(-1); got != 0 {
		t.Fatalf("TryTake(-1) = %d, want 0", got)
	}
}

func TestGlobalBucketMarkRoundReset(t *testing.T) {
	g := NewGlobalBucket(3)
	g.ResetInterval = 0 // drain on every completed cycle
	g.Add(500)
	g.MarkRound(0, 1)
	g.MarkRound(1, 2)
	if g.Tokens() != 500 {
		t.Fatal("bucket reset before all threads marked")
	}
	g.MarkRound(2, 3) // completes the set
	if g.Tokens() != 0 {
		t.Fatalf("bucket not reset: %d", g.Tokens())
	}
	if g.Resets() != 1 {
		t.Fatalf("resets = %d, want 1", g.Resets())
	}
	// Next cycle works again.
	g.Add(100)
	g.MarkRound(1, 4)
	g.MarkRound(0, 5)
	g.MarkRound(2, 6)
	if g.Tokens() != 0 || g.Resets() != 2 {
		t.Fatalf("second cycle: tokens=%d resets=%d", g.Tokens(), g.Resets())
	}
}

func TestGlobalBucketSingleThreadResetsEveryRound(t *testing.T) {
	g := NewGlobalBucket(1)
	g.ResetInterval = 0
	g.Add(100)
	g.MarkRound(0, 1)
	if g.Tokens() != 0 {
		t.Fatal("single-thread bucket must reset every round")
	}
}

func TestGlobalBucketResetIntervalGates(t *testing.T) {
	// Donations survive until the reset interval elapses, even with every
	// thread marking rounds continuously — otherwise a donor thread's own
	// round-completion would destroy its donation before anyone claims it.
	g := NewGlobalBucket(2)
	g.ResetInterval = 1_000_000 // 1ms
	g.Add(100)
	for now := int64(1); now < 900_000; now += 100_000 {
		g.MarkRound(0, now)
		g.MarkRound(1, now+1)
	}
	if g.Tokens() != 100 {
		t.Fatalf("bucket drained before interval: %d", g.Tokens())
	}
	g.MarkRound(0, 1_500_000)
	g.MarkRound(1, 1_500_001)
	if g.Tokens() != 0 {
		t.Fatalf("bucket not drained after interval: %d", g.Tokens())
	}
	if g.Resets() != 1 {
		t.Fatalf("resets = %d, want 1", g.Resets())
	}
}

func TestGlobalBucketBounds(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGlobalBucket(%d) did not panic", n)
				}
			}()
			NewGlobalBucket(n)
		}()
	}
	NewGlobalBucket(64) // max allowed
	g := NewGlobalBucket(2)
	defer func() {
		if recover() == nil {
			t.Error("MarkRound out of range did not panic")
		}
	}()
	g.MarkRound(2, 0)
}

func TestGlobalBucketConcurrent(t *testing.T) {
	// Donors and claimants race; conservation must hold: total taken never
	// exceeds total added, and the balance never goes negative.
	g := NewGlobalBucket(8)
	const donors, perDonor = 8, 10000
	var taken [8]int64
	var wg sync.WaitGroup
	for i := 0; i < donors; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < perDonor; j++ {
				g.Add(10)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < perDonor; j++ {
				taken[i] += g.TryTake(7)
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, v := range taken {
		total += v
	}
	remaining := g.Tokens()
	if remaining < 0 {
		t.Fatalf("bucket went negative: %d", remaining)
	}
	if total+remaining != donors*perDonor*10 {
		t.Fatalf("conservation violated: taken %d + left %d != added %d",
			total, remaining, donors*perDonor*10)
	}
}

func TestSharedStateRates(t *testing.T) {
	s := NewSharedState(2, 420_000*TokenUnit)
	if s.TokenRate() != 420_000*TokenUnit {
		t.Fatal("token rate not stored")
	}
	// §5.4 Scenario 1: A reserves 120K, B reserves 196K -> 104K unallocated.
	s.ReserveLC(120_000 * TokenUnit)
	s.ReserveLC(196_000 * TokenUnit)
	if got := s.UnallocatedRate(); got != 104_000*TokenUnit {
		t.Fatalf("unallocated = %d, want 104M mt/s", got)
	}
	s.AddBE()
	s.AddBE()
	// "BE tenants C and D receive a fair share of unallocated tokens (52K
	// tokens/sec each)".
	if got := s.BEFairRate(); got != 52_000*TokenUnit {
		t.Fatalf("BE fair rate = %d, want 52M mt/s", got)
	}
	s.RemoveBE()
	if got := s.BEFairRate(); got != 104_000*TokenUnit {
		t.Fatalf("single BE rate = %d, want 104M", got)
	}
	s.ReleaseLC(196_000 * TokenUnit)
	if got := s.UnallocatedRate(); got != 300_000*TokenUnit {
		t.Fatalf("after release unallocated = %d, want 300M", got)
	}
	if s.LCReserved() != 120_000*TokenUnit {
		t.Fatal("LCReserved wrong after release")
	}
	if s.BECount() != 1 {
		t.Fatal("BECount wrong")
	}
}

func TestSharedStateOversubscribedFloorsAtZero(t *testing.T) {
	s := NewSharedState(1, 100*TokenUnit)
	s.ReserveLC(500 * TokenUnit)
	if got := s.UnallocatedRate(); got != 0 {
		t.Fatalf("oversubscribed unallocated = %d, want 0", got)
	}
	s.AddBE()
	if got := s.BEFairRate(); got != 0 {
		t.Fatalf("oversubscribed BE rate = %d, want 0", got)
	}
}

func TestSharedStateBEFairRateNoBE(t *testing.T) {
	s := NewSharedState(1, 1000)
	if s.BEFairRate() != 0 {
		t.Fatal("BEFairRate with zero BE tenants must be 0")
	}
}
