// Package core implements the primary contribution of the ReFlex paper:
// the request cost model (§3.2.1) and the QoS scheduling algorithm
// (§3.2.2, Algorithm 1) that together enforce tail-latency and throughput
// SLOs for latency-critical tenants while letting best-effort tenants
// consume all remaining Flash bandwidth.
//
// The package is deliberately substrate-agnostic: it knows nothing about
// simulated versus real time, networks, or flash devices. The simulated
// dataplane (internal/dataplane) and the real TCP server (internal/server)
// both embed this scheduler unchanged.
//
// Token arithmetic uses fixed-point "millitokens" (1 token = 1000 mt) so
// that fractional costs — such as the 1/2-token read on a read-only device
// — and sub-token-per-round generation rates are exact in integer math.
package core

import "fmt"

// Tokens is a fixed-point token quantity in millitokens. One token
// (1000 mt) is defined as the cost of one 4KB random read at a read/write
// mix below 100% reads.
type Tokens = int64

// TokenUnit is one whole token in millitokens.
const TokenUnit Tokens = 1000

// OpType distinguishes reads from writes for costing purposes.
type OpType uint8

const (
	// OpRead is a logical block read.
	OpRead OpType = iota
	// OpWrite is a logical block write.
	OpWrite
)

// String returns "read" or "write".
func (o OpType) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// pageSize is the costing granularity (§3.2.1: devices operate at 4KB).
const pageSize = 4096

// CostModel is the calibrated request cost model of one Flash device:
//
//	cost(I/O) = ceil(size / 4KB) × C(type, r)
//
// where r is the device-wide read ratio. The paper's devices only
// distinguish r = 100% from r < 100% (the read-only fast mode), so the
// model carries two read costs.
type CostModel struct {
	// ReadCost is C(read, r < 100%) in millitokens; 1000 by definition.
	ReadCost Tokens
	// ReadOnlyReadCost is C(read, r = 100%) in millitokens (500 on the
	// paper's device A, 1000 on devices without a read-only fast mode).
	ReadOnlyReadCost Tokens
	// WriteCost is C(write, r < 100%) in millitokens (10000, 20000 and
	// 16000 for the paper's devices A, B and C).
	WriteCost Tokens
}

// Validate reports configuration errors.
func (m CostModel) Validate() error {
	switch {
	case m.ReadCost <= 0:
		return fmt.Errorf("core: ReadCost must be positive")
	case m.ReadOnlyReadCost <= 0 || m.ReadOnlyReadCost > m.ReadCost:
		return fmt.Errorf("core: ReadOnlyReadCost must be in (0, ReadCost]")
	case m.WriteCost < m.ReadCost:
		return fmt.Errorf("core: WriteCost below ReadCost is not a Flash device")
	}
	return nil
}

// Cost returns the cost of one I/O in millitokens. readOnly selects
// C(read, r=100%); it has no effect on writes.
func (m CostModel) Cost(op OpType, sizeBytes int, readOnly bool) Tokens {
	pages := Tokens(1)
	if sizeBytes > pageSize {
		pages = Tokens((sizeBytes + pageSize - 1) / pageSize)
	}
	switch op {
	case OpWrite:
		return pages * m.WriteCost
	default:
		if readOnly {
			return pages * m.ReadOnlyReadCost
		}
		return pages * m.ReadCost
	}
}

// CacheServeCost returns the millitoken charge for a request served from
// a DRAM read cache in front of the device. A hit consumes no device
// time, only a memory copy and dispatch work, priced at 1/16 of a device
// read (floor 1 mt so hits are never free: a tenant hammering the cache
// still shows up in token accounting and cannot starve the dispatch
// path). The same figure is the admission hurdle's per-hit saving: a
// block earns admission only when its observed re-reference traffic,
// valued at ReadCost - CacheServeCost per future hit, exceeds the
// fill/eviction overhead (see internal/readcache).
func (m CostModel) CacheServeCost() Tokens {
	c := m.ReadCost / 16
	if c < 1 {
		c = 1
	}
	return c
}

// RateForSLO returns the token generation rate (millitokens/second) that
// guarantees an SLO of the given IOPS at the given read percentage,
// assuming 4KB requests — the paper's §3.2.2 example: 100K IOPS at 80%
// reads with a write cost of 10 tokens reserves 280K tokens/s.
func (m CostModel) RateForSLO(iops int, readPercent int) Tokens {
	if iops < 0 {
		iops = 0
	}
	r := clampPercent(readPercent)
	reads := int64(iops) * int64(r)
	writes := int64(iops) * int64(100-r)
	return (reads*m.ReadCost + writes*m.WriteCost) / 100
}

func clampPercent(p int) int {
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}
