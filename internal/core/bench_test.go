package core

import (
	"fmt"
	"testing"
)

// BenchmarkScheduleRound measures one Algorithm-1 round over a populated
// scheduler — the cost charged on every dataplane pass.
func BenchmarkScheduleRound(b *testing.B) {
	for _, tenants := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("tenants-%d", tenants), func(b *testing.B) {
			shared := NewSharedState(1, 1_000_000*TokenUnit)
			s := NewScheduler(modelA(), 0, shared)
			for i := 0; i < tenants; i++ {
				t, err := NewTenant(i, "lc", LatencyCritical,
					SLO{IOPS: 1000, ReadPercent: 90, LatencyP95: 1e6})
				if err != nil {
					b.Fatal(err)
				}
				s.Register(t)
			}
			lc, _ := s.Tenants()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Enqueue(lc[i%tenants], &Request{Op: OpRead, Size: 4096})
				s.Schedule(int64(i)*1000, func(*Request) {})
			}
		})
	}
}

// BenchmarkEnqueue measures the per-request queueing cost.
func BenchmarkEnqueue(b *testing.B) {
	shared := NewSharedState(1, 1_000_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	t, _ := NewTenant(1, "be", BestEffort, SLO{})
	s.Register(t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enqueue(t, &Request{Op: OpRead, Size: 4096})
		if i%1024 == 1023 {
			s.Schedule(int64(i)*100_000, func(*Request) {}) // drain
		}
	}
}

// BenchmarkGlobalBucket measures the cross-thread token exchange.
func BenchmarkGlobalBucket(b *testing.B) {
	g := NewGlobalBucket(8)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g.Add(10)
			g.TryTake(10)
		}
	})
}

// BenchmarkCost measures the cost-model lookup on the submission path.
func BenchmarkCost(b *testing.B) {
	m := modelA()
	var sink Tokens
	for i := 0; i < b.N; i++ {
		sink += m.Cost(OpType(i&1), 4096, i&2 == 0)
	}
	_ = sink
}
