package core

import (
	"testing"
)

const usec = int64(1000) // ns

func newLC(t *testing.T, id, iops, readPct int) *Tenant {
	t.Helper()
	tn, err := NewTenant(id, "lc", LatencyCritical, SLO{IOPS: iops, ReadPercent: readPct, LatencyP95: 500 * usec})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func newBE(t *testing.T, id int) *Tenant {
	t.Helper()
	tn, err := NewTenant(id, "be", BestEffort, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// fill keeps a tenant's queue topped up with identical requests.
func fill(s *Scheduler, tn *Tenant, op OpType, n int) {
	for i := 0; i < n; i++ {
		s.Enqueue(tn, &Request{Op: op, Size: 4096})
	}
}

func TestNewTenantValidation(t *testing.T) {
	if _, err := NewTenant(1, "bad", LatencyCritical, SLO{}); err == nil {
		t.Fatal("LC tenant without SLO accepted")
	}
	if _, err := NewTenant(1, "be", BestEffort, SLO{}); err != nil {
		t.Fatalf("BE tenant without SLO rejected: %v", err)
	}
}

func TestSLOValidate(t *testing.T) {
	bad := []SLO{
		{IOPS: 0, ReadPercent: 80, LatencyP95: 1},
		{IOPS: 1, ReadPercent: -1, LatencyP95: 1},
		{IOPS: 1, ReadPercent: 101, LatencyP95: 1},
		{IOPS: 1, ReadPercent: 80, LatencyP95: 0},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad SLO %d accepted", i)
		}
	}
}

func TestLCTenantReceivesSLORate(t *testing.T) {
	// An LC tenant with saturating demand is throttled to exactly its SLO
	// rate over a long run.
	shared := NewSharedState(1, 420_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	lc := newLC(t, 1, 100_000, 100)
	s.Register(lc)

	submitted := 0
	interval := 100 * usec // 100us rounds
	for now := int64(0); now <= 1e9; now += interval {
		// Keep demand saturated: twice the SLO rate.
		fill(s, lc, OpRead, 20)
		submitted += s.Schedule(now, func(*Request) {})
	}
	// 1 second at 100K IOPS, plus the 50-token initial burst allowance.
	if submitted < 99_000 || submitted > 101_000 {
		t.Errorf("LC submitted %d in 1s, want ~100000", submitted)
	}
}

func TestLCWeightedRate(t *testing.T) {
	// 80% read SLO: rate is weighted (0.8*1 + 0.2*10 = 2.8 tokens/IO).
	shared := NewSharedState(1, 1_000_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	lc := newLC(t, 1, 70_000, 80)
	s.Register(lc)
	if lc.Rate() != 196_000*TokenUnit {
		t.Fatalf("rate = %d, want 196M mt/s", lc.Rate())
	}
	if shared.LCReserved() != 196_000*TokenUnit {
		t.Fatalf("reserved = %d", shared.LCReserved())
	}
}

func TestLCBurstsToNegLimitThenRateLimited(t *testing.T) {
	// With no time elapsing (zero token generation), an LC tenant may burst
	// only until its balance hits NEG_LIMIT = -50 tokens.
	shared := NewSharedState(1, 420_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	lc := newLC(t, 1, 100_000, 100)
	s.Register(lc)
	fill(s, lc, OpRead, 200)

	n := s.Schedule(0, func(*Request) {})
	if n != 50 {
		t.Errorf("initial burst submitted %d, want 50 (NEG_LIMIT/-1 token)", n)
	}
	if lc.Tokens() != -50*TokenUnit {
		t.Errorf("tokens = %d, want -50000", lc.Tokens())
	}
	// Further zero-dt rounds submit nothing.
	if n := s.Schedule(0, func(*Request) {}); n != 0 {
		t.Errorf("rate-limited tenant submitted %d", n)
	}
}

func TestLCNegLimitWithExpensiveWrites(t *testing.T) {
	// Writes cost 10 tokens: the burst is limited to 5 writes
	// ("to limit the number of expensive write requests in a burst").
	shared := NewSharedState(1, 420_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	lc := newLC(t, 1, 10_000, 0)
	s.Register(lc)
	fill(s, lc, OpWrite, 20)
	if n := s.Schedule(0, func(*Request) {}); n != 5 {
		t.Errorf("write burst = %d, want 5", n)
	}
}

func TestOnNegLimitEdgeTriggered(t *testing.T) {
	shared := NewSharedState(1, 420_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	lc := newLC(t, 1, 100_000, 100)
	s.Register(lc)
	notified := 0
	s.OnNegLimit = func(tn *Tenant) {
		if tn != lc {
			t.Error("notified for wrong tenant")
		}
		notified++
	}
	fill(s, lc, OpRead, 200)
	s.Schedule(0, func(*Request) {}) // burst into the floor
	s.Schedule(0, func(*Request) {}) // still at floor: no new notification
	s.Schedule(0, func(*Request) {})
	if notified != 1 {
		t.Errorf("notified %d times, want 1 (edge-triggered)", notified)
	}
	// Recover (generate tokens, drain queue), then burst again -> notify again.
	for now := int64(usec); now <= 3e9; now += 1e6 {
		s.Schedule(now, func(*Request) {})
	}
	if lc.Tokens() <= DefaultNegLimit {
		t.Fatalf("tenant did not recover: %d", lc.Tokens())
	}
	// A burst larger than any accrued balance drives the tenant back to
	// the floor.
	fill(s, lc, OpRead, 300_000)
	s.Schedule(3e9+1, func(*Request) {})
	if notified != 2 {
		t.Errorf("notified %d times after second burst, want 2", notified)
	}
}

func TestLCDonatesAbovePosLimit(t *testing.T) {
	// An idle LC tenant accumulates at most ~3 rounds of grants; the rest
	// is donated (90%) to the global bucket.
	shared := NewSharedState(2, 420_000*TokenUnit) // 2 threads: bucket survives rounds
	s := NewScheduler(modelA(), 0, shared)
	lc := newLC(t, 1, 100_000, 100) // 100 tokens/ms
	s.Register(lc)
	for now := int64(0); now <= 100e6; now += 1e6 { // 100 rounds of 1ms
		s.Schedule(now, func(*Request) {})
	}
	// Grant per 1ms round = 100 tokens; POS_LIMIT = 300 tokens.
	if lc.Tokens() > 310*TokenUnit {
		t.Errorf("idle LC accumulated %d mt, want <= ~POS_LIMIT (300K)", lc.Tokens())
	}
	st := lc.Stats()
	if st.Donated == 0 {
		t.Error("idle LC never donated to the global bucket")
	}
	if shared.Bucket.Tokens() == 0 {
		t.Error("global bucket empty despite donations (no reset should occur)")
	}
}

func TestBEFairSharing(t *testing.T) {
	// Two saturated BE tenants split the unallocated rate equally.
	shared := NewSharedState(1, 420_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	be1, be2 := newBE(t, 1), newBE(t, 2)
	s.Register(be1)
	s.Register(be2)

	got := map[*Tenant]int{}
	interval := 100 * usec
	for now := int64(0); now <= 1e9; now += interval {
		fill(s, be1, OpRead, 40)
		fill(s, be2, OpRead, 40)
		s.Schedule(now, func(r *Request) { got[r.Tenant]++ })
	}
	// 420K tokens/s split two ways = 210K reads/s each.
	for _, tn := range []*Tenant{be1, be2} {
		if got[tn] < 200_000 || got[tn] > 220_000 {
			t.Errorf("BE tenant submitted %d, want ~210000", got[tn])
		}
	}
}

func TestBEConditionalSubmitAccumulates(t *testing.T) {
	// A BE tenant must accumulate enough tokens before an expensive write
	// is admitted; it is never allowed into deficit.
	shared := NewSharedState(2, 10_000*TokenUnit) // 10 tokens/ms unallocated
	s := NewScheduler(modelA(), 0, shared)
	be := newBE(t, 1)
	s.Register(be)
	s.Enqueue(be, &Request{Op: OpWrite, Size: 4096}) // 10 tokens

	submitted := -1
	round := 0
	for now := int64(0); now <= 2e6; now += 100 * usec { // 0.1ms rounds: 1 token each
		round++
		if s.Schedule(now, func(*Request) {}) > 0 && submitted < 0 {
			submitted = round
		}
		if be.Tokens() < 0 {
			t.Fatalf("BE tenant went into deficit: %d", be.Tokens())
		}
	}
	if submitted < 0 {
		t.Fatal("write never submitted")
	}
	// Needs 10 tokens at ~1 token/round: not before round 10.
	if submitted < 10 {
		t.Errorf("write submitted in round %d, want >= 10 (must accumulate)", submitted)
	}
}

func TestBEClaimsFromGlobalBucket(t *testing.T) {
	// LC reserves the entire token rate, so the BE fair rate is zero; the
	// BE tenant can still make progress on tokens donated by the idle LC.
	shared := NewSharedState(1, 100_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	lc := newLC(t, 1, 100_000, 100) // reserves all 100K tokens/s
	be := newBE(t, 2)
	s.Register(lc)
	s.Register(be)
	if shared.BEFairRate() != 0 {
		t.Fatalf("BE fair rate = %d, want 0", shared.BEFairRate())
	}

	submitted := 0
	for now := int64(0); now <= 1e9; now += 100 * usec {
		fill(s, be, OpRead, 20) // saturate BE demand; LC stays idle
		submitted += s.Schedule(now, func(*Request) {})
	}
	// The idle LC donates ~90% of its 100K tokens/s; BE must capture a
	// large share of the device.
	if submitted < 60_000 {
		t.Errorf("BE submitted %d via global bucket, want > 60000", submitted)
	}
	if be.Stats().Claimed == 0 {
		t.Error("BE never claimed from the global bucket")
	}
}

func TestBENoAccumulationWhileIdle(t *testing.T) {
	// An idle BE tenant must not hoard tokens and burst later (§3.2.2,
	// DRR-inspired). The global bucket is drained every ResetInterval, so
	// the idle tenant can reclaim at most that window's worth of its own
	// donations.
	shared := NewSharedState(1, 100_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	be := newBE(t, 1)
	s.Register(be)
	for now := int64(0); now <= 1e9; now += 1e6 { // 1 idle second
		s.Schedule(now, func(*Request) {})
		if be.Tokens() != 0 {
			t.Fatalf("idle BE holds %d mt at t=%d", be.Tokens(), now)
		}
	}
	// Now a burst arrives. Instant admission is bounded by the global
	// bucket's reset window (5ms x 100K tokens/s = 500 tokens = 50
	// writes), not the full idle second's worth (10K writes).
	fill(s, be, OpWrite, 1000)
	if n := s.Schedule(1e9, func(*Request) {}); n > 55 {
		t.Errorf("idle BE burst admitted %d requests instantly, want <= ~50", n)
	}
}

func TestBERoundRobinRotates(t *testing.T) {
	// With a tiny global bucket refilled each round, rotation must spread
	// bucket access across BE tenants rather than starving the later one.
	shared := NewSharedState(2, 0) // no fair rate at all
	s := NewScheduler(modelA(), 0, shared)
	be1, be2 := newBE(t, 1), newBE(t, 2)
	s.Register(be1)
	s.Register(be2)
	got := map[*Tenant]int{}
	for now := int64(0); now < 100e6; now += 1e6 {
		fill(s, be1, OpRead, 1)
		fill(s, be2, OpRead, 1)
		shared.Bucket.Add(1 * TokenUnit) // exactly one request's worth
		s.Schedule(now, func(r *Request) { got[r.Tenant]++ })
	}
	if got[be1] == 0 || got[be2] == 0 {
		t.Fatalf("round-robin starved a tenant: %d vs %d", got[be1], got[be2])
	}
	diff := got[be1] - got[be2]
	if diff < -10 || diff > 10 {
		t.Errorf("rotation unfair: %d vs %d", got[be1], got[be2])
	}
}

func TestCrossThreadTokenExchange(t *testing.T) {
	// LC on thread 0 donates spare tokens; BE on thread 1 consumes them.
	// This is the only cross-thread coordination in the design (§4.1).
	shared := NewSharedState(2, 100_000*TokenUnit)
	s0 := NewScheduler(modelA(), 0, shared)
	s1 := NewScheduler(modelA(), 1, shared)
	lc := newLC(t, 1, 100_000, 100)
	be := newBE(t, 2)
	s0.Register(lc)
	s1.Register(be)

	submitted := 0
	for now := int64(0); now <= 1e9; now += 100 * usec {
		fill(s1, be, OpRead, 20)
		s0.Schedule(now, func(*Request) {})
		submitted += s1.Schedule(now, func(*Request) {})
	}
	if submitted < 60_000 {
		t.Errorf("cross-thread BE submitted %d, want > 60000", submitted)
	}
	if shared.Bucket.Resets() == 0 {
		t.Error("global bucket never reset despite both threads marking rounds")
	}
}

func TestScenario1TokenLevel(t *testing.T) {
	// §5.4 Scenario 1 at the scheduler level: A(LC 120K@100%r),
	// B(LC 70K@80%r), C(BE 95%r), D(BE 25%r) on a 420K tokens/s device.
	shared := NewSharedState(1, 420_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	a := newLC(t, 1, 120_000, 100)
	b := newLC(t, 2, 70_000, 80)
	c, d := newBE(t, 3), newBE(t, 4)
	for _, tn := range []*Tenant{a, b, c, d} {
		s.Register(tn)
	}

	rng := newDetRand(99)
	iops := map[*Tenant]int{}
	reads := map[*Tenant]int{}
	interval := 100 * usec
	mix := map[*Tenant]int{a: 100, b: 80, c: 95, d: 25}
	demand := map[*Tenant]int{a: 12, b: 7, c: 40, d: 40} // per round; C/D saturate
	for now := int64(0); now <= 1e9; now += interval {
		for tn, n := range demand {
			for i := 0; i < n; i++ {
				op := OpRead
				if rng.intn(100) >= mix[tn] {
					op = OpWrite
				}
				s.Enqueue(tn, &Request{Op: op, Size: 4096})
			}
		}
		s.Schedule(now, func(r *Request) {
			iops[r.Tenant]++
			if r.Op == OpRead {
				reads[r.Tenant]++
			}
		})
	}

	// LC tenants meet their IOPS SLOs.
	if iops[a] < 118_000 || iops[a] > 123_000 {
		t.Errorf("tenant A IOPS = %d, want ~120000", iops[a])
	}
	if iops[b] < 68_000 || iops[b] > 73_000 {
		t.Errorf("tenant B IOPS = %d, want ~70000", iops[b])
	}
	// BE tenants split the remaining 104K tokens/s fairly: C (cost ~1.45/IO)
	// achieves much higher IOPS than D (cost ~7.75/IO).
	if iops[c] < 30_000 || iops[c] > 42_000 {
		t.Errorf("tenant C IOPS = %d, want ~36000", iops[c])
	}
	if iops[d] < 4_000 || iops[d] > 9_000 {
		t.Errorf("tenant D IOPS = %d, want ~6700", iops[d])
	}
	if iops[c] < 3*iops[d] {
		t.Errorf("C (%d) should far exceed D (%d): writes cost 10x", iops[c], iops[d])
	}
}

func TestScenario2UnusedLCTokensGoToBE(t *testing.T) {
	// §5.4 Scenario 2: tenant B issues only 45K of its reserved 70K IOPS;
	// BE tenants reach higher throughput than in Scenario 1.
	run := func(bDemandPerRound int) (beTotal int) {
		shared := NewSharedState(1, 420_000*TokenUnit)
		s := NewScheduler(modelA(), 0, shared)
		a := newLC(t, 1, 120_000, 100)
		b := newLC(t, 2, 70_000, 80)
		c, d := newBE(t, 3), newBE(t, 4)
		for _, tn := range []*Tenant{a, b, c, d} {
			s.Register(tn)
		}
		rng := newDetRand(7)
		interval := 100 * usec
		for now := int64(0); now <= 1e9; now += interval {
			fill(s, a, OpRead, 12)
			for i := 0; i < bDemandPerRound; i++ {
				op := OpRead
				if rng.intn(100) >= 80 {
					op = OpWrite
				}
				s.Enqueue(b, &Request{Op: op, Size: 4096})
			}
			for i := 0; i < 40; i++ {
				op := OpRead
				if rng.intn(100) >= 95 {
					op = OpWrite
				}
				s.Enqueue(c, &Request{Op: op, Size: 4096})
				op = OpRead
				if rng.intn(100) >= 25 {
					op = OpWrite
				}
				s.Enqueue(d, &Request{Op: op, Size: 4096})
			}
			s.Schedule(now, func(r *Request) {
				if r.Tenant == c || r.Tenant == d {
					beTotal++
				}
			})
		}
		return beTotal
	}
	full := run(7)    // B uses its full 70K reservation
	reduced := run(4) // B issues only ~40K IOPS
	if reduced <= full {
		t.Errorf("BE throughput did not increase when B under-used its SLO: %d vs %d",
			reduced, full)
	}
}

func TestEnqueueReadOnlyProbe(t *testing.T) {
	shared := NewSharedState(1, 1000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	ro := false
	s.ReadOnlyProbe = func() bool { return ro }
	be := newBE(t, 1)
	s.Register(be)

	r1 := &Request{Op: OpRead, Size: 4096}
	s.Enqueue(be, r1)
	if r1.Cost() != 1000 {
		t.Errorf("normal read cost = %d, want 1000", r1.Cost())
	}
	ro = true
	r2 := &Request{Op: OpRead, Size: 4096}
	s.Enqueue(be, r2)
	if r2.Cost() != 500 {
		t.Errorf("read-only read cost = %d, want 500", r2.Cost())
	}
	if be.Demand() != 1500 {
		t.Errorf("demand = %d, want 1500", be.Demand())
	}
	if be.QueueLen() != 2 {
		t.Errorf("queue len = %d", be.QueueLen())
	}
}

func TestScheduleTimeBackwardsPanics(t *testing.T) {
	shared := NewSharedState(1, 1000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	s.Schedule(100, func(*Request) {})
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	s.Schedule(50, func(*Request) {})
}

func TestRegisterUnregister(t *testing.T) {
	shared := NewSharedState(1, 1000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	lc := newLC(t, 1, 1000, 100)
	be := newBE(t, 2)
	s.Register(lc)
	s.Register(be)
	lcs, bes := s.Tenants()
	if len(lcs) != 1 || len(bes) != 1 {
		t.Fatal("tenants not registered")
	}
	s.Unregister(lc)
	if shared.LCReserved() != 0 {
		t.Errorf("LC rate not released: %d", shared.LCReserved())
	}
	s.Unregister(be)
	if shared.BECount() != 0 {
		t.Errorf("BE count not decremented: %d", shared.BECount())
	}
	// Unregistering twice is harmless.
	s.Unregister(lc)
	s.Unregister(be)
	if shared.LCReserved() != 0 || shared.BECount() != 0 {
		t.Error("double unregister corrupted shared state")
	}
}

func TestNewSchedulerInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid model did not panic")
		}
	}()
	NewScheduler(CostModel{}, 0, NewSharedState(1, 0))
}

func TestSchedulerCounters(t *testing.T) {
	shared := NewSharedState(1, 420_000*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	be := newBE(t, 1)
	s.Register(be)
	fill(s, be, OpRead, 5)
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}
	s.Schedule(0, func(*Request) {})
	s.Schedule(1e9, func(*Request) {})
	if s.Rounds() != 2 {
		t.Fatalf("Rounds = %d, want 2", s.Rounds())
	}
	if s.Submitted() != 5 {
		t.Fatalf("Submitted = %d, want 5", s.Submitted())
	}
	if be.Stats().Enqueued != 5 || be.Stats().Submitted != 5 {
		t.Fatalf("tenant stats = %+v", be.Stats())
	}
}

// detRand is a tiny deterministic generator so scheduler tests do not
// depend on math/rand ordering.
type detRand struct{ state uint64 }

func newDetRand(seed uint64) *detRand { return &detRand{state: seed*2862933555777941757 + 3037000493} }

func (d *detRand) intn(n int) int {
	d.state = d.state*6364136223846793005 + 1442695040888963407
	return int((d.state >> 33) % uint64(n))
}
