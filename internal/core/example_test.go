package core_test

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
)

// Example_schedulerRound walks one tenant mix through Algorithm 1: a
// latency-critical tenant with a guaranteed SLO and a best-effort tenant
// that may only spend unallocated tokens.
func Example_schedulerRound() {
	model := core.CostModel{
		ReadCost:         core.TokenUnit,
		ReadOnlyReadCost: core.TokenUnit / 2,
		WriteCost:        10 * core.TokenUnit, // device A: writes cost 10x
	}
	// The device sustains 420K tokens/s at the strictest latency SLO.
	shared := core.NewSharedState(1, 420_000*core.TokenUnit)
	sched := core.NewScheduler(model, 0, shared)

	lc, _ := core.NewTenant(1, "database", core.LatencyCritical, core.SLO{
		IOPS:        100_000,
		ReadPercent: 80,
		LatencyP95:  500_000, // 500us
	})
	be, _ := core.NewTenant(2, "backup", core.BestEffort, core.SLO{})
	sched.Register(lc)
	sched.Register(be)

	// The LC tenant's reservation follows §3.2.2's arithmetic:
	// 0.8*100K*1 + 0.2*100K*10 = 280K tokens/s.
	fmt.Printf("LC reservation: %dK tokens/s\n", lc.Rate()/core.TokenUnit/1000)
	fmt.Printf("unallocated for BE: %dK tokens/s\n",
		shared.UnallocatedRate()/core.TokenUnit/1000)

	// Enqueue work and run scheduling rounds covering one millisecond.
	for i := 0; i < 300; i++ {
		sched.Enqueue(lc, &core.Request{Op: core.OpRead, Size: 4096})
		sched.Enqueue(be, &core.Request{Op: core.OpWrite, Size: 4096})
	}
	submitted := map[*core.Tenant]int{}
	for now := int64(0); now <= 1_000_000; now += 100_000 {
		sched.Schedule(now, func(r *core.Request) { submitted[r.Tenant]++ })
	}
	// Per millisecond: LC gets ~280 tokens (~100 of its 4KB requests at
	// the 80/20 mix enqueued here would cost 2.8 each; pure reads cost 1,
	// so ~280 submit, plus the 50-token burst floor), and the BE tenant's
	// expensive writes are rate limited to ~140 tokens = 14 writes.
	fmt.Printf("LC submitted ~%d00 reads, BE submitted ~%d0 writes\n",
		submitted[lc]/100, submitted[be]/10)
	// Output:
	// LC reservation: 280K tokens/s
	// unallocated for BE: 140K tokens/s
	// LC submitted ~300 reads, BE submitted ~10 writes
}
