package core

import "fmt"

// Class distinguishes latency-critical tenants, which have guaranteed
// tail-latency and throughput allocations, from best-effort tenants, which
// opportunistically use spare bandwidth (§3.2).
type Class uint8

const (
	// LatencyCritical tenants register an SLO and receive a guaranteed
	// token supply.
	LatencyCritical Class = iota
	// BestEffort tenants share the unallocated token rate fairly.
	BestEffort
)

// String returns "LC" or "BE".
func (c Class) String() string {
	if c == BestEffort {
		return "BE"
	}
	return "LC"
}

// SLO is a latency-critical tenant's service-level objective: a tail read
// latency limit at a certain throughput and read/write ratio (§3.2). For
// example {IOPS: 50000, ReadPercent: 80, LatencyP95: 200_000} reads as
// "50K IOPS with 200µs p95 read latency at an 80% read ratio".
type SLO struct {
	// IOPS is the guaranteed request rate, assuming 4KB requests.
	IOPS int
	// ReadPercent is the declared read ratio in [0, 100].
	ReadPercent int
	// LatencyP95 is the 95th-percentile read latency bound in nanoseconds.
	// Zero means "no latency requirement" (only meaningful for BE tenants).
	LatencyP95 int64
}

// Validate reports SLO configuration errors for an LC tenant.
func (s SLO) Validate() error {
	switch {
	case s.IOPS <= 0:
		return fmt.Errorf("core: SLO IOPS must be positive")
	case s.ReadPercent < 0 || s.ReadPercent > 100:
		return fmt.Errorf("core: SLO ReadPercent out of [0,100]")
	case s.LatencyP95 <= 0:
		return fmt.Errorf("core: SLO LatencyP95 must be positive")
	}
	return nil
}

// TenantStats are cumulative per-tenant counters maintained by the
// scheduler.
type TenantStats struct {
	Enqueued        uint64
	Submitted       uint64
	SubmittedTokens Tokens
	// NegLimitHits counts scheduler rounds that ended with the tenant at
	// or below the burst deficit floor (LC only).
	NegLimitHits uint64
	// Donated is the total millitokens given to the global bucket.
	Donated Tokens
	// Claimed is the total millitokens taken from the global bucket (BE).
	Claimed Tokens
}

// Tenant is the accounting and enforcement unit for SLOs (§3.2: "A tenant
// is a logical abstraction for accounting for and enforcing service-level
// objectives"). A tenant definition can be shared by many network
// connections. Tenants are not safe for concurrent use; each tenant is
// owned by exactly one scheduler (thread), as in the paper (§4.1
// "Limitations": one thread per tenant).
type Tenant struct {
	ID    int
	Name  string
	Class Class
	SLO   SLO

	// tokens is the current balance; may go negative down to the burst
	// floor for LC tenants.
	tokens Tokens
	// genRem carries sub-millitoken generation remainders (mt·ns) so that
	// long-run generation rates are exact.
	genRem int64
	// grants holds the last three rounds' token grants; their sum is the
	// POS_LIMIT accumulation cap (§3.2.2).
	grants [3]Tokens
	// rate is the cached generation rate in mt/s (LC only).
	rate Tokens

	queue    reqQueue
	demand   Tokens // total cost of queued requests
	belowNeg bool   // currently at/below NEG_LIMIT (for edge-triggered notify)
	stats    TenantStats
}

// NewTenant creates a tenant. LC tenants must carry a valid SLO.
func NewTenant(id int, name string, class Class, slo SLO) (*Tenant, error) {
	if class == LatencyCritical {
		if err := slo.Validate(); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	return &Tenant{ID: id, Name: name, Class: class, SLO: slo}, nil
}

// Tokens returns the tenant's current token balance in millitokens.
func (t *Tenant) Tokens() Tokens { return t.tokens }

// Demand returns the total cost of the tenant's queued requests.
func (t *Tenant) Demand() Tokens { return t.demand }

// QueueLen returns the number of queued requests.
func (t *Tenant) QueueLen() int { return t.queue.len() }

// Stats returns a copy of the tenant's counters.
func (t *Tenant) Stats() TenantStats { return t.stats }

// Rate returns the tenant's token generation rate in millitokens/second
// (zero until the tenant is registered with a scheduler, and always zero
// for BE tenants, whose rate is a fair share computed each round).
func (t *Tenant) Rate() Tokens { return t.rate }

// pushGrant records a round's token grant for the POS_LIMIT window.
func (t *Tenant) pushGrant(g Tokens) {
	t.grants[0], t.grants[1], t.grants[2] = t.grants[1], t.grants[2], g
}

// posLimit is the accumulation cap: the tokens granted over the last three
// scheduling rounds (§3.2.2: "POS_LIMIT is empirically set to the number
// of tokens the LC tenant received in the last three scheduling rounds").
func (t *Tenant) posLimit() Tokens {
	return t.grants[0] + t.grants[1] + t.grants[2]
}

// generate accrues dt nanoseconds of token generation at rate mt/s.
func (t *Tenant) generate(rate Tokens, dt int64) Tokens {
	if rate <= 0 || dt <= 0 {
		return 0
	}
	total := rate*dt + t.genRem
	grant := total / 1e9
	t.genRem = total % 1e9
	t.tokens += grant
	return grant
}
