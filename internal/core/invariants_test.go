package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Randomized invariant checks over Algorithm 1: whatever the tenant mix,
// offered load and round cadence, the scheduler must maintain its
// token-accounting invariants.

type invariantWorld struct {
	s       *Scheduler
	shared  *SharedState
	lc, be  []*Tenant
	rng     *rand.Rand
	elapsed int64
}

func buildWorld(seed int64, threads int) *invariantWorld {
	rng := rand.New(rand.NewSource(seed))
	shared := NewSharedState(threads, Tokens(100_000+rng.Intn(500_000))*TokenUnit)
	s := NewScheduler(modelA(), 0, shared)
	w := &invariantWorld{s: s, shared: shared, rng: rng}
	nLC := rng.Intn(4)
	nBE := 1 + rng.Intn(4)
	for i := 0; i < nLC; i++ {
		t, err := NewTenant(i, "lc", LatencyCritical, SLO{
			IOPS:        1000 + rng.Intn(100_000),
			ReadPercent: rng.Intn(101),
			LatencyP95:  1_000_000,
		})
		if err != nil {
			panic(err)
		}
		s.Register(t)
		w.lc = append(w.lc, t)
	}
	for i := 0; i < nBE; i++ {
		t, err := NewTenant(100+i, "be", BestEffort, SLO{})
		if err != nil {
			panic(err)
		}
		s.Register(t)
		w.be = append(w.be, t)
	}
	return w
}

// step runs one random round: random enqueues, random time advance.
func (w *invariantWorld) step(submit func(*Request)) {
	for _, t := range append(append([]*Tenant{}, w.lc...), w.be...) {
		n := w.rng.Intn(20)
		for i := 0; i < n; i++ {
			op := OpRead
			if w.rng.Intn(100) < 30 {
				op = OpWrite
			}
			size := []int{512, 4096, 32 * 1024}[w.rng.Intn(3)]
			w.s.Enqueue(t, &Request{Op: op, Size: size})
		}
	}
	w.elapsed += int64(w.rng.Intn(200_000)) // up to 200us per round
	w.s.Schedule(w.elapsed, submit)
}

func TestInvariantBENeverNegative(t *testing.T) {
	f := func(seed int64) bool {
		w := buildWorld(seed, 1)
		for i := 0; i < 300; i++ {
			w.step(func(*Request) {})
			for _, tn := range w.be {
				if tn.Tokens() < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantLCRespectsNegLimit(t *testing.T) {
	// LC balances may dip below NEG_LIMIT only by the cost of the single
	// request that crossed the floor (a 32KB write: 80 tokens).
	floorSlack := 80 * TokenUnit
	f := func(seed int64) bool {
		w := buildWorld(seed, 1)
		for i := 0; i < 300; i++ {
			w.step(func(*Request) {})
			for _, tn := range w.lc {
				if tn.Tokens() < DefaultNegLimit-floorSlack {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantDemandMatchesQueue(t *testing.T) {
	// A tenant's demand counter equals the sum of its queued request costs.
	f := func(seed int64) bool {
		w := buildWorld(seed, 1)
		for i := 0; i < 200; i++ {
			w.step(func(*Request) {})
			for _, tn := range append(append([]*Tenant{}, w.lc...), w.be...) {
				var sum Tokens
				for j := 0; j < tn.queue.n; j++ {
					sum += tn.queue.buf[(tn.queue.head+j)%len(tn.queue.buf)].cost
				}
				if sum != tn.Demand() {
					return false
				}
				if (tn.QueueLen() == 0) != (tn.Demand() == 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantTokenConservation(t *testing.T) {
	// Over any run: tokens spent on submissions never exceed tokens
	// generated (grants) plus bucket claims, minus donations, plus the
	// bounded LC deficit allowance.
	f := func(seed int64) bool {
		w := buildWorld(seed, 1)
		submitted := Tokens(0)
		for i := 0; i < 300; i++ {
			w.step(func(r *Request) { submitted += r.Cost() })
		}
		var balance, donated, claimed Tokens
		all := append(append([]*Tenant{}, w.lc...), w.be...)
		for _, tn := range all {
			balance += tn.Tokens()
			donated += tn.Stats().Donated
			claimed += tn.Stats().Claimed
		}
		// generated = submitted + balance + donated - claimed. The maximum
		// legitimate generation is elapsed * (sum of LC rates + BE fair
		// rate * nBE) <= elapsed * tokenRate', where tokenRate' accounts
		// for LC rates possibly exceeding the device rate (oversubscribed
		// worlds are admissible here since we bypass admission control).
		var lcRates Tokens
		for _, tn := range w.lc {
			lcRates += tn.Rate()
		}
		maxRate := lcRates + w.shared.UnallocatedRate()
		maxGenerated := (maxRate/1000)*(w.elapsed/1000) + 100*TokenUnit // rounding slack
		generated := submitted + balance + donated - claimed
		return generated <= maxGenerated+Tokens(len(w.lc)+len(w.be))*TokenUnit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantFIFOWithinTenant(t *testing.T) {
	// Requests of one tenant are submitted in arrival order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shared := NewSharedState(1, 200_000*TokenUnit)
		s := NewScheduler(modelA(), 0, shared)
		be, _ := NewTenant(1, "be", BestEffort, SLO{})
		s.Register(be)
		next := uint64(0)
		var lastSubmitted uint64
		first := true
		ok := true
		elapsed := int64(0)
		for i := 0; i < 200; i++ {
			for j := 0; j < rng.Intn(10); j++ {
				next++
				op := OpRead
				if rng.Intn(4) == 0 {
					op = OpWrite
				}
				s.Enqueue(be, &Request{Op: op, Size: 4096, Cookie: next})
			}
			elapsed += int64(rng.Intn(300_000))
			s.Schedule(elapsed, func(r *Request) {
				if !first && r.Cookie <= lastSubmitted {
					ok = false
				}
				first = false
				lastSubmitted = r.Cookie
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
