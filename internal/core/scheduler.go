package core

import "fmt"

// Scheduler default parameters (§3.2.2, set empirically in the paper).
const (
	// DefaultNegLimit is the LC burst deficit floor: once a tenant's
	// balance falls to NEG_LIMIT it is rate limited and the control plane
	// is notified ("empirically set to −50 tokens to limit the number of
	// expensive write requests in a burst").
	DefaultNegLimit Tokens = -50 * TokenUnit
	// DefaultDonateFraction is the share of accumulated tokens an LC
	// tenant donates to the global bucket upon reaching POS_LIMIT
	// ("empirically 90%").
	DefaultDonateFraction = 0.9
)

// SubmitFunc receives requests the scheduler admits to the device.
type SubmitFunc func(*Request)

// Scheduler is one dataplane thread's QoS scheduler. It owns a disjoint
// set of tenants (tenants never span threads) and coordinates with sibling
// threads only through SharedState's atomic global token bucket, exactly
// as in §4.1 "Multi-threading operation".
//
// A Scheduler is not safe for concurrent use; each dataplane thread owns
// one.
type Scheduler struct {
	Model CostModel
	// Thread is this scheduler's 0-based thread index for global bucket
	// round marking.
	Thread int
	// Shared is the per-device state shared across threads.
	Shared *SharedState

	// NegLimit and DonateFraction default to the paper's empirical values
	// when zero.
	NegLimit       Tokens
	DonateFraction float64

	// OnNegLimit, when non-nil, is invoked (edge-triggered) when an LC
	// tenant hits the deficit floor — the §3.2.2 control-plane
	// notification for SLO renegotiation.
	OnNegLimit func(*Tenant)

	// ReadOnlyProbe reports whether the device currently serves a
	// read-only load (selects C(read, r=100%)). Nil means never.
	ReadOnlyProbe func() bool

	lc []*Tenant
	be []*Tenant
	// beNext rotates BE service order across rounds for fair access to
	// the global bucket (§3.2.2).
	beNext   int
	prevTime int64
	started  bool

	rounds    uint64
	submitted uint64
}

// NewScheduler creates a scheduler for one dataplane thread.
func NewScheduler(model CostModel, thread int, shared *SharedState) *Scheduler {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	return &Scheduler{
		Model:          model,
		Thread:         thread,
		Shared:         shared,
		NegLimit:       DefaultNegLimit,
		DonateFraction: DefaultDonateFraction,
	}
}

// Register adds a tenant to this scheduler and accounts its rate in the
// shared state. LC rates derive from the tenant's SLO via the cost model.
func (s *Scheduler) Register(t *Tenant) {
	switch t.Class {
	case LatencyCritical:
		t.rate = s.Model.RateForSLO(t.SLO.IOPS, t.SLO.ReadPercent)
		s.Shared.ReserveLC(t.rate)
		s.lc = append(s.lc, t)
	case BestEffort:
		s.Shared.AddBE()
		s.be = append(s.be, t)
	}
}

// Unregister removes a tenant. Queued requests are dropped; callers drain
// tenants before unregistering in normal operation.
func (s *Scheduler) Unregister(t *Tenant) {
	remove := func(list []*Tenant) []*Tenant {
		for i, x := range list {
			if x == t {
				return append(list[:i], list[i+1:]...)
			}
		}
		return list
	}
	switch t.Class {
	case LatencyCritical:
		n := len(s.lc)
		s.lc = remove(s.lc)
		if len(s.lc) != n {
			s.Shared.ReleaseLC(t.rate)
		}
	case BestEffort:
		n := len(s.be)
		s.be = remove(s.be)
		if len(s.be) != n {
			s.Shared.RemoveBE()
		}
	}
}

// Tenants returns this scheduler's LC and BE tenants.
func (s *Scheduler) Tenants() (lc, be []*Tenant) { return s.lc, s.be }

// Rounds returns the number of scheduling rounds executed.
func (s *Scheduler) Rounds() uint64 { return s.rounds }

// Submitted returns the number of requests admitted to the device.
func (s *Scheduler) Submitted() uint64 { return s.submitted }

// Enqueue places a request on its tenant's software queue. The request's
// token cost is fixed here from the current device mode. The tenant must
// be registered with this scheduler.
func (s *Scheduler) Enqueue(t *Tenant, r *Request) {
	r.Tenant = t
	if r.CostOverride > 0 {
		r.cost = r.CostOverride
	} else {
		readOnly := s.ReadOnlyProbe != nil && s.ReadOnlyProbe()
		r.cost = s.Model.Cost(r.Op, r.Size, readOnly)
	}
	t.queue.push(r)
	t.demand += r.cost
	t.stats.Enqueued++
}

// Pending returns the total number of queued requests across tenants.
func (s *Scheduler) Pending() int {
	n := 0
	for _, t := range s.lc {
		n += t.queue.len()
	}
	for _, t := range s.be {
		n += t.queue.len()
	}
	return n
}

// Schedule runs one round of Algorithm 1 at the given time (nanoseconds),
// submitting every admissible request via submit. It returns the number of
// requests submitted.
func (s *Scheduler) Schedule(now int64, submit SubmitFunc) int {
	var dt int64
	if s.started {
		dt = now - s.prevTime
		if dt < 0 {
			panic(fmt.Sprintf("core: scheduling time went backwards: %d -> %d", s.prevTime, now))
		}
	}
	s.prevTime = now
	s.started = true
	s.rounds++

	n := 0
	n += s.scheduleLC(dt, submit)
	n += s.scheduleBE(dt, submit)
	s.Shared.Bucket.MarkRound(s.Thread, now)
	s.submitted += uint64(n)
	return n
}

// scheduleLC implements Algorithm 1 lines 4-12.
func (s *Scheduler) scheduleLC(dt int64, submit SubmitFunc) int {
	n := 0
	for _, t := range s.lc {
		grant := t.generate(t.rate, dt)
		t.pushGrant(grant)

		// LC tenants may burst into deficit down to NEG_LIMIT: submit
		// unconditionally while above the floor.
		for t.demand > 0 && t.tokens > s.NegLimit {
			r := t.queue.pop()
			t.demand -= r.cost
			t.tokens -= r.cost
			t.stats.Submitted++
			t.stats.SubmittedTokens += r.cost
			submit(r)
			n++
		}

		// "We also notify the control plane when this limit is reached to
		// detect tenants with incorrect SLOs that need renegotiation."
		// Edge-triggered: one notification per overload episode.
		if t.tokens <= s.NegLimit {
			t.stats.NegLimitHits++
			if !t.belowNeg {
				t.belowNeg = true
				if s.OnNegLimit != nil {
					s.OnNegLimit(t)
				}
			}
		} else {
			t.belowNeg = false
		}

		// Accumulation cap: donate most of the excess to the global
		// bucket for BE use.
		if limit := t.posLimit(); t.tokens > limit {
			donate := Tokens(float64(t.tokens) * s.donateFraction())
			if donate > 0 {
				s.Shared.Bucket.Add(donate)
				t.tokens -= donate
				t.stats.Donated += donate
			}
		}
	}
	return n
}

// scheduleBE implements Algorithm 1 lines 13-21.
func (s *Scheduler) scheduleBE(dt int64, submit SubmitFunc) int {
	if len(s.be) == 0 {
		return 0
	}
	fairRate := s.Shared.BEFairRate()
	n := 0
	for i := 0; i < len(s.be); i++ {
		t := s.be[(s.beNext+i)%len(s.be)]
		t.pushGrant(t.generate(fairRate, dt))

		// Claim the shortfall from the global bucket.
		if d := t.demand - t.tokens; d > 0 {
			claimed := s.Shared.Bucket.TryTake(d)
			t.tokens += claimed
			t.stats.Claimed += claimed
		}

		// Conditional submit: only while tokens cover the next request.
		for {
			r := t.queue.peek()
			if r == nil || t.tokens < r.cost {
				break
			}
			t.queue.pop()
			t.demand -= r.cost
			t.tokens -= r.cost
			t.stats.Submitted++
			t.stats.SubmittedTokens += r.cost
			submit(r)
			n++
		}

		// No accumulation while idle (DRR-inspired): an empty queue
		// donates the balance back to the global bucket.
		if t.tokens > 0 && t.demand == 0 {
			s.Shared.Bucket.Add(t.tokens)
			t.stats.Donated += t.tokens
			t.tokens = 0
		}
	}
	s.beNext = (s.beNext + 1) % len(s.be)
	return n
}

func (s *Scheduler) donateFraction() float64 {
	if s.DonateFraction <= 0 || s.DonateFraction > 1 {
		return DefaultDonateFraction
	}
	return s.DonateFraction
}
