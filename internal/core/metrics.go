package core

import "github.com/reflex-go/reflex/internal/obs"

// RegisterSchedulerMetrics exposes one scheduler's counters and queue
// state on a telemetry registry. Values are read-side functions; the
// scheduler hot path is untouched. Because a Scheduler is single-writer
// (owned by one thread), registries carrying these metrics must be scraped
// from that thread's context — the simulation engine, or the owning
// scheduler goroutine in the real server.
func RegisterSchedulerMetrics(reg *obs.Registry, s *Scheduler, labels ...obs.Label) {
	reg.CounterFunc("sched_rounds_total", "QoS scheduling rounds executed (Algorithm 1)",
		func() float64 { return float64(s.rounds) }, labels...)
	reg.CounterFunc("sched_submitted_total", "requests admitted to the device",
		func() float64 { return float64(s.submitted) }, labels...)
	reg.GaugeFunc("sched_queue_depth", "requests queued in per-tenant software queues",
		func() float64 { return float64(s.Pending()) }, labels...)
	reg.GaugeFunc("sched_tenants", "registered tenants (LC + BE)",
		func() float64 { lc, be := s.Tenants(); return float64(len(lc) + len(be)) }, labels...)
	reg.GaugeFunc("sched_demand_tokens", "total millitoken cost of queued requests",
		func() float64 {
			var d Tokens
			for _, t := range s.lc {
				d += t.demand
			}
			for _, t := range s.be {
				d += t.demand
			}
			return float64(d)
		}, labels...)
}

// RegisterSharedMetrics exposes the cross-thread shared scheduler state:
// the global token bucket and the rate allocation split (§3.2.2, §4.1).
// These read atomics only, so they are safe to scrape from any goroutine.
func RegisterSharedMetrics(reg *obs.Registry, sh *SharedState, labels ...obs.Label) {
	reg.GaugeFunc("bucket_tokens", "spare millitokens in the global bucket",
		func() float64 { return float64(sh.Bucket.Tokens()) }, labels...)
	reg.CounterFunc("bucket_resets_total", "periodic global bucket drains",
		func() float64 { return float64(sh.Bucket.Resets()) }, labels...)
	reg.GaugeFunc("token_rate", "total generation rate (mt/s) at the strictest SLO",
		func() float64 { return float64(sh.TokenRate()) }, labels...)
	reg.GaugeFunc("lc_reserved_rate", "rate reserved by LC tenants (mt/s)",
		func() float64 { return float64(sh.LCReserved()) }, labels...)
	reg.GaugeFunc("be_tenants", "registered best-effort tenants",
		func() float64 { return float64(sh.BECount()) }, labels...)
}

// RegisterTenantMetrics exposes one tenant's scheduler counters — the SLO
// compliance inputs a sampler tracks per tenant. Single-writer like the
// owning scheduler; scrape from its thread's context.
func RegisterTenantMetrics(reg *obs.Registry, t *Tenant, labels ...obs.Label) {
	reg.CounterFunc("tenant_enqueued_total", "requests enqueued for the tenant",
		func() float64 { return float64(t.stats.Enqueued) }, labels...)
	reg.CounterFunc("tenant_submitted_total", "requests admitted for the tenant",
		func() float64 { return float64(t.stats.Submitted) }, labels...)
	reg.CounterFunc("tenant_submitted_tokens_total", "millitokens admitted for the tenant",
		func() float64 { return float64(t.stats.SubmittedTokens) }, labels...)
	reg.CounterFunc("tenant_neg_limit_hits_total", "rounds ended at/below the burst deficit floor",
		func() float64 { return float64(t.stats.NegLimitHits) }, labels...)
	reg.CounterFunc("tenant_donated_tokens_total", "millitokens donated to the global bucket",
		func() float64 { return float64(t.stats.Donated) }, labels...)
	reg.CounterFunc("tenant_claimed_tokens_total", "millitokens claimed from the global bucket",
		func() float64 { return float64(t.stats.Claimed) }, labels...)
	reg.GaugeFunc("tenant_tokens", "current token balance (millitokens)",
		func() float64 { return float64(t.tokens) }, labels...)
	reg.GaugeFunc("tenant_queue_depth", "requests in the tenant's software queue",
		func() float64 { return float64(t.queue.len()) }, labels...)
}
