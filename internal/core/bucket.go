package core

import (
	"fmt"
	"sync/atomic"
)

// DefaultBucketResetInterval is the minimum time between global bucket
// resets. The paper resets the bucket "periodically" to stop best-effort
// tenants from hoarding donated tokens into uncontrolled bursts (§3.2.2);
// the period must be much longer than a scheduling round (0.5-100us) or
// donations would be destroyed before any tenant could claim them.
const DefaultBucketResetInterval int64 = 5_000_000 // 5ms

// GlobalBucket is the cross-thread pool of spare tokens: LC tenants with
// excess accumulation donate into it and BE tenants claim from it
// (§3.2.2). Threads use atomic read-modify-write operations so that QoS
// scheduling stays decoupled across threads; the bucket is drained once
// all threads have completed at least one scheduling round since the
// previous reset AND the reset interval has elapsed, with the last thread
// performing the reset (§4.1).
type GlobalBucket struct {
	tokens atomic.Int64
	// roundMask tracks which threads completed a round since the last
	// reset (bit per thread).
	roundMask atomic.Uint64
	allMask   uint64
	threads   int
	resets    atomic.Uint64

	// ResetInterval is the minimum nanoseconds between drains; 0 drains
	// on every completed mark cycle.
	ResetInterval int64
	lastReset     atomic.Int64
}

// NewGlobalBucket creates a bucket shared by the given number of scheduler
// threads (at most 64, far above the paper's 12-core deployment).
func NewGlobalBucket(threads int) *GlobalBucket {
	if threads <= 0 || threads > 64 {
		panic(fmt.Sprintf("core: GlobalBucket supports 1..64 threads, got %d", threads))
	}
	g := &GlobalBucket{threads: threads, ResetInterval: DefaultBucketResetInterval}
	if threads == 64 {
		g.allMask = ^uint64(0)
	} else {
		g.allMask = (1 << uint(threads)) - 1
	}
	return g
}

// Tokens returns the current bucket balance in millitokens.
func (g *GlobalBucket) Tokens() Tokens { return g.tokens.Load() }

// Resets returns how many times the bucket has been reset.
func (g *GlobalBucket) Resets() uint64 { return g.resets.Load() }

// Add donates n millitokens to the bucket. Non-positive n is a no-op.
func (g *GlobalBucket) Add(n Tokens) {
	if n <= 0 {
		return
	}
	g.tokens.Add(n)
}

// TryTake removes up to n millitokens and returns the amount taken.
func (g *GlobalBucket) TryTake(n Tokens) Tokens {
	if n <= 0 {
		return 0
	}
	for {
		cur := g.tokens.Load()
		if cur <= 0 {
			return 0
		}
		take := n
		if take > cur {
			take = cur
		}
		if g.tokens.CompareAndSwap(cur, cur-take) {
			return take
		}
	}
}

// MarkRound records that thread completed a scheduling round at time now
// (nanoseconds). When every thread has marked a round since the last drain
// and ResetInterval has elapsed, the bucket is drained to zero (the
// periodic reset preventing uncontrolled BE bursts, §3.2.2). The calling
// thread index is 0-based.
func (g *GlobalBucket) MarkRound(thread int, now int64) {
	if thread < 0 || thread >= g.threads {
		panic(fmt.Sprintf("core: MarkRound thread %d out of range [0,%d)", thread, g.threads))
	}
	bit := uint64(1) << uint(thread)
	for {
		old := g.roundMask.Load()
		merged := old | bit
		if merged == g.allMask {
			if now-g.lastReset.Load() < g.ResetInterval {
				// Too soon: leave the mask complete; a later mark drains.
				if old == merged || g.roundMask.CompareAndSwap(old, merged) {
					return
				}
				continue
			}
			// This thread completes the set: reset mask and drain bucket.
			if g.roundMask.CompareAndSwap(old, 0) {
				g.lastReset.Store(now)
				g.tokens.Store(0)
				g.resets.Add(1)
				return
			}
			continue
		}
		if g.roundMask.CompareAndSwap(old, merged) {
			return
		}
	}
}

// SharedState is the scheduler configuration shared by all threads of one
// ReFlex server (one instance per NVMe device, §3.2.2). The control plane
// updates rates as tenants register and unregister; scheduler threads read
// them each round. All fields are atomics so updates never block the
// dataplane.
type SharedState struct {
	// Bucket is the global spare-token pool.
	Bucket *GlobalBucket

	// tokenRate is the total generation rate (mt/s): the maximum weighted
	// IOPS the device supports at the strictest LC latency SLO.
	tokenRate atomic.Int64
	// lcReserved is the sum of LC tenant rates (mt/s).
	lcReserved atomic.Int64
	// beCount is the number of registered BE tenants across all threads.
	beCount atomic.Int64
}

// NewSharedState creates shared scheduler state for the given thread count
// and total token rate (millitokens/second).
func NewSharedState(threads int, tokenRate Tokens) *SharedState {
	s := &SharedState{Bucket: NewGlobalBucket(threads)}
	s.tokenRate.Store(tokenRate)
	return s
}

// TokenRate returns the total token generation rate in mt/s.
func (s *SharedState) TokenRate() Tokens { return s.tokenRate.Load() }

// SetTokenRate updates the total token generation rate (control plane:
// strictest-SLO recalculation, §4.3).
func (s *SharedState) SetTokenRate(r Tokens) { s.tokenRate.Store(r) }

// LCReserved returns the total rate reserved by LC tenants in mt/s.
func (s *SharedState) LCReserved() Tokens { return s.lcReserved.Load() }

// BECount returns the number of registered best-effort tenants.
func (s *SharedState) BECount() int64 { return s.beCount.Load() }

// ReserveLC accounts a newly registered LC tenant's rate.
func (s *SharedState) ReserveLC(rate Tokens) { s.lcReserved.Add(rate) }

// ReleaseLC returns an unregistered LC tenant's rate.
func (s *SharedState) ReleaseLC(rate Tokens) { s.lcReserved.Add(-rate) }

// AddBE accounts a newly registered BE tenant.
func (s *SharedState) AddBE() { s.beCount.Add(1) }

// RemoveBE accounts an unregistered BE tenant.
func (s *SharedState) RemoveBE() { s.beCount.Add(-1) }

// UnallocatedRate returns the token rate not reserved by LC tenants
// (mt/s), floored at zero. This is the pool BE tenants share fairly.
func (s *SharedState) UnallocatedRate() Tokens {
	u := s.tokenRate.Load() - s.lcReserved.Load()
	if u < 0 {
		return 0
	}
	return u
}

// BEFairRate returns one BE tenant's fair share of the unallocated rate
// (mt/s): 1/Nth of the unallocated throughput (§3.2.2).
func (s *SharedState) BEFairRate() Tokens {
	n := s.beCount.Load()
	if n <= 0 {
		return 0
	}
	return s.UnallocatedRate() / n
}
