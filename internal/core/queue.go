package core

// Request is one tenant I/O held in a per-tenant software queue until the
// QoS scheduler admits it to the device (§3.2.2: "Each ReFlex thread
// enqueues Flash requests in per-tenant, software queues").
type Request struct {
	// Tenant owning the request; set by Scheduler.Enqueue.
	Tenant *Tenant
	Op     OpType
	// Block is the logical block address in 4KB units.
	Block uint64
	// Size is the transfer size in bytes.
	Size int
	// Cookie is an opaque caller value carried through scheduling
	// (Table 1: lets server code retrieve request context on completion).
	Cookie uint64
	// Context optionally carries the embedding server's own request state
	// through the scheduler, the pointer analogue of Cookie.
	Context any
	// Arrival is the enqueue timestamp in nanoseconds, used by callers to
	// account queueing delay into end-to-end latency.
	Arrival int64

	// CostOverride, when positive, replaces the cost-model charge fixed at
	// enqueue time. Servers use it for requests that will not reach the
	// device — a DRAM read-cache hit is charged the cache-service cost
	// (CostModel.CacheServeCost) instead of a device read, so hits free
	// device tokens for everyone else while misses keep full QoS pricing.
	CostOverride Tokens

	// cost is the millitoken cost charged for the request, fixed at
	// enqueue time from the then-current device mode.
	cost Tokens
}

// Cost returns the millitoken cost charged for this request.
func (r *Request) Cost() Tokens { return r.cost }

// reqQueue is an allocation-friendly FIFO of requests (ring buffer).
type reqQueue struct {
	buf  []*Request
	head int
	n    int
}

func (q *reqQueue) len() int { return q.n }

func (q *reqQueue) push(r *Request) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = r
	q.n++
}

func (q *reqQueue) grow() {
	next := make([]*Request, max(8, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}

// peek returns the oldest request without removing it, or nil.
func (q *reqQueue) peek() *Request {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// pop removes and returns the oldest request, or nil.
func (q *reqQueue) pop() *Request {
	if q.n == 0 {
		return nil
	}
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
