package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReqQueueFIFO(t *testing.T) {
	var q reqQueue
	if q.pop() != nil || q.peek() != nil || q.len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
	rs := make([]*Request, 20)
	for i := range rs {
		rs[i] = &Request{Cookie: uint64(i)}
		q.push(rs[i])
	}
	if q.len() != 20 {
		t.Fatalf("len = %d, want 20", q.len())
	}
	if q.peek() != rs[0] {
		t.Fatal("peek != first pushed")
	}
	for i := range rs {
		if got := q.pop(); got != rs[i] {
			t.Fatalf("pop %d returned cookie %d", i, got.Cookie)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on drained queue != nil")
	}
}

func TestReqQueueWraparound(t *testing.T) {
	var q reqQueue
	// Interleave pushes and pops to force the ring to wrap.
	next := uint64(0)
	want := uint64(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 5; i++ {
			q.push(&Request{Cookie: next})
			next++
		}
		for i := 0; i < 3; i++ {
			r := q.pop()
			if r.Cookie != want {
				t.Fatalf("round %d: popped %d, want %d", round, r.Cookie, want)
			}
			want++
		}
	}
	for q.len() > 0 {
		r := q.pop()
		if r.Cookie != want {
			t.Fatalf("drain: popped %d, want %d", r.Cookie, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d items, pushed %d", want, next)
	}
}

// Property: reqQueue behaves exactly like a slice-based FIFO under a random
// sequence of operations.
func TestReqQueueMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q reqQueue
		var ref []*Request
		for op := 0; op < 500; op++ {
			if rng.Intn(2) == 0 {
				r := &Request{Cookie: uint64(op)}
				q.push(r)
				ref = append(ref, r)
			} else {
				got := q.pop()
				if len(ref) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := ref[0]
					ref = ref[1:]
					if got != want {
						return false
					}
				}
			}
			if q.len() != len(ref) {
				return false
			}
			if len(ref) > 0 && q.peek() != ref[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
