// Package faults is a deterministic, seedable fault-injection subsystem
// shared by both halves of the repo: the wall-clock TCP/UDP path
// (internal/server, internal/client) and the virtual-time simulators
// (internal/netsim, internal/flashsim).
//
// One Injector holds every fault probability and a single seeded PRNG, so
// a chaos run is reproducible from its seed alone. Consumers pull
// decisions through small, nil-safe methods:
//
//   - net.Conn wrappers (WrapConn, WrapListener) inject drops (half-open
//     blackholes), stalls, partial reads/writes, resets and jitter on the
//     real socket path;
//   - netsim consults MessageFate for message loss, duplication and extra
//     delay;
//   - flashsim and the real server's device path consult DeviceError and
//     DeviceStall for per-request I/O error and timeout pulses.
//
// Every injected fault is counted (total and per kind) and optionally
// reported through an observer callback, which the server wires to the
// obs registry as the faults_injected counter. A nil *Injector is valid
// and injects nothing, so call sites need no guards.
package faults

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reflex-go/reflex/internal/sim"
)

// Fault kinds reported to the observer and counted per kind.
const (
	KindDrop        = "drop"         // connection blackholed (half-open peer)
	KindStall       = "stall"        // connection I/O stalled
	KindPartial     = "partial"      // partial read/write
	KindReset       = "reset"        // abrupt connection close
	KindJitter      = "jitter"       // per-op latency jitter
	KindMsgLoss     = "msg-loss"     // simulated message dropped
	KindMsgDup      = "msg-dup"      // simulated message duplicated
	KindMsgDelay    = "msg-delay"    // simulated message delayed
	KindDeviceErr   = "device-err"   // per-request device I/O error
	KindDeviceStall = "device-stall" // per-request device timeout pulse
	KindCorrupt     = "corrupt"      // payload byte flipped in flight
)

// Config holds every fault probability and bound. Zero values inject
// nothing; probabilities are per decision point (per Read/Write call, per
// message, per device request).
type Config struct {
	// Seed makes the run reproducible. Two injectors with the same seed
	// and the same decision sequence make the same choices.
	Seed int64

	// Connection-level faults (wall-clock net.Conn wrappers).

	// DropProb blackholes the connection: subsequent reads hang (until
	// the reader's deadline) and writes vanish — a half-open peer.
	DropProb float64
	// StallProb stalls one Read/Write for up to StallDur.
	StallProb float64
	StallDur  time.Duration
	// PartialProb truncates one Read (short read, legal for io.Reader) or
	// one Write (short write, surfaces as bufio flush errors).
	PartialProb float64
	// ResetProb abruptly closes the connection mid-operation.
	ResetProb float64
	// JitterMax adds a uniform [0, JitterMax) delay to every Read/Write.
	JitterMax time.Duration
	// CorruptProb flips one payload byte per affected message — in the
	// wrapped conn's Write (beyond the fixed header, so framing survives
	// and the corruption lands in data covered by FlagChecksum), and at
	// the server's CorruptPayload call sites. This is the fault class
	// end-to-end checksums exist to catch.
	CorruptProb float64

	// Device faults (flashsim and the real server's backend path).

	// DeviceErrProb fails one device request with an I/O error.
	DeviceErrProb float64
	// DeviceStallProb delays one device request by up to DeviceStallDur —
	// the "timeout pulse" a GC-stalled or resetting device produces.
	DeviceStallProb float64
	DeviceStallDur  time.Duration

	// Message faults (netsim, virtual time).

	// MsgLossProb drops one simulated message.
	MsgLossProb float64
	// MsgDupProb duplicates one simulated message.
	MsgDupProb float64
	// MsgDelayProb delays one simulated message by up to MsgDelayMax.
	MsgDelayProb float64
	MsgDelayMax  sim.Time
}

// Chaos returns a soak-test profile with every fault class enabled at
// rates high enough to exercise all error paths within seconds but low
// enough that most traffic still completes.
func Chaos(seed int64) Config {
	return Config{
		Seed:            seed,
		DropProb:        0.0002,
		StallProb:       0.002,
		StallDur:        50 * time.Millisecond,
		PartialProb:     0.002,
		ResetProb:       0.0005,
		JitterMax:       200 * time.Microsecond,
		DeviceErrProb:   0.005,
		DeviceStallProb: 0.002,
		DeviceStallDur:  5 * time.Millisecond,
		MsgLossProb:     0.002,
		MsgDupProb:      0.002,
		MsgDelayProb:    0.01,
		MsgDelayMax:     2 * sim.Millisecond,
	}
}

// Injector makes seeded fault decisions and counts what it injects. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// injector injects nothing).
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	injected atomic.Uint64
	kinds    sync.Map // kind -> *atomic.Uint64

	observer atomic.Value // func(kind string)
}

// New creates an injector from cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the injector's configuration (zero Config when nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// SetObserver registers a callback invoked once per injected fault with
// the fault kind. Used to bridge into a metrics registry.
func (in *Injector) SetObserver(fn func(kind string)) {
	if in == nil {
		return
	}
	in.observer.Store(fn)
}

// Injected returns the total number of faults injected so far.
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// Count returns how many faults of one kind were injected.
func (in *Injector) Count(kind string) uint64 {
	if in == nil {
		return 0
	}
	v, ok := in.kinds.Load(kind)
	if !ok {
		return 0
	}
	return v.(*atomic.Uint64).Load()
}

// note records one injected fault.
func (in *Injector) note(kind string) {
	in.injected.Add(1)
	v, ok := in.kinds.Load(kind)
	if !ok {
		v, _ = in.kinds.LoadOrStore(kind, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(1)
	if fn, ok := in.observer.Load().(func(string)); ok && fn != nil {
		fn(kind)
	}
}

// hit draws one Bernoulli decision from the seeded PRNG.
func (in *Injector) hit(p float64) bool {
	if in == nil || p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}

// dur draws a uniform duration in [max/2, max) — long enough to matter,
// bounded so soaks terminate.
func (in *Injector) dur(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	in.mu.Lock()
	v := in.rng.Int63n(int64(max)/2 + 1)
	in.mu.Unlock()
	return max/2 + time.Duration(v)
}

// DeviceError reports whether this device request should fail.
func (in *Injector) DeviceError() bool {
	if in == nil || !in.hit(in.cfg.DeviceErrProb) {
		return false
	}
	in.note(KindDeviceErr)
	return true
}

// DeviceStall returns the wall-clock timeout pulse to add to this device
// request (0 = none).
func (in *Injector) DeviceStall() time.Duration {
	if in == nil || !in.hit(in.cfg.DeviceStallProb) {
		return 0
	}
	in.note(KindDeviceStall)
	return in.dur(in.cfg.DeviceStallDur)
}

// DeviceStallSim is DeviceStall in virtual time for the simulators.
func (in *Injector) DeviceStallSim() sim.Time {
	return sim.Time(in.DeviceStall())
}

// CorruptPayload flips one random byte of p with probability CorruptProb
// and reports whether it did. Nil-safe; a nil or empty p is never touched.
// Callers apply it to payload bytes *after* any checksum trailer has been
// computed, so the flip is exactly what the verifier must catch.
func (in *Injector) CorruptPayload(p []byte) bool {
	if in == nil || len(p) == 0 || !in.hit(in.cfg.CorruptProb) {
		return false
	}
	in.mu.Lock()
	i := in.rng.Intn(len(p))
	in.mu.Unlock()
	p[i] ^= 0xA5
	in.note(KindCorrupt)
	return true
}

// MessageFate decides a simulated message's fate: dropped, duplicated,
// and/or delayed by extra virtual time. Drop wins over the others.
func (in *Injector) MessageFate() (drop, dup bool, delay sim.Time) {
	if in == nil {
		return false, false, 0
	}
	if in.hit(in.cfg.MsgLossProb) {
		in.note(KindMsgLoss)
		return true, false, 0
	}
	if in.hit(in.cfg.MsgDupProb) {
		in.note(KindMsgDup)
		dup = true
	}
	if in.hit(in.cfg.MsgDelayProb) && in.cfg.MsgDelayMax > 0 {
		in.note(KindMsgDelay)
		in.mu.Lock()
		delay = sim.Time(in.rng.Int63n(int64(in.cfg.MsgDelayMax)))
		in.mu.Unlock()
	}
	return false, dup, delay
}
