package faults

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestCorruptPayloadFlipsOneByte(t *testing.T) {
	in := New(Config{Seed: 3, CorruptProb: 1})
	orig := []byte{10, 20, 30, 40, 50, 60, 70, 80}
	p := append([]byte(nil), orig...)
	if !in.CorruptPayload(p) {
		t.Fatal("CorruptProb=1 did not corrupt")
	}
	diff := 0
	for i := range p {
		if p[i] != orig[i] {
			diff++
			if p[i] != orig[i]^0xA5 {
				t.Fatalf("byte %d flipped to %#x, want %#x", i, p[i], orig[i]^0xA5)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corruption touched %d bytes, want exactly 1", diff)
	}
	if in.Count(KindCorrupt) != 1 {
		t.Fatalf("corrupt count %d, want 1", in.Count(KindCorrupt))
	}
}

func TestCorruptPayloadNilAndEmpty(t *testing.T) {
	var nilInj *Injector
	if nilInj.CorruptPayload([]byte{1}) {
		t.Fatal("nil injector corrupted")
	}
	in := New(Config{Seed: 1, CorruptProb: 1})
	if in.CorruptPayload(nil) {
		t.Fatal("empty payload corrupted")
	}
	in0 := New(Config{Seed: 1})
	p := []byte{9}
	if in0.CorruptPayload(p) || p[0] != 9 {
		t.Fatal("zero-probability injector corrupted")
	}
}

// TestConnWriteCorruptsCopyNotCaller verifies two properties of wire
// corruption: the flipped byte lands past the 32-byte header (headers
// stay parseable, so the corruption surfaces as a checksum error rather
// than a protocol desync), and the caller's buffer — which a reconnecting
// client retains for replay — is never mutated.
func TestConnWriteCorruptsCopyNotCaller(t *testing.T) {
	in := New(Config{Seed: 5, CorruptProb: 1})
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, in)

	frame := make([]byte, 64) // 32B header + 32B payload
	for i := range frame {
		frame[i] = byte(i)
	}
	orig := append([]byte(nil), frame...)

	got := make([]byte, len(frame))
	done := make(chan error, 1)
	go func() {
		_, err := readFull(b, got)
		done <- err
	}()
	if _, err := fc.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(frame, orig) {
		t.Fatal("Write mutated the caller's buffer")
	}
	if bytes.Equal(got, orig) {
		t.Fatal("CorruptProb=1 left the wire image intact")
	}
	if !bytes.Equal(got[:32], orig[:32]) {
		t.Fatal("corruption hit the header; must stay in the payload")
	}
	if in.Count(KindCorrupt) == 0 {
		t.Fatal("corruption not counted")
	}
}

// TestConnWriteHeaderOnlyNotCorrupted: frames with no payload bytes have
// nothing safe to flip and must pass through untouched.
func TestConnWriteHeaderOnlyNotCorrupted(t *testing.T) {
	in := New(Config{Seed: 5, CorruptProb: 1})
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, in)

	frame := make([]byte, 32)
	for i := range frame {
		frame[i] = byte(i)
	}
	got := make([]byte, len(frame))
	done := make(chan error, 1)
	go func() {
		_, err := readFull(b, got)
		done <- err
	}()
	if _, err := fc.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("header-only frame corrupted")
	}
}

func readFull(c net.Conn, p []byte) (int, error) {
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	n := 0
	for n < len(p) {
		m, err := c.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
