package faults

import (
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Conn wraps a net.Conn and injects wall-clock faults on the byte-stream
// path: jitter, stalls, partial reads/writes, abrupt resets and half-open
// blackholes. It preserves net.Conn semantics (deadlines included) so
// hardened peers can be tested unmodified.
type Conn struct {
	net.Conn
	inj *Injector

	blackholed atomic.Bool
	readDL     atomic.Value // time.Time

	closeOnce sync.Once
	closeCh   chan struct{}
}

// WrapConn wraps c with fault injection. A nil injector returns c
// unchanged.
func WrapConn(c net.Conn, in *Injector) net.Conn {
	if in == nil {
		return c
	}
	return &Conn{Conn: c, inj: in, closeCh: make(chan struct{})}
}

// perOp applies the shared pre-operation faults: jitter, stall, reset.
// It returns a non-nil error when the operation must fail immediately.
func (c *Conn) perOp() error {
	in := c.inj
	if in.cfg.JitterMax > 0 {
		// Jitter is background noise applied to every operation; it is
		// deliberately not counted as an injected fault.
		in.mu.Lock()
		j := time.Duration(in.rng.Int63n(int64(in.cfg.JitterMax)))
		in.mu.Unlock()
		time.Sleep(j)
	}
	if in.hit(in.cfg.StallProb) {
		in.note(KindStall)
		time.Sleep(in.dur(in.cfg.StallDur))
	}
	if in.hit(in.cfg.ResetProb) {
		in.note(KindReset)
		c.Close()
		return net.ErrClosed
	}
	if in.hit(in.cfg.DropProb) {
		in.note(KindDrop)
		c.blackholed.Store(true)
	}
	return nil
}

// Read injects faults, then reads from the wrapped connection. A
// blackholed connection blocks until the read deadline or close — the
// observable behavior of a half-open peer.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.perOp(); err != nil {
		return 0, err
	}
	if c.blackholed.Load() {
		return 0, c.blockUntilDeadline()
	}
	if c.inj.hit(c.inj.cfg.PartialProb) && len(p) > 1 {
		c.inj.note(KindPartial)
		p = p[:1+len(p)/2]
	}
	return c.Conn.Read(p)
}

// wireHeaderSize mirrors protocol.HeaderSize without importing the
// protocol package: corruption must land beyond the fixed message header
// so framing survives and the flip falls inside checksummed payload bytes.
const wireHeaderSize = 32

// Write injects faults, then writes to the wrapped connection. A
// blackholed connection swallows writes (the peer will never see them); a
// partial fault writes a truncated prefix and reports the short count,
// which bufio surfaces as io.ErrShortWrite on the caller's flush path. A
// corrupt fault flips one byte past the fixed header — silent in-flight
// data corruption that only an end-to-end checksum catches.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.perOp(); err != nil {
		return 0, err
	}
	if c.blackholed.Load() {
		return len(p), nil // vanishes into the half-open void
	}
	if len(p) > wireHeaderSize && c.inj.hit(c.inj.cfg.CorruptProb) {
		// Copy so the caller's buffer (possibly a retained payload slice)
		// is not mutated; corrupt only the bytes on the wire.
		q := make([]byte, len(p))
		copy(q, p)
		c.inj.mu.Lock()
		i := wireHeaderSize + c.inj.rng.Intn(len(q)-wireHeaderSize)
		c.inj.mu.Unlock()
		q[i] ^= 0xA5
		c.inj.note(KindCorrupt)
		p = q
	}
	if c.inj.hit(c.inj.cfg.PartialProb) && len(p) > 1 {
		c.inj.note(KindPartial)
		return c.Conn.Write(p[:len(p)/2])
	}
	return c.Conn.Write(p)
}

// blockUntilDeadline emulates a read against a half-open peer: nothing
// ever arrives, so the call returns only on deadline expiry or close. The
// wait re-checks the deadline periodically so a deadline set while
// blocked still takes effect.
func (c *Conn) blockUntilDeadline() error {
	for {
		wait := 20 * time.Millisecond
		if dl, ok := c.readDL.Load().(time.Time); ok && !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return os.ErrDeadlineExceeded
			}
			if d < wait {
				wait = d
			}
		}
		t := time.NewTimer(wait)
		select {
		case <-c.closeCh:
			t.Stop()
			return net.ErrClosed
		case <-t.C:
		}
	}
}

// SetReadDeadline tracks the deadline for blackhole emulation and
// forwards it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.readDL.Store(t)
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline tracks the read half and forwards.
func (c *Conn) SetDeadline(t time.Time) error {
	c.readDL.Store(t)
	return c.Conn.SetDeadline(t)
}

// Close unblocks any blackholed readers and closes the wrapped
// connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closeCh) })
	return c.Conn.Close()
}

// Listener wraps a net.Listener so every accepted connection carries
// fault injection.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener wraps ln with fault injection on accepted connections. A
// nil injector returns ln unchanged.
func WrapListener(ln net.Listener, in *Injector) net.Listener {
	if in == nil {
		return ln
	}
	return &Listener{Listener: ln, inj: in}
}

// Accept accepts and wraps one connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.inj), nil
}

// Dialer returns a dial function that wraps every dialed connection, for
// clients that take a pluggable dialer.
func Dialer(network, addr string, in *Injector) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return WrapConn(c, in), nil
	}
}
