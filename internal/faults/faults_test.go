package faults

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/sim"
)

// TestNilInjectorInjectsNothing: every method must be callable on a nil
// *Injector — call sites carry no guards.
func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.DeviceError() {
		t.Fatal("nil injector injected a device error")
	}
	if d := in.DeviceStall(); d != 0 {
		t.Fatalf("nil injector stalled %v", d)
	}
	if d := in.DeviceStallSim(); d != 0 {
		t.Fatalf("nil injector sim-stalled %v", d)
	}
	if drop, dup, delay := in.MessageFate(); drop || dup || delay != 0 {
		t.Fatalf("nil injector decided a message fate: %v %v %v", drop, dup, delay)
	}
	if in.Injected() != 0 || in.Count(KindDrop) != 0 {
		t.Fatal("nil injector counted faults")
	}
	in.SetObserver(func(string) {})
	if cfg := in.Config(); cfg != (Config{}) {
		t.Fatalf("nil injector config: %+v", cfg)
	}
}

// TestDeterministicFromSeed: two injectors with the same seed make the
// same decision sequence; a different seed diverges.
func TestDeterministicFromSeed(t *testing.T) {
	cfg := Config{Seed: 42, DeviceErrProb: 0.3, MsgLossProb: 0.2, MsgDupProb: 0.2}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		if a.DeviceError() != b.DeviceError() {
			t.Fatalf("decision %d diverged under the same seed", i)
		}
		ad, au, _ := a.MessageFate()
		bd, bu, _ := b.MessageFate()
		if ad != bd || au != bu {
			t.Fatalf("message fate %d diverged under the same seed", i)
		}
	}
	if a.Injected() != b.Injected() {
		t.Fatalf("counts diverged: %d vs %d", a.Injected(), b.Injected())
	}
	if a.Injected() == 0 {
		t.Fatal("expected some injections at these probabilities")
	}
	var diverged bool
	d := New(Config{Seed: 42, DeviceErrProb: 0.3})
	e := New(Config{Seed: 1042, DeviceErrProb: 0.3})
	for i := 0; i < 500; i++ {
		if d.DeviceError() != e.DeviceError() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

// TestCountsAndObserver: per-kind counts and the observer both see every
// injected fault; jitter is background noise and never counted.
func TestCountsAndObserver(t *testing.T) {
	in := New(Config{Seed: 7, DeviceErrProb: 1})
	var observed int
	in.SetObserver(func(kind string) {
		if kind != KindDeviceErr {
			t.Fatalf("observer got kind %q", kind)
		}
		observed++
	})
	for i := 0; i < 10; i++ {
		if !in.DeviceError() {
			t.Fatal("p=1 device error did not fire")
		}
	}
	if in.Injected() != 10 || in.Count(KindDeviceErr) != 10 || observed != 10 {
		t.Fatalf("counts: total %d kind %d observed %d, want 10/10/10",
			in.Injected(), in.Count(KindDeviceErr), observed)
	}
}

// TestDeviceStallBounded: stalls are in [dur/2, dur).
func TestDeviceStallBounded(t *testing.T) {
	in := New(Config{Seed: 1, DeviceStallProb: 1, DeviceStallDur: 10 * time.Millisecond})
	for i := 0; i < 50; i++ {
		d := in.DeviceStall()
		if d < 5*time.Millisecond || d >= 10*time.Millisecond+time.Millisecond {
			t.Fatalf("stall %v outside [5ms, ~10ms]", d)
		}
	}
}

// TestMessageFateDropWins: at p(loss)=1 a message is dropped and never
// also duplicated or delayed.
func TestMessageFateDropWins(t *testing.T) {
	in := New(Config{Seed: 3, MsgLossProb: 1, MsgDupProb: 1, MsgDelayProb: 1, MsgDelayMax: sim.Millisecond})
	drop, dup, delay := in.MessageFate()
	if !drop || dup || delay != 0 {
		t.Fatalf("fate = %v %v %v, want drop only", drop, dup, delay)
	}
}

// pipeConns returns a connected TCP pair so deadline semantics are real.
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	<-done
	if cerr != nil || err != nil {
		t.Fatalf("dial %v accept %v", cerr, err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestWrapConnNil: a nil injector must return the conn unchanged.
func TestWrapConnNil(t *testing.T) {
	c, _ := pipeConns(t)
	if WrapConn(c, nil) != c {
		t.Fatal("nil injector wrapped the conn")
	}
}

// TestConnPartialWrite: with p(partial)=1, writes are short — the raw
// material for bufio flush errors on the server path.
func TestConnPartialWrite(t *testing.T) {
	c, s := pipeConns(t)
	fc := WrapConn(c, New(Config{Seed: 5, PartialProb: 1}))
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := s.Read(buf); err != nil {
				return
			}
		}
	}()
	n, err := fc.Write(make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if n >= 64 {
		t.Fatalf("wrote %d bytes, want a short write", n)
	}
}

// TestConnReset: with p(reset)=1, the first operation fails with
// net.ErrClosed and the connection is gone.
func TestConnReset(t *testing.T) {
	c, _ := pipeConns(t)
	fc := WrapConn(c, New(Config{Seed: 5, ResetProb: 1}))
	if _, err := fc.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write on reset conn: %v, want net.ErrClosed", err)
	}
	if _, err := fc.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on reset conn succeeded")
	}
}

// TestConnBlackholeHonorsDeadline: a dropped (half-open) connection's
// reads hang and then surface os.ErrDeadlineExceeded — exactly what the
// server's idle reaper needs to observe.
func TestConnBlackholeHonorsDeadline(t *testing.T) {
	c, s := pipeConns(t)
	fc := WrapConn(c, New(Config{Seed: 5, DropProb: 1}))
	fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	// The peer writes, but the blackhole swallows delivery client-side.
	s.Write([]byte("hello"))
	t0 := time.Now()
	_, err := fc.Read(make([]byte, 16))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read: %v, want deadline exceeded", err)
	}
	if d := time.Since(t0); d < 40*time.Millisecond {
		t.Fatalf("deadline fired after %v, want ~50ms", d)
	}
	// Writes vanish rather than erroring: a half-open peer ACKs nothing
	// but the local stack accepts the bytes.
	if n, err := fc.Write([]byte("gone")); err != nil || n != 4 {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}
	// Close unblocks a reader with no deadline.
	fc.SetReadDeadline(time.Time{})
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("read after close: %v, want net.ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blackholed read not unblocked by Close")
	}
}

// TestListenerWraps: accepted connections carry injection.
func TestListenerWraps(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WrapListener(ln, New(Config{Seed: 9, ResetProb: 1}))
	defer fl.Close()
	go net.Dial("tcp", ln.Addr().String())
	c, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *faults.Conn", c)
	}
	if WrapListener(ln, nil) != ln {
		t.Fatal("nil injector wrapped the listener")
	}
}
