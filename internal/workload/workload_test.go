package workload

import (
	"testing"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/sim"
)

// fixedTarget completes every op after a fixed service time, unlimited
// parallelism.
func fixedTarget(eng *sim.Engine, service sim.Time) Target {
	return TargetFunc(func(op core.OpType, block uint64, size int, done func(sim.Time)) {
		eng.After(service, func() { done(service) })
	})
}

func TestOpenLoopOfferedRate(t *testing.T) {
	eng := sim.NewEngine()
	res := OpenLoop{
		IOPS:     100_000,
		Mix:      Mix{ReadPercent: 100, Size: 4096, Blocks: 1000},
		Warmup:   10 * sim.Millisecond,
		Duration: 1 * sim.Second,
		Seed:     1,
	}.Start(eng, fixedTarget(eng, 50*sim.Microsecond))
	eng.Run()
	iops := res.IOPS()
	if iops < 97_000 || iops > 103_000 {
		t.Fatalf("achieved %.0f IOPS, offered 100000", iops)
	}
	if res.ReadLat.Count() == 0 || res.WriteLat.Count() != 0 {
		t.Fatalf("read-only mix recorded %d reads, %d writes",
			res.ReadLat.Count(), res.WriteLat.Count())
	}
	if res.ReadLat.Quantile(0.95) != 50*sim.Microsecond {
		t.Fatalf("latency = %d, want exactly the service time", res.ReadLat.Quantile(0.95))
	}
	if res.Issued <= res.Completed {
		t.Fatal("warmup arrivals must be issued but not counted")
	}
}

func TestOpenLoopMixRatio(t *testing.T) {
	eng := sim.NewEngine()
	res := OpenLoop{
		IOPS:     50_000,
		Mix:      Mix{ReadPercent: 80, Size: 4096, Blocks: 1000},
		Duration: 1 * sim.Second,
		Seed:     2,
	}.Start(eng, fixedTarget(eng, 10*sim.Microsecond))
	eng.Run()
	reads := float64(res.ReadLat.Count())
	total := float64(res.ReadLat.Count() + res.WriteLat.Count())
	ratio := reads / total
	if ratio < 0.78 || ratio > 0.82 {
		t.Fatalf("read ratio = %.3f, want ~0.80", ratio)
	}
}

func TestOpenLoopMBps(t *testing.T) {
	eng := sim.NewEngine()
	res := OpenLoop{
		IOPS:     10_000,
		Mix:      Mix{ReadPercent: 100, Size: 4096, Blocks: 10},
		Duration: 1 * sim.Second,
		Seed:     3,
	}.Start(eng, fixedTarget(eng, sim.Microsecond))
	eng.Run()
	// 10K IOPS x 4KB ~= 41 MB/s.
	if got := res.MBps(); got < 39 || got > 43 {
		t.Fatalf("MBps = %.1f, want ~41", got)
	}
}

func TestClosedLoopQueueDepthOne(t *testing.T) {
	// With QD1 and a 100us service time, throughput is exactly 10K IOPS
	// and latency exactly the service time.
	eng := sim.NewEngine()
	res := ClosedLoop{
		Depth:    1,
		Mix:      Mix{ReadPercent: 100, Size: 4096, Blocks: 100},
		Duration: 1 * sim.Second,
		Seed:     4,
	}.Start(eng, fixedTarget(eng, 100*sim.Microsecond))
	eng.Run()
	if iops := res.IOPS(); iops < 9_900 || iops > 10_100 {
		t.Fatalf("QD1 IOPS = %.0f, want ~10000", iops)
	}
	if res.ReadLat.Max() != 100*sim.Microsecond {
		t.Fatalf("QD1 latency = %d, want 100us", res.ReadLat.Max())
	}
}

func TestClosedLoopDepthScalesThroughput(t *testing.T) {
	run := func(depth int) float64 {
		eng := sim.NewEngine()
		res := ClosedLoop{
			Depth:    depth,
			Mix:      Mix{ReadPercent: 100, Size: 4096, Blocks: 100},
			Duration: 500 * sim.Millisecond,
			Seed:     5,
		}.Start(eng, fixedTarget(eng, 100*sim.Microsecond))
		eng.Run()
		return res.IOPS()
	}
	if q4, q1 := run(4), run(1); q4 < 3.8*q1 {
		t.Fatalf("QD4 (%.0f) not ~4x QD1 (%.0f) on an unlimited target", q4, q1)
	}
}

func TestClosedLoopThinkTime(t *testing.T) {
	eng := sim.NewEngine()
	res := ClosedLoop{
		Depth:     1,
		ThinkTime: 900 * sim.Microsecond,
		Mix:       Mix{ReadPercent: 100, Size: 4096, Blocks: 100},
		Duration:  1 * sim.Second,
		Seed:      6,
	}.Start(eng, fixedTarget(eng, 100*sim.Microsecond))
	eng.Run()
	// One op per 1ms cycle.
	if iops := res.IOPS(); iops < 950 || iops > 1050 {
		t.Fatalf("think-time IOPS = %.0f, want ~1000", iops)
	}
}

func TestDeviceTargetRecordsLatency(t *testing.T) {
	eng := sim.NewEngine()
	dev := flashsim.New(eng, flashsim.DeviceA(), 9)
	res := ClosedLoop{
		Depth:    1,
		Mix:      Mix{ReadPercent: 100, Size: 4096, Blocks: 1 << 20},
		Duration: 100 * sim.Millisecond,
		Seed:     7,
	}.Start(eng, DeviceTarget(eng, dev))
	eng.Run()
	avg := res.ReadLat.Mean() / 1000
	if avg < 60 || avg > 100 {
		t.Fatalf("device QD1 read avg = %.1fus, want ~78us", avg)
	}
	if dev.Stats().Reads != res.Issued {
		t.Fatalf("device saw %d reads, generator issued %d", dev.Stats().Reads, res.Issued)
	}
}

func TestResultMerge(t *testing.T) {
	a, b := newResult(sim.Second), newResult(sim.Second)
	a.Completed, b.Completed = 10, 20
	a.CompletedBytes, b.CompletedBytes = 100, 200
	a.Issued, b.Issued = 15, 25
	a.ReadLat.Record(5)
	b.ReadLat.Record(7)
	b.WriteLat.Record(9)
	a.Merge(b)
	if a.Completed != 30 || a.CompletedBytes != 300 || a.Issued != 40 {
		t.Fatalf("merge counts wrong: %+v", a)
	}
	if a.ReadLat.Count() != 2 || a.WriteLat.Count() != 1 {
		t.Fatal("merge histograms wrong")
	}
}

func TestGeneratorValidation(t *testing.T) {
	eng := sim.NewEngine()
	tgt := fixedTarget(eng, 1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("openloop iops", func() {
		OpenLoop{Mix: Mix{Blocks: 1}}.Start(eng, tgt)
	})
	mustPanic("openloop blocks", func() {
		OpenLoop{IOPS: 1}.Start(eng, tgt)
	})
	mustPanic("closedloop depth", func() {
		ClosedLoop{Mix: Mix{Blocks: 1}}.Start(eng, tgt)
	})
	mustPanic("closedloop blocks", func() {
		ClosedLoop{Depth: 1}.Start(eng, tgt)
	})
}

func TestZeroWindowResult(t *testing.T) {
	r := newResult(0)
	if r.IOPS() != 0 || r.MBps() != 0 {
		t.Fatal("zero window must report zero rates")
	}
}

func TestZipfSkewConcentratesAccesses(t *testing.T) {
	counts := map[uint64]int{}
	eng := sim.NewEngine()
	tgt := TargetFunc(func(op core.OpType, b uint64, s int, done func(sim.Time)) {
		counts[b]++
		eng.After(0, func() { done(0) })
	})
	OpenLoop{
		IOPS:     100_000,
		Mix:      Mix{ReadPercent: 100, Size: 4096, Blocks: 100_000, ZipfSkew: 1.2},
		Duration: 500 * sim.Millisecond,
		Seed:     1,
	}.Start(eng, tgt)
	eng.Run()
	total := 0
	hot := 0 // accesses to the 10 hottest of 100K blocks
	for b, n := range counts {
		total += n
		if b < 10 {
			hot += n
		}
	}
	if total < 40_000 {
		t.Fatalf("only %d accesses", total)
	}
	frac := float64(hot) / float64(total)
	if frac < 0.10 {
		t.Fatalf("top-10 blocks got %.1f%% of zipf accesses, want heavy concentration", frac*100)
	}
	// Uniform control: the same 10 blocks get ~0.01%.
	counts = map[uint64]int{}
	eng2 := sim.NewEngine()
	tgt2 := TargetFunc(func(op core.OpType, b uint64, s int, done func(sim.Time)) {
		counts[b]++
		eng2.After(0, func() { done(0) })
	})
	OpenLoop{
		IOPS:     100_000,
		Mix:      Mix{ReadPercent: 100, Size: 4096, Blocks: 100_000},
		Duration: 500 * sim.Millisecond,
		Seed:     1,
	}.Start(eng2, tgt2)
	eng2.Run()
	hot = 0
	for b, n := range counts {
		if b < 10 {
			hot += n
		}
	}
	if float64(hot)/float64(total) > 0.01 {
		t.Fatalf("uniform control concentrated too: %d hot accesses", hot)
	}
}
