// Package workload provides the load generators used by the evaluation: an
// open-loop Poisson generator in the style of mutilate (§5.1 — a target
// throughput is offered regardless of completions, so queueing shows up as
// latency) and a closed-loop generator (fixed queue depth, as FIO uses).
//
// Generators drive any Target: a remote ReFlex connection, a baseline
// server, or the raw simulated device for local experiments.
package workload

import (
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/hist"
	"github.com/reflex-go/reflex/internal/sim"
)

// Target accepts I/O operations and reports their completion latency.
type Target interface {
	Issue(op core.OpType, block uint64, size int, done func(lat sim.Time))
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(op core.OpType, block uint64, size int, done func(lat sim.Time))

// Issue implements Target.
func (f TargetFunc) Issue(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
	f(op, block, size, done)
}

// DeviceTarget adapts a simulated flash device to the Target interface for
// local-access experiments (Figure 1, Figure 3, the SPDK-like baseline).
func DeviceTarget(eng *sim.Engine, dev *flashsim.Device) Target {
	return TargetFunc(func(op core.OpType, block uint64, size int, done func(lat sim.Time)) {
		fop := flashsim.OpRead
		if op == core.OpWrite {
			fop = flashsim.OpWrite
		}
		start := eng.Now()
		dev.Submit(&flashsim.Request{
			Op:    fop,
			Block: block,
			Size:  size,
			OnComplete: func(at sim.Time) {
				if done != nil {
					done(at - start)
				}
			},
		})
	})
}

// Mix describes the request population.
type Mix struct {
	// ReadPercent of requests are reads; the rest are writes.
	ReadPercent int
	// Size is the request size in bytes.
	Size int
	// Blocks is the address range; block addresses are uniform random in
	// [0, Blocks). Random writes trigger worst-case device GC (§3.2.1).
	Blocks uint64
	// ZipfSkew, when > 1, draws block addresses from a Zipf distribution
	// with that skew instead of uniformly — the hot-spot access pattern
	// of skewed key-value and web workloads.
	ZipfSkew float64
}

// blockPicker returns a deterministic address sampler for the mix.
func (m Mix) blockPicker(rng *sim.RNG) func() uint64 {
	if m.ZipfSkew > 1 {
		z := rng.NewZipf(m.ZipfSkew, m.Blocks)
		return z.Uint64
	}
	n := int64(m.Blocks)
	return func() uint64 { return uint64(rng.Int63n(n)) }
}

// Result accumulates measurements. Latencies and counts cover only the
// measurement window (after warmup).
type Result struct {
	ReadLat  *hist.Hist
	WriteLat *hist.Hist
	// Issued counts every request offered, including warmup.
	Issued uint64
	// Completed counts in-window completions.
	Completed uint64
	// CompletedBytes is the in-window completed payload volume.
	CompletedBytes uint64
	// Window is the measurement window duration.
	Window sim.Time
}

func newResult(window sim.Time) *Result {
	return &Result{ReadLat: hist.New(), WriteLat: hist.New(), Window: window}
}

// IOPS returns in-window completed operations per second.
func (r *Result) IOPS() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Completed) * float64(sim.Second) / float64(r.Window)
}

// MBps returns in-window completed payload megabytes per second.
func (r *Result) MBps() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.CompletedBytes) / 1e6 * float64(sim.Second) / float64(r.Window)
}

// Merge folds other into r (for aggregating per-tenant results).
func (r *Result) Merge(other *Result) {
	r.ReadLat.Merge(other.ReadLat)
	r.WriteLat.Merge(other.WriteLat)
	r.Issued += other.Issued
	r.Completed += other.Completed
	r.CompletedBytes += other.CompletedBytes
}

// OpenLoop is an open-loop arrival generator targeting a fixed offered
// load: Poisson by default, or uniformly paced like mutilate's fixed-rate
// mode (§5.1).
type OpenLoop struct {
	// IOPS is the offered arrival rate.
	IOPS float64
	// Mix is the request population.
	Mix Mix
	// Uniform paces arrivals deterministically at 1/IOPS instead of
	// exponential (Poisson) inter-arrival times.
	Uniform bool
	// EvenMix interleaves reads and writes deterministically at the exact
	// ratio (every Nth request is a write) instead of sampling each op,
	// as fixed-pattern load generators do. Without it, random runs of
	// expensive writes make the token demand bursty.
	EvenMix bool
	// Warmup is discarded before measurements begin.
	Warmup sim.Time
	// Duration is the measurement window; arrivals stop at Warmup+Duration.
	Duration sim.Time
	// Seed makes the generator deterministic.
	Seed int64
}

// Start schedules the generator on eng against target and returns the
// Result, which is complete once the engine has drained.
func (g OpenLoop) Start(eng *sim.Engine, target Target) *Result {
	if g.IOPS <= 0 {
		panic("workload: OpenLoop.IOPS must be positive")
	}
	if g.Mix.Blocks == 0 {
		panic("workload: Mix.Blocks must be positive")
	}
	res := newResult(g.Duration)
	rng := sim.NewRNG(g.Seed)
	pick := g.Mix.blockPicker(rng)
	mean := sim.Time(float64(sim.Second) / g.IOPS)
	measureFrom := eng.Now() + g.Warmup
	stopAt := measureFrom + g.Duration
	mixAcc := 0

	var arrive func()
	arrive = func() {
		if eng.Now() >= stopAt {
			return
		}
		op := core.OpRead
		if g.EvenMix {
			mixAcc += 100 - g.Mix.ReadPercent
			if mixAcc >= 100 {
				mixAcc -= 100
				op = core.OpWrite
			}
		} else if rng.Intn(100) >= g.Mix.ReadPercent {
			op = core.OpWrite
		}
		res.Issued++
		size := g.Mix.Size
		target.Issue(op, pick(), size, func(lat sim.Time) {
			// Count completions that land inside the measurement window:
			// delivered throughput equals the service rate even when the
			// offered load exceeds it and queues grow without bound.
			now := eng.Now()
			if now < measureFrom || now > stopAt {
				return
			}
			res.Completed++
			res.CompletedBytes += uint64(size)
			if op == core.OpRead {
				res.ReadLat.Record(lat)
			} else {
				res.WriteLat.Record(lat)
			}
		})
		if g.Uniform {
			eng.After(mean, arrive)
		} else {
			eng.After(rng.Exp(mean), arrive)
		}
	}
	eng.After(0, arrive)
	return res
}

// ClosedLoop keeps a fixed number of requests outstanding (queue depth),
// as FIO and the unloaded-latency measurements do (§5.2: QD 1).
type ClosedLoop struct {
	// Depth is the number of outstanding requests.
	Depth int
	// ThinkTime is an optional delay between a completion and the next
	// issue on that slot.
	ThinkTime sim.Time
	Mix       Mix
	Warmup    sim.Time
	Duration  sim.Time
	Seed      int64
}

// Start schedules the generator on eng against target.
func (g ClosedLoop) Start(eng *sim.Engine, target Target) *Result {
	if g.Depth <= 0 {
		panic("workload: ClosedLoop.Depth must be positive")
	}
	if g.Mix.Blocks == 0 {
		panic("workload: Mix.Blocks must be positive")
	}
	res := newResult(g.Duration)
	rng := sim.NewRNG(g.Seed)
	pick := g.Mix.blockPicker(rng)
	measureFrom := eng.Now() + g.Warmup
	stopAt := measureFrom + g.Duration

	var issue func()
	issue = func() {
		if eng.Now() >= stopAt {
			return
		}
		op := core.OpRead
		if rng.Intn(100) >= g.Mix.ReadPercent {
			op = core.OpWrite
		}
		res.Issued++
		size := g.Mix.Size
		arrival := eng.Now()
		target.Issue(op, pick(), size, func(lat sim.Time) {
			if arrival >= measureFrom && eng.Now() <= stopAt {
				res.Completed++
				res.CompletedBytes += uint64(size)
				if op == core.OpRead {
					res.ReadLat.Record(lat)
				} else {
					res.WriteLat.Record(lat)
				}
			}
			if g.ThinkTime > 0 {
				eng.After(g.ThinkTime, issue)
			} else {
				eng.After(0, issue)
			}
		})
	}
	for i := 0; i < g.Depth; i++ {
		eng.After(0, issue)
	}
	return res
}
