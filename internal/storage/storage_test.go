package storage

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemReadWrite(t *testing.T) {
	m := NewMem(1 << 16)
	defer m.Close()
	data := bytes.Repeat([]byte{0x5A}, 4096)
	if n, err := m.WriteAt(data, 8192); err != nil || n != 4096 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	got := make([]byte, 4096)
	if n, err := m.ReadAt(got, 8192); err != nil || n != 4096 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted")
	}
	// Unwritten regions read as zero.
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten region not zero")
		}
	}
}

func TestMemBounds(t *testing.T) {
	m := NewMem(1024)
	buf := make([]byte, 128)
	for _, off := range []int64{-1, 1000, 1024, 1 << 40} {
		if _, err := m.ReadAt(buf, off); err == nil {
			t.Errorf("read at %d accepted", off)
		}
		if _, err := m.WriteAt(buf, off); err == nil {
			t.Errorf("write at %d accepted", off)
		}
	}
	if m.Size() != 1024 {
		t.Fatal("size")
	}
}

func TestMemSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero size accepted")
		}
	}()
	NewMem(0)
}

func TestMemConcurrentDisjoint(t *testing.T) {
	m := NewMem(1 << 20)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			region := int64(i) * 65536
			data := bytes.Repeat([]byte{byte(i + 1)}, 65536)
			for rep := 0; rep < 20; rep++ {
				if _, err := m.WriteAt(data, region); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 65536)
				if _, err := m.ReadAt(got, region); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Error("cross-region corruption")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMemRoundTripProperty(t *testing.T) {
	m := NewMem(1 << 16)
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off) % (m.Size() - int64(len(data)))
		if o < 0 {
			o = 0
		}
		if _, err := m.WriteAt(data, o); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := m.ReadAt(got, o); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flash.img")
	f, err := OpenFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xCD}, 4096)
	if _, err := f.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := f.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file data corrupted")
	}
	if f.Size() != 1<<20 {
		t.Fatal("size")
	}
	if _, err := f.ReadAt(got, 1<<20); err == nil {
		t.Fatal("out of bounds read accepted")
	}
	if _, err := f.WriteAt(got, -1); err == nil {
		t.Fatal("negative write accepted")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: data persists.
	f2, err := OpenFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got2 := make([]byte, 4096)
	if _, err := f2.ReadAt(got2, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("data lost across reopen")
	}
}

func TestFileValidation(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Fatal("zero-size file accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nodir", "deeper", "x"), 1024); err == nil {
		t.Fatal("unreachable path accepted")
	}
}
