// Package storage provides the block storage backends of the real (TCP)
// ReFlex server. The simulator models device timing; these backends hold
// actual bytes.
package storage

import (
	"fmt"
	"os"
	"sync"
)

// Backend is a byte-addressed block store.
type Backend interface {
	// ReadAt fills p from offset off.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt stores p at offset off.
	WriteAt(p []byte, off int64) (int, error)
	// Size returns the capacity in bytes.
	Size() int64
	// Close releases resources.
	Close() error
}

// Mem is an in-memory backend. It is safe for concurrent use: reads
// proceed in parallel under the read lock; writes take the write lock so
// a read overlapping a write sees either the old or the new bytes, never
// a torn mixture.
type Mem struct {
	mu   sync.RWMutex
	data []byte
}

// NewMem allocates an in-memory backend of the given size.
func NewMem(size int64) *Mem {
	if size <= 0 {
		panic("storage: Mem size must be positive")
	}
	return &Mem{data: make([]byte, size)}
}

// Size returns the capacity in bytes.
func (m *Mem) Size() int64 { return int64(len(m.data)) }

// ReadAt implements Backend.
func (m *Mem) ReadAt(p []byte, off int64) (int, error) {
	if err := m.check(len(p), off); err != nil {
		return 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return copy(p, m.data[off:]), nil
}

// WriteAt implements Backend.
func (m *Mem) WriteAt(p []byte, off int64) (int, error) {
	if err := m.check(len(p), off); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return copy(m.data[off:], p), nil
}

// Close implements Backend.
func (m *Mem) Close() error { return nil }

func (m *Mem) check(n int, off int64) error {
	if off < 0 || off+int64(n) > int64(len(m.data)) {
		return fmt.Errorf("storage: access [%d, %d) outside device of %d bytes",
			off, off+int64(n), len(m.data))
	}
	return nil
}

// File is a file-backed backend, for data that must survive restarts.
type File struct {
	f    *os.File
	size int64
}

// OpenFile creates or opens a file-backed store of exactly size bytes.
func OpenFile(path string, size int64) (*File, error) {
	if size <= 0 {
		return nil, fmt.Errorf("storage: file size must be positive")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, size: size}, nil
}

// Size returns the capacity in bytes.
func (s *File) Size() int64 { return s.size }

// ReadAt implements Backend.
func (s *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > s.size {
		return 0, fmt.Errorf("storage: access [%d, %d) outside device of %d bytes",
			off, off+int64(len(p)), s.size)
	}
	return s.f.ReadAt(p, off)
}

// WriteAt implements Backend.
func (s *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > s.size {
		return 0, fmt.Errorf("storage: access [%d, %d) outside device of %d bytes",
			off, off+int64(len(p)), s.size)
	}
	return s.f.WriteAt(p, off)
}

// Close implements Backend.
func (s *File) Close() error { return s.f.Close() }
