package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http_test_total", "").Add(3)
	ring := NewRing(8, 4)
	sp := Span{ID: 1, Size: 512}
	sp.Mark(StageArrival, 100)
	sp.Mark(StageTx, 600)
	ring.Push(sp)

	srv := httptest.NewServer(Mux(reg, ring))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "http_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	body, ct = get("/snapshot")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/snapshot content-type = %q", ct)
	}
	var dump SnapshotDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Errorf("/snapshot invalid JSON: %v", err)
	}

	body, _ = get("/slow")
	if !strings.Contains(body, "req=1") {
		t.Errorf("/slow missing span: %q", body)
	}

	body, _ = get("/traces")
	var spans []map[string]any
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/traces invalid JSON: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0]["id"].(float64) != 1 {
		t.Errorf("/traces = %v", spans)
	}

	if body, _ = get("/debug/vars"); !strings.Contains(body, "{") {
		t.Errorf("/debug/vars = %q", body)
	}
	get("/debug/pprof/cmdline")
}

func TestServeAndClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve_total", "").Inc()
	ms, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "serve_total 1") {
		t.Fatalf("metrics body = %q", body)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestPublishExpvarGuard(t *testing.T) {
	reg := NewRegistry()
	PublishExpvar("obs_test_guard", reg)
	PublishExpvar("obs_test_guard", reg) // must not panic
}
