package obs

import (
	"strings"
	"testing"
)

// TestStitchCrossNodeTimeline assembles a write's spans as they would be
// collected from four rings — client, primary, migration sink,
// destination — plus a backup replica hop, and checks the stitched
// ordering, depths and orphan accounting.
func TestStitchCrossNodeTimeline(t *testing.T) {
	const trace = uint64(0xABCD)
	spans := []Span{
		// Destination serve (relayed write), parent = sink relay span.
		{ID: 900, Trace: trace, Parent: 500, Node: "node1", Hop: HopServe, Write: true},
		// Client root: ID == Trace by convention.
		{ID: trace, Trace: trace, Parent: 0, Node: "client", Hop: HopClient, Write: true},
		// Primary serve, parent = client root.
		{ID: 100, Trace: trace, Parent: trace, Node: "node0", Hop: HopServe, Write: true},
		// Backup replica apply, parent = primary serve span.
		{ID: 700, Trace: trace, Parent: 100, Node: "node0b", Hop: HopReplica, Write: true},
		// Migration sink relay, parent = primary serve span.
		{ID: 500, Trace: trace, Parent: 100, Node: "coord", Hop: HopRelay, Write: true},
		// Duplicate collection of the same span (two scrapes) collapses.
		{ID: 100, Trace: trace, Parent: trace, Node: "node0", Hop: HopServe, Write: true},
		// A different trace id is ignored.
		{ID: 1, Trace: trace + 1, Parent: 0, Node: "other", Hop: HopServe},
	}
	tl := Stitch(trace, spans)
	if len(tl.Hops) != 5 {
		t.Fatalf("stitched %d hops, want 5 (dedup or filter broken)", len(tl.Hops))
	}
	wantOrder := []struct {
		node  string
		hop   uint8
		depth int
	}{
		{"client", HopClient, 0},
		{"node0", HopServe, 1},
		{"node0b", HopReplica, 2},
		{"coord", HopRelay, 2},
		{"node1", HopServe, 3},
	}
	for i, want := range wantOrder {
		got := tl.Hops[i]
		if got.Span.Node != want.node || got.Span.Hop != want.hop || got.Depth != want.depth {
			t.Fatalf("hop[%d] = %s/%s depth %d, want %s/%s depth %d",
				i, got.Span.Node, HopName(got.Span.Hop), got.Depth,
				want.node, HopName(want.hop), want.depth)
		}
	}
	if tl.Orphans != 0 {
		t.Fatalf("orphans = %d, want 0", tl.Orphans)
	}
	for _, probe := range []struct {
		hop  uint8
		node string
	}{{HopClient, "client"}, {HopServe, "node0"}, {HopRelay, ""}, {HopServe, "node1"}} {
		if !tl.Has(probe.hop, probe.node) {
			t.Fatalf("timeline missing hop %s on %q", HopName(probe.hop), probe.node)
		}
	}

	var b strings.Builder
	if err := tl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{"client", "node0", "coord", "node1", "relay", "replica"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered timeline missing %q:\n%s", want, text)
		}
	}
}

// TestStitchOrphans: a hop whose parent span fell out of its ring is
// kept as an extra root and counted.
func TestStitchOrphans(t *testing.T) {
	const trace = uint64(7)
	tl := Stitch(trace, []Span{
		{ID: trace, Trace: trace, Parent: 0, Node: "client", Hop: HopClient},
		{ID: 33, Trace: trace, Parent: 999 /* evicted */, Node: "node2", Hop: HopServe},
	})
	if len(tl.Hops) != 2 || tl.Orphans != 1 {
		t.Fatalf("hops=%d orphans=%d, want 2/1", len(tl.Hops), tl.Orphans)
	}
	if tl.Hops[0].Span.Hop != HopClient {
		t.Fatal("client root must sort before orphaned serve hop")
	}
}

// TestStitchSelfParentNoLoop: a span whose parent id equals its own id
// (corrupt trailer) must not recurse forever.
func TestStitchSelfParentNoLoop(t *testing.T) {
	const trace = uint64(9)
	tl := Stitch(trace, []Span{{ID: 5, Trace: trace, Parent: 5, Node: "n", Hop: HopServe}})
	if len(tl.Hops) != 1 || tl.Orphans != 1 {
		t.Fatalf("hops=%d orphans=%d, want 1/1", len(tl.Hops), tl.Orphans)
	}
}
