// Package obs is the unified telemetry layer shared by the simulated
// dataplane and the real TCP server: a labeled metrics registry
// (counters, gauges, histograms backed by internal/hist) with an
// allocation-free hot path, a time-series sampler that runs off either the
// simulation clock or a wall-clock ticker, per-request span tracing with a
// bounded ring buffer and a top-K slow-request log, and exposition in
// Prometheus text format, expvar and JSON snapshots.
//
// Design rules:
//
//   - Registration is the slow path: it takes a mutex and allocates. It
//     returns a typed handle (*Counter, *Gauge, *Histogram) whose hot-path
//     operations (Inc, Add, Set, Record) are allocation-free and safe for
//     concurrent use.
//   - Read-side functions (CounterFunc, GaugeFunc) expose existing
//     single-writer state — the simulator's plain counters — without
//     touching the hot path at all. They are evaluated only at exposition
//     or sampling time; callers whose state is goroutine-confined must only
//     expose it on registries scraped from that goroutine's context (the
//     simulation engine), or read atomics.
//   - The clock is pluggable so the same API serves virtual time
//     (sim.Engine.Now) and wall-clock time (time.Now) — registries embedded
//     in the simulated dataplane timestamp samples in nanoseconds of
//     virtual time, the real server in nanoseconds since start.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/reflex-go/reflex/internal/hist"
)

// Kind is a metric family's type.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a latency distribution (internal/hist).
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// Label is one name/value pair attached to a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// desc identifies one child metric inside a family.
type desc struct {
	name   string
	labels []Label
}

func (d *desc) labelKey() string {
	if len(d.labels) == 0 {
		return ""
	}
	s := ""
	for _, l := range d.labels {
		s += l.Key + "\x00" + l.Value + "\x00"
	}
	return s
}

// Counter is a monotonically increasing counter. The zero value is usable
// but unregistered; obtain counters from a Registry.
type Counter struct {
	desc
	v  atomic.Uint64
	fn func() float64 // read-side counter when non-nil
}

// Inc adds 1. Allocation-free and safe for concurrent use.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count. Function-backed counters evaluate the
// function.
func (c *Counter) Value() float64 {
	if c.fn != nil {
		return c.fn()
	}
	return float64(c.v.Load())
}

// Gauge is an integer gauge (levels, depths, balances).
type Gauge struct {
	desc
	v  atomic.Int64
	fn func() float64
}

// Set stores v. Allocation-free and safe for concurrent use.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level. Function-backed gauges evaluate the
// function.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return float64(g.v.Load())
}

// Histogram is a concurrency-safe latency histogram. Record is
// allocation-free; the mutex is uncontended in the single-threaded
// simulator and cheap relative to a syscall-bearing request path in the
// real server.
type Histogram struct {
	desc
	mu sync.Mutex
	h  hist.Hist
}

// Record adds one sample (nanoseconds).
func (h *Histogram) Record(v int64) {
	h.mu.Lock()
	h.h.Record(v)
	h.mu.Unlock()
}

// Snapshot returns the histogram summary.
func (h *Histogram) Snapshot() hist.Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Snapshot()
}

// Clone returns a copy of the underlying histogram (for windowed deltas).
func (h *Histogram) Clone() *hist.Hist {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Clone()
}

// Quantile returns the cumulative quantile estimate.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Quantile(q)
}

// family groups children sharing a metric name.
type family struct {
	name     string
	help     string
	kind     Kind
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	seen     map[string]struct{} // name+labelKey dedup
	clock    func() int64
}

// NewRegistry returns an empty registry whose clock reports zero until
// SetClock is called.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		seen:     make(map[string]struct{}),
		clock:    func() int64 { return 0 },
	}
}

// SetClock installs the registry's time source (nanoseconds). Simulated
// components pass the engine clock; the real server passes nanoseconds
// since start.
func (r *Registry) SetClock(clock func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if clock != nil {
		r.clock = clock
	}
}

// Now returns the registry clock's current time in nanoseconds.
func (r *Registry) Now() int64 {
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	return c()
}

func (r *Registry) register(name, help string, kind Kind, labels []Label) *family {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, fam.kind))
	}
	d := desc{name: name, labels: labels}
	key := name + "\x00" + d.labelKey()
	if _, dup := r.seen[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q %v", name, labels))
	}
	r.seen[key] = struct{}{}
	return fam
}

// Counter registers (or extends a family with) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.register(name, help, KindCounter, labels)
	c := &Counter{desc: desc{name: name, labels: labels}}
	fam.counters = append(fam.counters, c)
	return c
}

// CounterFunc registers a read-side counter whose value is computed by fn
// at exposition time. Used to expose existing single-writer counters (the
// simulator's plain uint64 fields) with zero hot-path overhead.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.register(name, help, KindCounter, labels)
	c := &Counter{desc: desc{name: name, labels: labels}, fn: fn}
	fam.counters = append(fam.counters, c)
	return c
}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.register(name, help, KindGauge, labels)
	g := &Gauge{desc: desc{name: name, labels: labels}}
	fam.gauges = append(fam.gauges, g)
	return g
}

// GaugeFunc registers a read-side gauge computed by fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.register(name, help, KindGauge, labels)
	g := &Gauge{desc: desc{name: name, labels: labels}, fn: fn}
	fam.gauges = append(fam.gauges, g)
	return g
}

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.register(name, help, KindHistogram, labels)
	h := &Histogram{desc: desc{name: name, labels: labels}}
	fam.hists = append(fam.hists, h)
	return h
}

// LookupValue returns the current value of the metric with the given name
// and labels (first match), or false. Primarily a test and sampler helper.
func (r *Registry) LookupValue(name string, labels ...Label) (float64, bool) {
	r.mu.Lock()
	fam, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	match := func(d *desc) bool {
		if len(labels) != len(d.labels) {
			return false
		}
		for i := range labels {
			if labels[i] != d.labels[i] {
				return false
			}
		}
		return true
	}
	for _, c := range fam.counters {
		if match(&c.desc) {
			return c.Value(), true
		}
	}
	for _, g := range fam.gauges {
		if match(&g.desc) {
			return g.Value(), true
		}
	}
	return 0, false
}

// visit walks families in registration order.
func (r *Registry) visit(fn func(*family)) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		fn(f)
	}
}

// sortedLabels renders labels deterministically for exposition.
func sortedLabels(ls []Label) []Label {
	if sort.SliceIsSorted(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key }) {
		return ls
	}
	out := append([]Label(nil), ls...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
