package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %v, want 5", c.Value())
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v, want 5", g.Value())
	}

	h := r.Histogram("h_ns", "a histogram")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	if got := h.Snapshot().Count; got != 100 {
		t.Fatalf("hist count = %d", got)
	}
	if q := h.Quantile(0.5); q < 40_000 || q > 60_000 {
		t.Fatalf("hist p50 = %d, want ~50us", q)
	}
}

func TestReadSideFuncs(t *testing.T) {
	// CounterFunc/GaugeFunc expose existing single-writer state without a
	// write path: the closure is evaluated at read time.
	r := NewRegistry()
	var backing uint64
	c := r.CounterFunc("sim_ops_total", "", func() float64 { return float64(backing) })
	g := r.GaugeFunc("sim_depth", "", func() float64 { return float64(backing) / 2 })
	backing = 42
	if c.Value() != 42 || g.Value() != 21 {
		t.Fatalf("read-side values = %v, %v", c.Value(), g.Value())
	}
}

func TestLabelsAndLookup(t *testing.T) {
	r := NewRegistry()
	reads := r.Counter("ops_total", "ops", L("op", "read"))
	writes := r.Counter("ops_total", "", L("op", "write"))
	reads.Add(3)
	writes.Add(9)
	if v, ok := r.LookupValue("ops_total", L("op", "read")); !ok || v != 3 {
		t.Fatalf("lookup read = %v, %v", v, ok)
	}
	if v, ok := r.LookupValue("ops_total", L("op", "write")); !ok || v != 9 {
		t.Fatalf("lookup write = %v, %v", v, ok)
	}
	if _, ok := r.LookupValue("missing"); ok {
		t.Fatal("lookup of missing metric succeeded")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", L("a", "1"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate name+labels did not panic")
		}
	}()
	r.Counter("dup_total", "", L("a", "1"))
}

func TestClock(t *testing.T) {
	r := NewRegistry()
	if r.Now() != 0 {
		t.Fatal("default clock must report 0")
	}
	var now int64 = 12345
	r.SetClock(func() int64 { return now })
	if r.Now() != 12345 {
		t.Fatalf("Now = %d", r.Now())
	}
	if snap := r.Snapshot(); snap.Time != 12345 {
		t.Fatalf("snapshot time = %d", snap.Time)
	}
}

// TestHotPathAllocs proves the hot-path operations are allocation-free, as
// required for the request path (satellite: testing.AllocsPerRun guards).
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("allocs_c_total", "")
	g := r.Gauge("allocs_g", "")
	h := r.Histogram("allocs_h_ns", "")
	h.Record(1) // warm any lazy bucket allocation

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(9) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op", n)
	}
	var v int64
	if n := testing.AllocsPerRun(1000, func() { v += 1000; h.Record(v) }); n != 0 {
		t.Errorf("Histogram.Record allocates %v per op", n)
	}
}

// TestConcurrentScrape hammers write handles from many goroutines while
// scraping Prometheus text and JSON snapshots — the race detector verifies
// the hot path against the exposition path.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_depth", "")
	h := r.Histogram("conc_lat_ns", "")

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		_ = r.Snapshot()
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %v, want %d", c.Value(), workers*iters)
	}
	if got := h.Snapshot().Count; got != workers*iters {
		t.Fatalf("hist count = %d, want %d", got, workers*iters)
	}
}
