package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Stage is one point in a request's lifecycle. Stages mirror the two-step
// run-to-completion pipeline (§3.1): reception, protocol parse, QoS
// admission, device submission, device completion, response transmission.
type Stage uint8

const (
	// StageArrival is when the request reached the server (post network).
	StageArrival Stage = iota
	// StageParse is when protocol parsing and access control finished.
	StageParse
	// StageAdmit is when the QoS scheduler admitted the request (token
	// grant). The Parse→Admit gap is time spent queued for tokens.
	StageAdmit
	// StageSubmit is when the request was submitted to the device.
	StageSubmit
	// StageDevDone is when the device completed the I/O.
	StageDevDone
	// StageTx is when the response was handed to transmission.
	StageTx
	numStages
)

var stageNames = [numStages]string{
	"arrival", "parse", "admit", "submit", "devdone", "tx",
}

// String returns the stage's short name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage%d", int(s))
}

// Hop identifies which role in the cluster a span was recorded from —
// the cross-node dimension of a distributed trace (DESIGN.md §14). Hop
// kinds, not clocks, order the stitched timeline: every node stamps
// spans against its own ns-since-start clock, so absolute stamps are
// only comparable within one node.
const (
	// HopClient is the origin span recorded by the issuing client (or
	// shard router pool) around the whole operation.
	HopClient uint8 = iota
	// HopServe is a server serving the request on its device (the owner
	// of the LBA range — including a migration destination applying a
	// relayed write).
	HopServe
	// HopRedirect is a server refusing the request with
	// StatusWrongShard — the request's detour through a stale map.
	HopRedirect
	// HopReplica is a backup applying a replication forward (OpReplicate)
	// from its primary.
	HopReplica
	// HopRelay is a migration sink relaying a forwarded write into the
	// destination node during a live shard move.
	HopRelay
	numHops
)

var hopNames = [numHops]string{"client", "serve", "redirect", "replica", "relay"}

// HopName names a hop kind.
func HopName(h uint8) string {
	if int(h) < len(hopNames) {
		return hopNames[h]
	}
	return fmt.Sprintf("hop%d", h)
}

// Span is one request's lifecycle record. It is embedded by value in
// server request structs, so recording stamps allocates nothing; the span
// is copied into the trace ring on completion.
type Span struct {
	// ID is a server-assigned request sequence number. For HopClient
	// roots the ID equals Trace (the client mints the trace id as its own
	// root span id), so downstream ParentSpan links resolve.
	ID uint64
	// Tenant is the owning tenant's ID.
	Tenant int
	// Write distinguishes writes from reads.
	Write bool
	// Size is the transfer size in bytes.
	Size int
	// Trace is the end-to-end trace id propagated in the FlagTraced wire
	// trailer; zero on untraced requests.
	Trace uint64
	// Parent is the span id of the upstream hop that forwarded this
	// request (zero for the root).
	Parent uint64
	// Node names the process that recorded the span (server NodeName,
	// "client", coordinator name).
	Node string
	// Hop is the HopClient/HopServe/... role this span was recorded from.
	Hop uint8
	// Stamps holds per-stage timestamps in nanoseconds; zero (except for
	// a stage legitimately at t=0) means the stage was skipped — e.g.
	// Admit is unset when QoS is disabled.
	Stamps [int(numStages)]int64
}

// Mark records the timestamp for a stage.
func (sp *Span) Mark(st Stage, now int64) { sp.Stamps[st] = now }

// Total returns the arrival-to-TX latency (0 if incomplete).
func (sp *Span) Total() int64 {
	t := sp.Stamps[StageTx] - sp.Stamps[StageArrival]
	if t < 0 {
		return 0
	}
	return t
}

// Breakdown renders the per-stage latency decomposition, skipping stages
// that were not stamped: "total=812us parse=1us sched=640us flash=120us
// tx=51us".
func (sp *Span) Breakdown() string {
	var b strings.Builder
	op := "read"
	if sp.Write {
		op = "write"
	}
	fmt.Fprintf(&b, "req=%d tenant=%d op=%s size=%d total=%.1fus",
		sp.ID, sp.Tenant, op, sp.Size, float64(sp.Total())/1000)
	prev := sp.Stamps[StageArrival]
	for st := StageParse; st < numStages; st++ {
		at := sp.Stamps[st]
		if at == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s=%.1fus", st, float64(at-prev)/1000)
		prev = at
	}
	return b.String()
}

// MarshalJSON renders the span with named stage timestamps.
func (sp Span) MarshalJSON() ([]byte, error) {
	stamps := make(map[string]int64, int(numStages))
	for st := StageArrival; st < numStages; st++ {
		if sp.Stamps[st] != 0 {
			stamps[st.String()] = sp.Stamps[st]
		}
	}
	op := "read"
	if sp.Write {
		op = "write"
	}
	return json.Marshal(struct {
		ID      uint64           `json:"id"`
		Tenant  int              `json:"tenant"`
		Op      string           `json:"op"`
		Size    int              `json:"size"`
		Trace   uint64           `json:"trace,omitempty"`
		Parent  uint64           `json:"parent,omitempty"`
		Node    string           `json:"node,omitempty"`
		Hop     string           `json:"hop"`
		TotalNS int64            `json:"total_ns"`
		Stamps  map[string]int64 `json:"stamps_ns"`
	}{sp.ID, sp.Tenant, op, sp.Size, sp.Trace, sp.Parent, sp.Node, HopName(sp.Hop), sp.Total(), stamps})
}

// Ring is a bounded ring buffer of completed request spans plus a top-K
// slow-request log ordered by total latency. Safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total pushes; buf[next%len] is the next slot
	topK int
	slow []Span // min-heap on Total()
}

// NewRing creates a ring holding the most recent capacity spans and the
// slowest topK spans seen overall.
func NewRing(capacity, topK int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	if topK <= 0 {
		topK = 16
	}
	return &Ring{buf: make([]Span, capacity), topK: topK}
}

// Push records a completed span.
func (r *Ring) Push(sp Span) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = sp
	r.next++
	// Maintain the top-K min-heap keyed on total latency.
	if len(r.slow) < r.topK {
		r.slow = append(r.slow, sp)
		r.siftUp(len(r.slow) - 1)
	} else if sp.Total() > r.slow[0].Total() {
		r.slow[0] = sp
		r.siftDown(0)
	}
	r.mu.Unlock()
}

func (r *Ring) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.slow[p].Total() <= r.slow[i].Total() {
			return
		}
		r.slow[p], r.slow[i] = r.slow[i], r.slow[p]
		i = p
	}
}

func (r *Ring) siftDown(i int) {
	n := len(r.slow)
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < n && r.slow[l].Total() < r.slow[small].Total() {
			small = l
		}
		if rr < n && r.slow[rr].Total() < r.slow[small].Total() {
			small = rr
		}
		if small == i {
			return
		}
		r.slow[i], r.slow[small] = r.slow[small], r.slow[i]
		i = small
	}
}

// Count returns the total number of spans pushed.
func (r *Ring) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Recent returns up to n most recent spans, newest first. n <= 0 means
// "everything retained" (mirrors Journal.Recent).
func (r *Ring) Recent(n int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := int(r.next)
	if have > len(r.buf) {
		have = len(r.buf)
	}
	if n > have || n <= 0 {
		n = have
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.next-1-uint64(i))%uint64(len(r.buf))])
	}
	return out
}

// TraceSpans returns every span in the ring carrying the given trace id,
// oldest first — one node's contribution to a distributed trace (feed
// the union across nodes to Stitch).
func (r *Ring) TraceSpans(trace uint64) []Span {
	if trace == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	have := int(r.next)
	if have > len(r.buf) {
		have = len(r.buf)
	}
	var out []Span
	for i := have - 1; i >= 0; i-- {
		sp := r.buf[(r.next-1-uint64(i))%uint64(len(r.buf))]
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

// Slowest returns the top-K slowest spans, slowest first.
func (r *Ring) Slowest() []Span {
	r.mu.Lock()
	out := append([]Span(nil), r.slow...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total() > out[j].Total() })
	return out
}

// WriteSlowLog renders the slow-request log with one breakdown per line.
func (r *Ring) WriteSlowLog(w io.Writer) error {
	var b strings.Builder
	for i, sp := range r.Slowest() {
		fmt.Fprintf(&b, "#%d %s\n", i+1, sp.Breakdown())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
