package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind classifies a cluster control-plane event (DESIGN.md §14).
type EventKind uint8

const (
	// EvPromote: a server was promoted to primary at a new epoch.
	EvPromote EventKind = iota + 1
	// EvFence: a server was fenced (deposed) by a higher epoch.
	EvFence
	// EvEpoch: a server adopted a higher cluster epoch without a role
	// change (e.g. from a replication ack or a fence that matched).
	EvEpoch
	// EvMapInstall: a shard map version was installed on a node.
	EvMapInstall
	// EvMovePrepare: MoveShard opened the dual-ownership window (map v+1
	// with Migrating set).
	EvMovePrepare
	// EvMoveCatchup: the migration sink finished the ranged catch-up
	// stream (destination holds all pre-move data).
	EvMoveCatchup
	// EvMoveCutover: MoveShard installed the cutover map (v+2, destination
	// authoritative).
	EvMoveCutover
	// EvMoveDrain: the source drained its pending migration forwards.
	EvMoveDrain
	// EvMoveDone: MoveShard completed.
	EvMoveDone
	// EvMoveAbort: MoveShard failed and rolled back the dual-ownership
	// window.
	EvMoveAbort
	// EvShed: the server crossed into (or out of) load shedding.
	EvShed
	// EvReap: an idle connection was reaped.
	EvReap
	// EvChecksum: an inbound payload failed its CRC32C check.
	EvChecksum
	// EvNodeState: a membership state transition (alive/suspect/dead).
	EvNodeState
	// EvReassign: a dead node's shards were reassigned.
	EvReassign
	// EvMoveResume: a coordinator replica that won the lease picked up an
	// in-flight MoveShard from the replicated log and is re-driving it.
	EvMoveResume
	// EvCtrlElect: a control-plane replica won an election at a new term.
	EvCtrlElect
	// EvCtrlLease: the elected leader acquired (first renewed) its quorum
	// lease and activated the coordinator.
	EvCtrlLease
	// EvCtrlDepose: a leader stepped down (higher term seen or lease
	// expired without quorum).
	EvCtrlDepose
	// EvCtrlCommit: a replicated control-plane log entry was applied.
	EvCtrlCommit
	// EvCtrlSnapshot: a replica installed a state snapshot from the
	// leader (late-joiner catch-up past the compaction base).
	EvCtrlSnapshot
	// EvCtrlPeerDead: autopilot declared a control-plane peer dead and
	// proposed its removal from the replica set.
	EvCtrlPeerDead
	// EvVolume: a volume-layer lifecycle operation (create, delete,
	// snapshot, clone, diff stream).
	EvVolume
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"", "promote", "fence", "epoch", "map-install",
	"move-prepare", "move-catchup", "move-cutover", "move-drain",
	"move-done", "move-abort",
	"shed", "reap", "checksum-error", "node-state", "reassign",
	"move-resume", "ctrl-elect", "ctrl-lease", "ctrl-depose",
	"ctrl-commit", "ctrl-snapshot", "ctrl-peer-dead", "volume",
}

// String names the event kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one journal entry.
type Event struct {
	// Seq is the journal-assigned sequence number (monotonic per
	// journal; the /events ordering key).
	Seq uint64 `json:"seq"`
	// TimeNS is the journal clock's timestamp (wall ns by default).
	TimeNS int64 `json:"time_ns"`
	// Kind classifies the event.
	Kind EventKind `json:"-"`
	// Node names the process the event concerns (or was recorded by).
	Node string `json:"node,omitempty"`
	// Shard is the shard the event concerns (-1: not shard-scoped).
	Shard int `json:"shard"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail,omitempty"`
}

// MarshalJSON renders Kind by name.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event
	return json.Marshal(struct {
		Kind string `json:"kind"`
		alias
	}{e.Kind.String(), alias(e)})
}

// Journal is a bounded, typed ring of cluster events: promotions,
// fences, epoch bumps, map installs, MoveShard phase transitions, sheds,
// reaps, checksum errors. Safe for concurrent use; recording is a mutex
// plus a slot write, cheap enough for every control-plane transition
// (data-path code records only state *changes*, never per-request).
type Journal struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total records; buf[next%len] is the next slot
	clock func() int64
}

// NewJournal creates a journal holding the most recent capacity events.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Journal{
		buf:   make([]Event, capacity),
		clock: func() int64 { return time.Now().UnixNano() },
	}
}

// SetClock replaces the timestamp source (tests, simulated time).
func (j *Journal) SetClock(clock func() int64) {
	j.mu.Lock()
	j.clock = clock
	j.mu.Unlock()
}

// Record appends an event. Nil-safe: a nil journal drops the event, so
// emitters don't need wiring guards.
func (j *Journal) Record(kind EventKind, node string, shard int, format string, args ...any) {
	if j == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	j.mu.Lock()
	e := Event{
		Seq:    j.next,
		TimeNS: j.clock(),
		Kind:   kind,
		Node:   node,
		Shard:  shard,
		Detail: detail,
	}
	j.buf[j.next%uint64(len(j.buf))] = e
	j.next++
	j.mu.Unlock()
}

// Count returns the total number of events recorded (including ones the
// ring has since overwritten).
func (j *Journal) Count() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Recent returns up to n most recent events, OLDEST first (reading order:
// the journal reads like a log).
func (j *Journal) Recent(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	have := int(j.next)
	if have > len(j.buf) {
		have = len(j.buf)
	}
	if n > have || n <= 0 {
		n = have
	}
	out := make([]Event, 0, n)
	for i := n - 1; i >= 0; i-- {
		out = append(out, j.buf[(j.next-1-uint64(i))%uint64(len(j.buf))])
	}
	return out
}

// WriteJSON renders the most recent n events (0: everything retained) as
// a JSON array, oldest first.
func (j *Journal) WriteJSON(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j.Recent(n))
}
