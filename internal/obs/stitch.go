package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Stitching (DESIGN.md §14): each process keeps its own span Ring, each
// stamped against its own clock. A collector gathers the union of
// TraceSpans(trace) across rings and Stitch links them into one
// cross-node timeline by span identity — Parent span ids, not
// timestamps, define the hop order, so clock skew between nodes cannot
// scramble the tree. Within one hop the span's own Stamps still
// decompose its local latency (queue-wait, device, tx).

// TimelineHop is one hop of a stitched trace: a span plus its depth in
// the parent tree (root = 0).
type TimelineHop struct {
	Span  Span
	Depth int
}

// Timeline is one distributed request assembled from per-node spans.
type Timeline struct {
	Trace uint64
	// Hops is the parent-first (depth-first) hop sequence: client root,
	// then each downstream hop under the span that forwarded to it.
	Hops []TimelineHop
	// Orphans counts spans whose Parent was not found in the collected
	// set (ring overwrote the parent, or a ring was not collected); they
	// are appended as extra roots rather than dropped.
	Orphans int
}

// Stitch assembles the spans carrying the given trace id into one
// timeline. Spans with other trace ids are ignored; duplicates (the same
// node+hop+span id collected twice) collapse.
func Stitch(trace uint64, spans []Span) Timeline {
	tl := Timeline{Trace: trace}
	if trace == 0 {
		return tl
	}
	type key struct {
		node string
		id   uint64
		hop  uint8
	}
	seen := make(map[key]bool)
	var set []Span
	ids := make(map[uint64]bool)
	for _, sp := range spans {
		if sp.Trace != trace {
			continue
		}
		k := key{sp.Node, sp.ID, sp.Hop}
		if seen[k] {
			continue
		}
		seen[k] = true
		set = append(set, sp)
		ids[sp.ID] = true
	}
	if len(set) == 0 {
		return tl
	}

	// children[parent span id] — order children deterministically by hop
	// kind (serve before redirect before replica before relay), then id.
	children := make(map[uint64][]int)
	var roots []int
	for i, sp := range set {
		if sp.Parent != 0 && ids[sp.Parent] && sp.Parent != sp.ID {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			if sp.Parent != 0 {
				tl.Orphans++
			}
			roots = append(roots, i)
		}
	}
	order := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			sa, sb := set[idx[a]], set[idx[b]]
			if sa.Hop != sb.Hop {
				return sa.Hop < sb.Hop
			}
			return sa.ID < sb.ID
		})
	}
	order(roots)

	var walk func(i, depth int)
	walk = func(i, depth int) {
		tl.Hops = append(tl.Hops, TimelineHop{Span: set[i], Depth: depth})
		kids := children[set[i].ID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return tl
}

// Has reports whether the timeline contains a hop of the given kind (on
// the given node, when node is non-empty).
func (t *Timeline) Has(hop uint8, node string) bool {
	for _, h := range t.Hops {
		if h.Span.Hop == hop && (node == "" || h.Span.Node == node) {
			return true
		}
	}
	return false
}

// Nodes returns the distinct node names touched by the trace, in hop
// order.
func (t *Timeline) Nodes() []string {
	var out []string
	seen := map[string]bool{}
	for _, h := range t.Hops {
		if !seen[h.Span.Node] {
			seen[h.Span.Node] = true
			out = append(out, h.Span.Node)
		}
	}
	return out
}

// WriteText renders the timeline, one hop per line, indented by depth,
// with each hop's local latency breakdown:
//
//	trace 01c3… across client,node0,node1
//	  client  client  op=write total=812.0us
//	    node0  serve  op=write total=640.0us parse=1.0us admit=12.0us ...
//	      node1  replica  op=write total=120.0us ...
func (t *Timeline) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x across %s (%d hops", t.Trace,
		strings.Join(t.Nodes(), ","), len(t.Hops))
	if t.Orphans > 0 {
		fmt.Fprintf(&b, ", %d orphaned", t.Orphans)
	}
	b.WriteString(")\n")
	for _, h := range t.Hops {
		sp := h.Span
		op := "read"
		if sp.Write {
			op = "write"
		}
		fmt.Fprintf(&b, "%s%-8s %-8s op=%s size=%d total=%.1fus",
			strings.Repeat("  ", h.Depth+1), sp.Node, HopName(sp.Hop), op,
			sp.Size, float64(sp.Total())/1000)
		prev := sp.Stamps[StageArrival]
		for st := StageParse; st < numStages; st++ {
			at := sp.Stamps[st]
			if at == 0 {
				continue
			}
			fmt.Fprintf(&b, " %s=%.1fus", st, float64(at-prev)/1000)
			prev = at
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
