package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Fleet aggregation (DESIGN.md §14, layer 3): a scraper polls every
// node's /snapshot endpoint and folds the per-node registries into one
// cluster-wide view — per-shard IOPS, redirect rate, replication
// ack-lag, migration progress, per-tenant SLO burn. Rates are computed
// from counter deltas between successive polls against the scraper's own
// wall clock, so the per-node registry clocks (ns since server start)
// never need to be comparable.

// FleetNode names one scrape target: the node name and its /snapshot
// URL (e.g. "http://10.0.0.1:9090/snapshot").
type FleetNode struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// NodeView is one node's slice of the cluster view.
type NodeView struct {
	Name string `json:"name"`
	// Err is non-empty when the poll failed; the rest of the fields are
	// then stale/zero.
	Err        string  `json:"err,omitempty"`
	Epoch      int     `json:"epoch"`
	Backup     bool    `json:"backup,omitempty"`
	Fenced     bool    `json:"fenced,omitempty"`
	MapVersion int     `json:"map_version"`
	Conns      int     `json:"conns"`
	Tenants    int     `json:"tenants"`
	ClientIOPS float64 `json:"client_iops"`
	// InternalIOPS is cluster-internal write load: replication applies
	// (path="replicate") plus migration-relay forwards (path="migrate") —
	// the traffic per-tenant request metrics used to undercount.
	InternalIOPS float64 `json:"internal_iops"`
	RedirectsPS  float64 `json:"redirects_ps"`
	ShedPS       float64 `json:"shed_ps"`
	// AckLagP95NS is the p95 of the primary->backup replication ack lag.
	AckLagP95NS int64 `json:"ack_lag_p95_ns"`
	// MigrPending is the node's in-flight migration forwards awaiting a
	// sink ack (the MoveShard drain signal).
	MigrPending int `json:"migr_pending"`
	// MigrForwardPS is the rate of writes the node is relaying into a
	// live migration window.
	MigrForwardPS float64 `json:"migr_forward_ps"`
}

// CtrlView is one control-plane replica's health, parsed from its
// ctrl_* gauges. PeerLag is only populated on the leader: commit_index
// minus the replicated match index per follower (entries the follower
// still has to catch up).
type CtrlView struct {
	Node        string `json:"node"`
	Role        string `json:"role"`
	Term        int    `json:"term"`
	LeaseValid  bool   `json:"lease_valid"`
	CommitIndex int    `json:"commit_index"`
	LastIndex   int    `json:"last_index"`
	MapVersion  int    `json:"map_version"`
	// Leader is the peer address this replica believes holds the lease.
	Leader  string         `json:"leader,omitempty"`
	PeerLag map[string]int `json:"peer_lag,omitempty"`
}

// ShardView is one shard's aggregate load across every node that served
// it during the poll interval (source and destination both contribute
// during a live move).
type ShardView struct {
	Shard     int     `json:"shard"`
	ReadIOPS  float64 `json:"read_iops"`
	WriteIOPS float64 `json:"write_iops"`
	// Nodes lists the serving nodes this interval, busiest first.
	Nodes []string `json:"nodes,omitempty"`
}

// TenantView is one tenant's SLO burn on one node.
type TenantView struct {
	Node   string `json:"node"`
	Tenant int    `json:"tenant"`
	// Burn is the tenant's SLO error-budget burn rate: the fraction of
	// its recent requests exceeding its p95 latency SLO, divided by the
	// 5% budget. 1.0 = consuming the budget exactly; >1 = violating.
	Burn float64 `json:"burn"`
}

// ClusterView is the fleet-wide aggregate served at /cluster.
type ClusterView struct {
	TimeNS int64 `json:"time_ns"`
	// IntervalNS is the rate base: time since the previous poll (0 on
	// the first poll — rates are then zero).
	IntervalNS int64        `json:"interval_ns"`
	Nodes      []NodeView   `json:"nodes"`
	Ctrl       []CtrlView   `json:"ctrl,omitempty"`
	Shards     []ShardView  `json:"shards,omitempty"`
	Tenants    []TenantView `json:"tenants,omitempty"`
}

// fleetSample is one node's previous scrape (for rate deltas).
type fleetSample struct {
	at       time.Time
	counters map[string]float64
}

// Fleet polls a set of nodes' /snapshot endpoints into ClusterViews.
type Fleet struct {
	client *http.Client

	mu    sync.Mutex
	nodes []FleetNode
	prev  map[string]fleetSample
	last  *ClusterView
}

// NewFleet creates a scraper over the given nodes.
func NewFleet(nodes []FleetNode) *Fleet {
	return &Fleet{
		client: &http.Client{Timeout: 5 * time.Second},
		nodes:  append([]FleetNode(nil), nodes...),
		prev:   make(map[string]fleetSample),
	}
}

// SetNodes replaces the scrape target set (membership changes).
func (f *Fleet) SetNodes(nodes []FleetNode) {
	f.mu.Lock()
	f.nodes = append([]FleetNode(nil), nodes...)
	f.mu.Unlock()
}

// metricKey builds the identity of one metric instance within a dump.
func metricKey(m *SnapshotMetric) string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := m.Name
	for _, k := range keys {
		s += "|" + k + "=" + m.Labels[k]
	}
	return s
}

// Poll scrapes every node once and returns the aggregated view. Rates
// need two polls: the first returns zero rates with IntervalNS 0.
func (f *Fleet) Poll() *ClusterView {
	f.mu.Lock()
	nodes := append([]FleetNode(nil), f.nodes...)
	f.mu.Unlock()

	type result struct {
		node FleetNode
		dump *SnapshotDump
		err  error
	}
	results := make([]result, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n FleetNode) {
			defer wg.Done()
			results[i] = result{node: n}
			resp, err := f.client.Get(n.URL)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("status %s", resp.Status)
				return
			}
			var dump SnapshotDump
			if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
				results[i].err = err
				return
			}
			results[i].dump = &dump
		}(i, n)
	}
	wg.Wait()

	now := time.Now()
	view := &ClusterView{TimeNS: now.UnixNano()}
	shardAgg := map[int]*ShardView{}
	shardNodes := map[int]map[string]float64{}

	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range results {
		nv := NodeView{Name: r.node.Name}
		if r.err != nil {
			nv.Err = r.err.Error()
			view.Nodes = append(view.Nodes, nv)
			continue
		}
		cur := fleetSample{at: now, counters: map[string]float64{}}
		prev, hasPrev := f.prev[r.node.Name]
		var dt float64
		if hasPrev {
			dt = now.Sub(prev.at).Seconds()
			if iv := now.Sub(prev.at).Nanoseconds(); iv > view.IntervalNS {
				view.IntervalNS = iv
			}
		}
		rate := func(key string, v float64) float64 {
			cur.counters[key] = v
			if !hasPrev || dt <= 0 {
				return 0
			}
			d := v - prev.counters[key]
			if d < 0 {
				return 0 // counter reset (node restart)
			}
			return d / dt
		}
		var cv *CtrlView
		ctrlMatch := map[string]int{}
		ctrl := func() *CtrlView {
			if cv == nil {
				cv = &CtrlView{Node: nv.Name, Role: "follower"}
			}
			return cv
		}
		for i := range r.dump.Metrics {
			m := &r.dump.Metrics[i]
			key := metricKey(m)
			switch m.Name {
			case "cluster_epoch":
				nv.Epoch = int(m.Value)
			case "cluster_backup_role":
				nv.Backup = m.Value != 0
			case "cluster_fenced":
				nv.Fenced = m.Value != 0
			case "shard_map_version":
				// Served both by nodes (gauge, no labels) and by a
				// coordinator registry (per-node labels); only adopt the
				// node's own.
				if len(m.Labels) == 0 {
					nv.MapVersion = int(m.Value)
				}
			case "srv_conns":
				nv.Conns = int(m.Value)
			case "srv_tenants":
				nv.Tenants = int(m.Value)
			case "srv_requests_total":
				if m.Labels["path"] == "" {
					nv.ClientIOPS += rate(key, m.Value)
				} else {
					nv.InternalIOPS += rate(key, m.Value)
				}
			case "wrong_shard_redirects":
				nv.RedirectsPS = rate(key, m.Value)
			case "requests_shed":
				nv.ShedPS = rate(key, m.Value)
			case "repl_ack_lag_ns":
				if m.Hist != nil {
					nv.AckLagP95NS = m.Hist.P95
				}
			case "migr_pending":
				nv.MigrPending = int(m.Value)
			case "migr_forwarded":
				nv.MigrForwardPS = rate(key, m.Value)
			case "srv_shard_requests_total":
				shard, err := strconv.Atoi(m.Labels["shard"])
				if err != nil {
					continue
				}
				r := rate(key, m.Value)
				sv := shardAgg[shard]
				if sv == nil {
					sv = &ShardView{Shard: shard}
					shardAgg[shard] = sv
					shardNodes[shard] = map[string]float64{}
				}
				if m.Labels["op"] == "write" {
					sv.WriteIOPS += r
				} else {
					sv.ReadIOPS += r
				}
				shardNodes[shard][nv.Name] += r
			case "ctrl_term":
				ctrl().Term = int(m.Value)
			case "ctrl_role":
				switch int(m.Value) {
				case 2:
					ctrl().Role = "leader"
				case 1:
					ctrl().Role = "candidate"
				default:
					ctrl().Role = "follower"
				}
			case "ctrl_lease_valid":
				ctrl().LeaseValid = m.Value != 0
			case "ctrl_commit_index":
				ctrl().CommitIndex = int(m.Value)
			case "ctrl_last_index":
				ctrl().LastIndex = int(m.Value)
			case "ctrl_map_version":
				ctrl().MapVersion = int(m.Value)
			case "ctrl_leader_is":
				if m.Value != 0 {
					ctrl().Leader = m.Labels["peer"]
				}
			case "ctrl_peer_match":
				ctrl()
				ctrlMatch[m.Labels["peer"]] = int(m.Value)
			case "srv_tenant_slo_burn":
				ten, err := strconv.Atoi(m.Labels["tenant"])
				if err != nil {
					continue
				}
				view.Tenants = append(view.Tenants, TenantView{
					Node: nv.Name, Tenant: ten, Burn: m.Value,
				})
			}
		}
		if cv != nil {
			// Per-follower lag is a leader-side view: commit index minus
			// the follower's replicated match (followers export zeros).
			if cv.Role == "leader" && len(ctrlMatch) > 0 {
				cv.PeerLag = make(map[string]int, len(ctrlMatch))
				for peer, match := range ctrlMatch {
					lag := cv.CommitIndex - match
					if lag < 0 {
						lag = 0
					}
					cv.PeerLag[peer] = lag
				}
			}
			view.Ctrl = append(view.Ctrl, *cv)
		}
		f.prev[r.node.Name] = cur
		view.Nodes = append(view.Nodes, nv)
	}

	for shard, sv := range shardAgg {
		byLoad := shardNodes[shard]
		names := make([]string, 0, len(byLoad))
		for n, load := range byLoad {
			if load > 0 {
				names = append(names, n)
			}
		}
		sort.Slice(names, func(i, j int) bool {
			if byLoad[names[i]] != byLoad[names[j]] {
				return byLoad[names[i]] > byLoad[names[j]]
			}
			return names[i] < names[j]
		})
		sv.Nodes = names
		view.Shards = append(view.Shards, *sv)
	}
	sort.Slice(view.Ctrl, func(i, j int) bool { return view.Ctrl[i].Node < view.Ctrl[j].Node })
	sort.Slice(view.Shards, func(i, j int) bool { return view.Shards[i].Shard < view.Shards[j].Shard })
	sort.Slice(view.Tenants, func(i, j int) bool {
		if view.Tenants[i].Node != view.Tenants[j].Node {
			return view.Tenants[i].Node < view.Tenants[j].Node
		}
		return view.Tenants[i].Tenant < view.Tenants[j].Tenant
	})
	f.last = view
	return view
}

// Handler serves the fleet view as JSON (mount at /cluster). Every GET
// triggers a fresh poll sweep; rates cover the gap since the previous
// request, so a dashboard polling at its display interval gets rates
// over exactly that window.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		view := f.Poll()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
}
