package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/reflex-go/reflex/internal/hist"
	"github.com/reflex-go/reflex/internal/sim"
)

func TestSeriesSampleAndCSV(t *testing.T) {
	s := NewSeries("test")
	var x float64
	s.AddColumn("x", func() float64 { return x })
	s.AddColumn("twice_x", func() float64 { return 2 * x })
	for i := 1; i <= 3; i++ {
		x = float64(i)
		s.Sample(int64(i) * 1000_000) // 1ms, 2ms, 3ms
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	col, ok := s.Column("twice_x")
	if !ok || len(col) != 3 || col[2] != 6 {
		t.Fatalf("twice_x = %v, %v", col, ok)
	}
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "time_us,x,twice_x" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1000,1,2" || lines[3] != "3000,3,6" {
		t.Fatalf("rows = %q", lines[1:])
	}
}

func TestAddColumnAfterSamplePanics(t *testing.T) {
	s := NewSeries("test")
	s.AddColumn("a", func() float64 { return 0 })
	s.Sample(1)
	defer func() {
		if recover() == nil {
			t.Error("AddColumn after Sample did not panic")
		}
	}()
	s.AddColumn("b", func() float64 { return 0 })
}

func TestSampleSim(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSeries("sim")
	s.AddColumn("now_ms", func() float64 { return float64(eng.Now()) / float64(sim.Millisecond) })
	SampleSim(eng, s, sim.Millisecond, 10*sim.Millisecond)
	eng.Run()
	if s.Len() != 10 {
		t.Fatalf("samples = %d, want 10", s.Len())
	}
	times, rows := s.Rows()
	for i := range times {
		if times[i] != int64(i+1)*int64(sim.Millisecond) {
			t.Fatalf("times[%d] = %d", i, times[i])
		}
		if rows[i][0] != float64(i+1) {
			t.Fatalf("rows[%d] = %v", i, rows[i])
		}
	}
}

func TestStartTickerStop(t *testing.T) {
	s := NewSeries("wall")
	s.AddColumn("one", func() float64 { return 1 })
	stop := s.StartTicker(time.Millisecond, func() int64 { return time.Now().UnixNano() })
	time.Sleep(20 * time.Millisecond)
	stop()
	n := s.Len()
	if n < 2 {
		t.Fatalf("expected at least a couple of samples, got %d", n)
	}
	stop() // idempotent
	time.Sleep(5 * time.Millisecond)
	if s.Len() != n {
		t.Fatal("sampling continued after stop")
	}
}

func TestWindowedQuantile(t *testing.T) {
	h := hist.New()
	col := WindowedQuantile(h, 0.95)

	// First window: everything around 100us.
	for i := 0; i < 1000; i++ {
		h.Record(100_000)
	}
	if v := col(); v < 95 || v > 105 {
		t.Fatalf("window 1 p95 = %vus, want ~100us", v)
	}
	// Second window: a different regime; cumulative would blend the two,
	// windowed must see only the new samples.
	for i := 0; i < 1000; i++ {
		h.Record(1_000_000)
	}
	if v := col(); v < 950 || v > 1050 {
		t.Fatalf("window 2 p95 = %vus, want ~1000us", v)
	}
	// Empty window reports zero.
	if v := col(); v != 0 {
		t.Fatalf("empty window p95 = %v", v)
	}
}

func TestWindowedRate(t *testing.T) {
	var v float64
	var now int64
	rate := WindowedRate(func() float64 { return v }, func() int64 { return now })
	if got := rate(); got != 0 {
		t.Fatalf("first tick = %v, want 0", got)
	}
	v, now = 500, int64(sim.Second)
	if got := rate(); got != 500 {
		t.Fatalf("rate = %v, want 500/s", got)
	}
	v, now = 750, int64(sim.Second)+int64(500*sim.Millisecond)
	if got := rate(); got != 500 {
		t.Fatalf("rate = %v, want 500/s", got)
	}
}
