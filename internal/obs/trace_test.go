package obs

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func stampedSpan(id uint64, total int64) Span {
	sp := Span{ID: id, Tenant: 1, Size: 4096}
	sp.Mark(StageArrival, 1000)
	sp.Mark(StageParse, 1200)
	sp.Mark(StageAdmit, 1500)
	sp.Mark(StageSubmit, 1600)
	sp.Mark(StageDevDone, 900+total)
	sp.Mark(StageTx, 1000+total)
	return sp
}

func TestSpanTotalAndBreakdown(t *testing.T) {
	sp := stampedSpan(7, 100_000) // 100us total
	if sp.Total() != 100_000 {
		t.Fatalf("Total = %d", sp.Total())
	}
	bd := sp.Breakdown()
	for _, want := range []string{"req=7", "tenant=1", "op=read", "size=4096", "total=100.0us", "parse=", "admit=", "tx="} {
		if !strings.Contains(bd, want) {
			t.Errorf("breakdown missing %q: %s", want, bd)
		}
	}
	// Skipped stages (zero stamps) are omitted.
	var bare Span
	bare.Mark(StageArrival, 100)
	bare.Mark(StageTx, 300)
	if bd := bare.Breakdown(); strings.Contains(bd, "admit=") {
		t.Errorf("unstamped stage rendered: %s", bd)
	}
	if (&Span{}).Total() != 0 {
		t.Fatal("incomplete span must report 0 total")
	}
}

func TestSpanJSON(t *testing.T) {
	sp := stampedSpan(9, 50_000)
	sp.Write = true
	b, err := sp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":9`, `"op":"write"`, `"total_ns":50000`, `"arrival"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON missing %q: %s", want, b)
		}
	}
}

func TestRingRecent(t *testing.T) {
	r := NewRing(4, 2)
	for i := uint64(1); i <= 6; i++ {
		r.Push(stampedSpan(i, int64(i)*1000))
	}
	if r.Count() != 6 {
		t.Fatalf("Count = %d", r.Count())
	}
	recent := r.Recent(10) // capped at capacity
	if len(recent) != 4 {
		t.Fatalf("Recent len = %d", len(recent))
	}
	// Newest first: 6, 5, 4, 3.
	for i, want := range []uint64{6, 5, 4, 3} {
		if recent[i].ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d", i, recent[i].ID, want)
		}
	}
}

// TestRingSlowest compares the top-K heap against a brute-force sort over a
// random push sequence.
func TestRingSlowest(t *testing.T) {
	const k = 8
	r := NewRing(64, k)
	rng := rand.New(rand.NewSource(17))
	var totals []int64
	for i := uint64(1); i <= 500; i++ {
		total := 1000 + rng.Int63n(10_000_000)
		totals = append(totals, total)
		r.Push(stampedSpan(i, total))
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] > totals[j] })
	slow := r.Slowest()
	if len(slow) != k {
		t.Fatalf("Slowest len = %d, want %d", len(slow), k)
	}
	for i, sp := range slow {
		if sp.Total() != totals[i] {
			t.Fatalf("slow[%d].Total = %d, want %d", i, sp.Total(), totals[i])
		}
	}
}

func TestWriteSlowLog(t *testing.T) {
	r := NewRing(16, 4)
	for i := uint64(1); i <= 10; i++ {
		r.Push(stampedSpan(i, int64(i)*100_000))
	}
	var b strings.Builder
	if err := r.WriteSlowLog(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("slow log lines = %d, want 4", len(lines))
	}
	// Slowest first, with per-span breakdowns.
	if !strings.HasPrefix(lines[0], "#1 req=10") || !strings.Contains(lines[0], "total=1000.0us") {
		t.Fatalf("line 1 = %q", lines[0])
	}
}

func TestStageString(t *testing.T) {
	if StageAdmit.String() != "admit" || StageTx.String() != "tx" {
		t.Fatal("stage names wrong")
	}
	if Stage(200).String() != "stage200" {
		t.Fatal("out-of-range stage name wrong")
	}
}
