package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// snapshotServer serves a fixed SnapshotDump at /snapshot.
func snapshotServer(t *testing.T, dump SnapshotDump) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(dump)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestFleetCtrlView: the fleet scraper folds ctrl_* gauges into a
// per-replica control-plane health view, with per-follower lag computed
// from the leader's match indices.
func TestFleetCtrlView(t *testing.T) {
	leader := snapshotServer(t, SnapshotDump{Metrics: []SnapshotMetric{
		{Name: "ctrl_term", Kind: "gauge", Value: 7},
		{Name: "ctrl_role", Kind: "gauge", Value: 2},
		{Name: "ctrl_lease_valid", Kind: "gauge", Value: 1},
		{Name: "ctrl_commit_index", Kind: "gauge", Value: 42},
		{Name: "ctrl_last_index", Kind: "gauge", Value: 43},
		{Name: "ctrl_map_version", Kind: "gauge", Value: 9},
		{Name: "ctrl_leader_is", Kind: "gauge", Value: 1, Labels: map[string]string{"peer": "a:1"}},
		{Name: "ctrl_peer_match", Kind: "gauge", Value: 42, Labels: map[string]string{"peer": "b:1"}},
		{Name: "ctrl_peer_match", Kind: "gauge", Value: 40, Labels: map[string]string{"peer": "c:1"}},
	}})
	follower := snapshotServer(t, SnapshotDump{Metrics: []SnapshotMetric{
		{Name: "ctrl_term", Kind: "gauge", Value: 7},
		{Name: "ctrl_role", Kind: "gauge", Value: 0},
		{Name: "ctrl_lease_valid", Kind: "gauge", Value: 0},
		{Name: "ctrl_commit_index", Kind: "gauge", Value: 40},
		{Name: "ctrl_leader_is", Kind: "gauge", Value: 1, Labels: map[string]string{"peer": "a:1"}},
		// Followers export zero match gauges; they must not grow PeerLag.
		{Name: "ctrl_peer_match", Kind: "gauge", Value: 0, Labels: map[string]string{"peer": "b:1"}},
	}})
	plain := snapshotServer(t, SnapshotDump{Metrics: []SnapshotMetric{
		{Name: "srv_conns", Kind: "gauge", Value: 3},
	}})

	f := NewFleet([]FleetNode{
		{Name: "n0", URL: leader.URL},
		{Name: "n1", URL: follower.URL},
		{Name: "n2", URL: plain.URL},
	})
	view := f.Poll()
	if len(view.Ctrl) != 2 {
		t.Fatalf("ctrl views = %d, want 2 (data-only node must not appear)", len(view.Ctrl))
	}
	ld := view.Ctrl[0]
	if ld.Node != "n0" || ld.Role != "leader" || ld.Term != 7 || !ld.LeaseValid ||
		ld.CommitIndex != 42 || ld.LastIndex != 43 || ld.MapVersion != 9 ||
		ld.Leader != "a:1" {
		t.Fatalf("leader view wrong: %+v", ld)
	}
	if ld.PeerLag["b:1"] != 0 || ld.PeerLag["c:1"] != 2 {
		t.Fatalf("peer lag wrong: %v", ld.PeerLag)
	}
	fl := view.Ctrl[1]
	if fl.Node != "n1" || fl.Role != "follower" || fl.LeaseValid ||
		fl.CommitIndex != 40 || fl.Leader != "a:1" {
		t.Fatalf("follower view wrong: %+v", fl)
	}
	if fl.PeerLag != nil {
		t.Fatalf("follower grew a PeerLag map: %v", fl.PeerLag)
	}
	if len(view.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(view.Nodes))
	}
}
