package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/reflex-go/reflex/internal/hist"
)

// quantiles exposed for histogram families, matching the paper's reporting
// (p95 is the SLO percentile; p50/p99/p999 bracket the tail).
var exposedQuantiles = []float64{0.50, 0.95, 0.99, 0.999}

// promEscaper escapes label values per the Prometheus text exposition
// format: backslash, double quote and newline — and nothing else. Go's
// %q is NOT equivalent: it escapes every non-printable (and non-ASCII)
// rune as \xNN/\uNNNN sequences Prometheus parsers reject or mangle.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// writeLabels renders {k="v",...} including an optional extra pair.
func writeLabels(b *strings.Builder, ls []Label, extraK, extraV string) {
	if len(ls) == 0 && extraK == "" {
		return
	}
	b.WriteByte('{')
	first := true
	for _, l := range sortedLabels(ls) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		promEscaper.WriteString(b, l.Value)
		b.WriteByte('"')
	}
	if extraK != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		promEscaper.WriteString(b, extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func writeValue(b *strings.Builder, v float64) {
	if v == float64(int64(v)) {
		fmt.Fprintf(b, " %d\n", int64(v))
		return
	}
	fmt.Fprintf(b, " %g\n", v)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (histograms as summaries with quantile children).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	r.visit(func(f *family) {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.counters {
			b.WriteString(f.name)
			writeLabels(&b, c.labels, "", "")
			writeValue(&b, c.Value())
		}
		for _, g := range f.gauges {
			b.WriteString(f.name)
			writeLabels(&b, g.labels, "", "")
			writeValue(&b, g.Value())
		}
		for _, h := range f.hists {
			h.mu.Lock()
			qs := h.h.Quantiles(exposedQuantiles)
			count := h.h.Count()
			sum := h.h.Sum()
			h.mu.Unlock()
			for i, q := range exposedQuantiles {
				b.WriteString(f.name)
				writeLabels(&b, h.labels, "quantile", fmt.Sprintf("%g", q))
				writeValue(&b, float64(qs[i]))
			}
			b.WriteString(f.name + "_sum")
			writeLabels(&b, h.labels, "", "")
			writeValue(&b, float64(sum))
			b.WriteString(f.name + "_count")
			writeLabels(&b, h.labels, "", "")
			writeValue(&b, float64(count))
		}
	})
	_, err := io.WriteString(w, b.String())
	return err
}

// SnapshotMetric is one metric in a JSON snapshot.
type SnapshotMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Hist   *hist.Snapshot    `json:"hist,omitempty"`
}

// SnapshotDump is the full JSON-able state of a registry at one instant.
type SnapshotDump struct {
	// Time is the registry clock in nanoseconds (virtual time for sim
	// registries, time since start for the real server).
	Time    int64            `json:"time_ns"`
	Metrics []SnapshotMetric `json:"metrics"`
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() SnapshotDump {
	dump := SnapshotDump{Time: r.Now()}
	r.visit(func(f *family) {
		for _, c := range f.counters {
			dump.Metrics = append(dump.Metrics, SnapshotMetric{
				Name: f.name, Kind: f.kind.String(), Labels: labelMap(c.labels), Value: c.Value(),
			})
		}
		for _, g := range f.gauges {
			dump.Metrics = append(dump.Metrics, SnapshotMetric{
				Name: f.name, Kind: f.kind.String(), Labels: labelMap(g.labels), Value: g.Value(),
			})
		}
		for _, h := range f.hists {
			s := h.Snapshot()
			dump.Metrics = append(dump.Metrics, SnapshotMetric{
				Name: f.name, Kind: f.kind.String(), Labels: labelMap(h.labels),
				Value: float64(s.Count), Hist: &s,
			})
		}
	})
	return dump
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
