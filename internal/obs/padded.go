package obs

import "sync/atomic"

// PaddedInt64 is a cache-line padded atomic counter for per-core
// shared-nothing statistics (queue debt, placement counts, batch
// telemetry). Per-core state published every scheduling round must not
// share a cache line with its siblings: unpadded atomics laid out in an
// array put every core's hot counter on the same line, and the resulting
// coherence traffic is exactly the cross-core coupling a shared-nothing
// dataplane exists to avoid.
//
// The pads assume 64-byte cache lines (x86-64, and the common arm64
// configuration); on larger-line machines the padding merely shrinks the
// benefit, never breaks correctness.
type PaddedInt64 struct {
	_ [64]byte
	v atomic.Int64
	_ [56]byte
}

// Load returns the current value.
func (p *PaddedInt64) Load() int64 { return p.v.Load() }

// Store sets the value.
func (p *PaddedInt64) Store(x int64) { p.v.Store(x) }

// Add adjusts the value by d and returns the result.
func (p *PaddedInt64) Add(d int64) int64 { return p.v.Add(d) }
