package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/reflex-go/reflex/internal/hist"
	"github.com/reflex-go/reflex/internal/sim"
)

// Column is one time-series column: a name and a sampling function
// evaluated at each tick.
type Column struct {
	Name string
	Fn   func() float64
}

// Series is a sampled multi-column time series. Safe for concurrent
// sampling and reading (the real server samples from a ticker goroutine).
type Series struct {
	Name string

	mu   sync.Mutex
	cols []Column
	// times holds the sample timestamps in nanoseconds.
	times []int64
	rows  [][]float64
}

// NewSeries creates an empty series.
func NewSeries(name string, cols ...Column) *Series {
	return &Series{Name: name, cols: cols}
}

// AddColumn appends a column. Must be called before the first Sample.
func (s *Series) AddColumn(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rows) > 0 {
		panic("obs: AddColumn after sampling started")
	}
	s.cols = append(s.cols, Column{Name: name, Fn: fn})
}

// Sample evaluates every column at time now and appends a row.
func (s *Series) Sample(now int64) {
	s.mu.Lock()
	cols := s.cols
	s.mu.Unlock()
	// Evaluate outside the lock: column functions may take other locks.
	row := make([]float64, len(cols))
	for i, c := range cols {
		row[i] = c.Fn()
	}
	s.mu.Lock()
	s.times = append(s.times, now)
	s.rows = append(s.rows, row)
	s.mu.Unlock()
}

// Len returns the number of samples taken.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// Columns returns the column names (without the leading time column).
func (s *Series) Columns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Rows returns copies of the timestamps and sampled rows.
func (s *Series) Rows() ([]int64, [][]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	times := append([]int64(nil), s.times...)
	rows := make([][]float64, len(s.rows))
	for i, r := range s.rows {
		rows[i] = append([]float64(nil), r...)
	}
	return times, rows
}

// Column returns one column's samples by name, or false.
func (s *Series) Column(name string) ([]float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range s.cols {
		if c.Name == name {
			out := make([]float64, len(s.rows))
			for j, r := range s.rows {
				out[j] = r[i]
			}
			return out, true
		}
	}
	return nil, false
}

// WriteCSV renders the series with a time_us first column.
func (s *Series) WriteCSV(w io.Writer) error {
	times, rows := s.Rows()
	cols := s.Columns()
	var b strings.Builder
	b.WriteString("time_us")
	for _, c := range cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for i, row := range rows {
		fmt.Fprintf(&b, "%d", times[i]/1000)
		for _, v := range row {
			if v == float64(int64(v)) {
				fmt.Fprintf(&b, ",%d", int64(v))
			} else {
				fmt.Fprintf(&b, ",%.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the series as {name, columns, times_ns, rows}.
func (s *Series) WriteJSON(w io.Writer) error {
	times, rows := s.Rows()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Name    string      `json:"name"`
		Columns []string    `json:"columns"`
		TimesNS []int64     `json:"times_ns"`
		Rows    [][]float64 `json:"rows"`
	}{s.Name, s.Columns(), times, rows})
}

// SampleSim schedules periodic sampling of the series on a simulation
// engine from the current time until the given horizon (inclusive of the
// first tick one period from now).
func SampleSim(eng *sim.Engine, s *Series, period, until sim.Time) {
	if period <= 0 {
		panic("obs: SampleSim period must be positive")
	}
	var tick func()
	tick = func() {
		s.Sample(eng.Now())
		if eng.Now()+period <= until {
			eng.After(period, tick)
		}
	}
	eng.After(period, tick)
}

// StartTicker samples the series from a goroutine every period of wall
// time, timestamping rows with the supplied clock (nanoseconds). The
// returned stop function halts sampling and takes one final sample.
func (s *Series) StartTicker(period time.Duration, clock func() int64) (stop func()) {
	if period <= 0 {
		period = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Sample(clock())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			s.Sample(clock())
		})
	}
}

// WindowedQuantile returns a column function that reports the given
// quantile (microseconds) of the samples recorded into h since the
// previous tick — interval tail latency rather than cumulative, which is
// what SLO-compliance series need.
func WindowedQuantile(h *hist.Hist, q float64) func() float64 {
	var prev *hist.Hist
	return func() float64 {
		cur := h.Clone()
		d := cur.Delta(prev)
		prev = cur
		return float64(d.Quantile(q)) / 1000
	}
}

// WindowedHistQuantile is WindowedQuantile over a registry Histogram.
func WindowedHistQuantile(h *Histogram, q float64) func() float64 {
	var prev *hist.Hist
	var mu sync.Mutex
	return func() float64 {
		cur := h.Clone()
		mu.Lock()
		d := cur.Delta(prev)
		prev = cur
		mu.Unlock()
		return float64(d.Quantile(q)) / 1000
	}
}

// WindowedRate returns a column function reporting the per-second rate of
// a monotonically increasing value since the previous tick, using the
// given clock for elapsed time.
func WindowedRate(value func() float64, clock func() int64) func() float64 {
	var prevV float64
	var prevT int64
	var started bool
	return func() float64 {
		v, t := value(), clock()
		if !started {
			started = true
			prevV, prevT = v, t
			return 0
		}
		dt := t - prevT
		dv := v - prevV
		prevV, prevT = v, t
		if dt <= 0 {
			return 0
		}
		return dv * float64(sim.Second) / float64(dt)
	}
}
