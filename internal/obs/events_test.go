package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestJournalConcurrentWriters hammers one journal from many goroutines
// (run under -race) and checks the ring's accounting stays coherent.
func TestJournalConcurrentWriters(t *testing.T) {
	j := NewJournal(128)
	const writers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Record(EvMapInstall, "node", w, "install %d", i)
				if i%7 == 0 {
					j.Recent(16) // concurrent readers too
					j.Count()
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := j.Count(), uint64(writers*each); got != want {
		t.Fatalf("journal count = %d, want %d", got, want)
	}
	recent := j.Recent(0)
	if len(recent) != 128 {
		t.Fatalf("retained %d events, want full ring of 128", len(recent))
	}
	// Oldest-first ordering with strictly increasing sequence numbers.
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq != recent[i-1].Seq+1 {
			t.Fatalf("recent[%d].Seq = %d after %d, want consecutive", i, recent[i].Seq, recent[i-1].Seq)
		}
	}
	if recent[len(recent)-1].Seq != uint64(writers*each)-1 {
		t.Fatalf("newest seq = %d, want %d", recent[len(recent)-1].Seq, writers*each-1)
	}
}

// TestJournalJSONAndNilSafety covers the wire rendering and the nil-safe
// emitter contract.
func TestJournalJSONAndNilSafety(t *testing.T) {
	var nilJ *Journal
	nilJ.Record(EvPromote, "x", -1, "dropped") // must not panic
	if nilJ.Count() != 0 || nilJ.Recent(5) != nil {
		t.Fatal("nil journal should report empty")
	}

	j := NewJournal(8)
	j.SetClock(func() int64 { return 42 })
	j.Record(EvMoveCutover, "node1", 3, "v%d installed", 7)
	var b strings.Builder
	if err := j.WriteJSON(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"kind": "move-cutover"`, `"node": "node1"`, `"shard": 3`, `"time_ns": 42`, `"detail": "v7 installed"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("journal JSON missing %s:\n%s", want, out)
		}
	}
}

// TestRingTraceSpansConcurrent exercises the trace-filter query racing
// pushes (run under -race).
func TestRingTraceSpansConcurrent(t *testing.T) {
	r := NewRing(256, 4)
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Push(Span{ID: uint64(w*1000 + i), Trace: uint64(w + 1), Node: "n", Hop: HopServe})
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, sp := range r.TraceSpans(2) {
			if sp.Trace != 2 {
				t.Errorf("TraceSpans(2) returned trace %d", sp.Trace)
			}
		}
	}
	close(stop)
	wg.Wait()
	if len(r.TraceSpans(uint64(writers+5))) != 0 {
		t.Fatal("unknown trace id matched spans")
	}
	if r.TraceSpans(0) != nil {
		t.Fatal("trace id 0 must never match (untraced spans)")
	}
}
