package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// Handler returns the registry's Prometheus text-format scrape handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// MuxConfig selects what an exposition mux serves beyond the registry.
type MuxConfig struct {
	Reg  *Registry
	Ring *Ring // nil disables /slow and /traces
	// Journal, when set, serves the cluster event log at /events
	// (?n=COUNT limits to the most recent COUNT events).
	Journal *Journal
	// Cluster, when set, is mounted at /cluster (the fleet aggregation
	// view; see fleet.go).
	Cluster http.Handler
}

// Mux builds the exposition mux:
//
//	/metrics      Prometheus text format
//	/snapshot     registry JSON snapshot
//	/slow         top-K slow-request log (text breakdowns)
//	/traces       recent spans as JSON (?trace=HEXID filters to one trace)
//	/debug/vars   expvar
//	/debug/pprof  runtime profiling
//
// ring may be nil, which disables /slow and /traces. MuxWith adds
// /events and /cluster on top.
func Mux(reg *Registry, ring *Ring) *http.ServeMux {
	return MuxWith(MuxConfig{Reg: reg, Ring: ring})
}

// MuxWith builds the exposition mux from an explicit configuration,
// adding /events (event journal) and /cluster (fleet view) when
// configured.
func MuxWith(cfg MuxConfig) *http.ServeMux {
	reg, ring := cfg.Reg, cfg.Ring
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	if ring != nil {
		mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = ring.WriteSlowLog(w)
		})
		mux.HandleFunc("/traces", func(w http.ResponseWriter, rq *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if t := rq.URL.Query().Get("trace"); t != "" {
				id, err := strconv.ParseUint(t, 16, 64)
				if err != nil {
					http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
					return
				}
				writeSpansJSON(w, ring.TraceSpans(id))
				return
			}
			writeSpansJSON(w, ring.Recent(64))
		})
	}
	if cfg.Journal != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, rq *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			n := 0
			if s := rq.URL.Query().Get("n"); s != "" {
				n, _ = strconv.Atoi(s)
			}
			_ = cfg.Journal.WriteJSON(w, n)
		})
	}
	if cfg.Cluster != nil {
		mux.Handle("/cluster", cfg.Cluster)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeSpansJSON(w http.ResponseWriter, spans []Span) {
	w.Write([]byte("[\n"))
	for i, sp := range spans {
		if i > 0 {
			w.Write([]byte(",\n"))
		}
		b, err := sp.MarshalJSON()
		if err != nil {
			continue
		}
		w.Write(b)
	}
	w.Write([]byte("\n]\n"))
}

// MetricsServer is a live exposition HTTP server.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
}

// Serve starts an HTTP server on addr exposing the registry (and
// optionally a trace ring) via Mux. It returns once the listener is bound;
// serving proceeds in a background goroutine.
func Serve(addr string, reg *Registry, ring *Ring) (*MetricsServer, error) {
	return ServeWith(addr, MuxConfig{Reg: reg, Ring: ring})
}

// ServeWith starts an exposition server from an explicit MuxConfig
// (adding /events and /cluster when configured).
func ServeWith(addr string, cfg MuxConfig) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: MuxWith(cfg)}}
	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

// Addr returns the bound listen address.
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close stops the exposition server.
func (ms *MetricsServer) Close() error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.closed {
		return nil
	}
	ms.closed = true
	return ms.srv.Close()
}

// PublishExpvar publishes the registry snapshot under the given expvar
// name. Publishing the same name twice panics in expvar, so this is
// guarded: later calls with a taken name are no-ops.
func PublishExpvar(name string, reg *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}
