package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests served", L("op", "read"))
	c.Add(12)
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	h := r.Histogram("lat_ns", "latency", L("op", "read"))
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests served",
		"# TYPE reqs_total counter",
		`reqs_total{op="read"} 12`,
		"# TYPE depth gauge",
		"depth 3",
		"# TYPE lat_ns summary",
		`lat_ns{op="read",quantile="0.5"}`,
		`lat_ns{op="read",quantile="0.95"}`,
		`lat_ns{op="read",quantile="0.99"}`,
		`lat_ns{op="read",quantile="0.999"}`,
		`lat_ns_sum{op="read"}`,
		`lat_ns_count{op="read"} 1000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// TestWritePrometheusEscapesLabelValues: the text exposition format
// escapes exactly backslash, double quote and newline in label values.
// The old %q rendering turned `\` into `\\` correctly but also mangled
// non-ASCII/control runes into Go escapes Prometheus parsers reject.
func TestWritePrometheusEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", `C:\dir "quoted"`+"\nnext")).Inc()
	r.Counter("utf_total", "", L("name", "café±")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if want := `esc_total{path="C:\\dir \"quoted\"\nnext"} 1`; !strings.Contains(out, want) {
		t.Errorf("output missing properly escaped label %q\n%s", want, out)
	}
	// Non-ASCII label values pass through raw (UTF-8 is legal in the
	// exposition format; %q would have written \u00e9\u00b1).
	if want := `utf_total{name="café±"} 1`; !strings.Contains(out, want) {
		t.Errorf("output missing raw UTF-8 label %q\n%s", want, out)
	}
}

func TestWritePrometheusSortsLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("multi_total", "", L("zone", "a"), L("app", "x")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `multi_total{app="x",zone="a"} 1`) {
		t.Fatalf("labels not sorted:\n%s", b.String())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.SetClock(func() int64 { return 99 })
	r.Counter("snap_total", "").Add(5)
	h := r.Histogram("snap_lat_ns", "")
	h.Record(777)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Time    int64 `json:"time_ns"`
		Metrics []struct {
			Name  string  `json:"name"`
			Kind  string  `json:"kind"`
			Value float64 `json:"value"`
			Hist  *struct {
				Count int64 `json:"Count"`
			} `json:"hist"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if dump.Time != 99 {
		t.Fatalf("time = %d", dump.Time)
	}
	byName := map[string]float64{}
	kinds := map[string]string{}
	for _, m := range dump.Metrics {
		byName[m.Name] = m.Value
		kinds[m.Name] = m.Kind
	}
	if byName["snap_total"] != 5 || kinds["snap_total"] != "counter" {
		t.Fatalf("snap_total = %v (%s)", byName["snap_total"], kinds["snap_total"])
	}
	if kinds["snap_lat_ns"] != "summary" {
		t.Fatalf("snap_lat_ns kind = %s", kinds["snap_lat_ns"])
	}
}
