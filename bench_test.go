// Package reflex's root benchmark suite regenerates every table and figure
// of the paper's evaluation (one testing.B benchmark per exhibit, as
// DESIGN.md's per-experiment index maps them), plus the ablation benches
// for the design choices DESIGN.md calls out.
//
// Each benchmark iteration runs the full experiment at a reduced scale and
// reports simulated-events-per-second style metrics through ns/op; the
// tables themselves are printed by cmd/reflex-bench, which is the intended
// way to inspect the reproduced numbers.
package reflex

import (
	"testing"

	"github.com/reflex-go/reflex/internal/experiments"
)

// benchScale keeps each exhibit's regeneration affordable inside `go test
// -bench`. cmd/reflex-bench runs at scale 1.0.
const benchScale experiments.Scale = 0.12

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig1Interference regenerates Figure 1 (read/write interference
// on local Flash).
func BenchmarkFig1Interference(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig3CostModelDeviceA regenerates Figure 3a (device A cost model).
func BenchmarkFig3CostModelDeviceA(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3CostModelDeviceB regenerates Figure 3b (device B cost model).
func BenchmarkFig3CostModelDeviceB(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig3CostModelDeviceC regenerates Figure 3c (device C cost model).
func BenchmarkFig3CostModelDeviceC(b *testing.B) { benchExperiment(b, "fig3c") }

// BenchmarkTable2UnloadedLatency regenerates Table 2 (unloaded latency of
// local and remote access paths).
func BenchmarkTable2UnloadedLatency(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkFig4Throughput regenerates Figure 4 (latency vs throughput for
// 1KB reads; local, ReFlex, libaio at 1 and 2 threads).
func BenchmarkFig4Throughput(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5QoS regenerates Figure 5 (QoS isolation scenarios).
func BenchmarkFig5QoS(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6aCoreScaling regenerates Figure 6a (multi-core scaling).
func BenchmarkFig6aCoreScaling(b *testing.B) { benchExperiment(b, "fig6a") }

// BenchmarkFig6bTenantScaling regenerates Figure 6b (tenant scaling).
func BenchmarkFig6bTenantScaling(b *testing.B) { benchExperiment(b, "fig6b") }

// BenchmarkFig6cConnScaling regenerates Figure 6c (connection scaling).
func BenchmarkFig6cConnScaling(b *testing.B) { benchExperiment(b, "fig6c") }

// BenchmarkFig7aFIO regenerates Figure 7a (FIO over the block drivers).
func BenchmarkFig7aFIO(b *testing.B) { benchExperiment(b, "fig7a") }

// BenchmarkFig7bFlashX regenerates Figure 7b (graph analytics slowdowns).
func BenchmarkFig7bFlashX(b *testing.B) { benchExperiment(b, "fig7b") }

// BenchmarkFig7cKV regenerates Figure 7c (LSM key-value store slowdowns).
func BenchmarkFig7cKV(b *testing.B) { benchExperiment(b, "fig7c") }

// BenchmarkAblationBatching sweeps the adaptive batching cap (§3.1).
func BenchmarkAblationBatching(b *testing.B) { benchExperiment(b, "ablation-batching") }

// BenchmarkAblationTwoStep compares the two-step model against blocking on
// Flash accesses (§4.1).
func BenchmarkAblationTwoStep(b *testing.B) { benchExperiment(b, "ablation-twostep") }

// BenchmarkAblationCostModel compares the calibrated cost model against a
// naive unit-cost model (§3.2.1).
func BenchmarkAblationCostModel(b *testing.B) { benchExperiment(b, "ablation-costmodel") }

// BenchmarkAblationNegLimit sweeps the LC burst deficit floor (§3.2.2).
func BenchmarkAblationNegLimit(b *testing.B) { benchExperiment(b, "ablation-neglimit") }

// BenchmarkAblationFraction sweeps the POS_LIMIT donation fraction (§3.2.2).
func BenchmarkAblationFraction(b *testing.B) { benchExperiment(b, "ablation-fraction") }

// BenchmarkExtRightsizing runs the dynamic thread-rightsizing extension
// experiment (§4.3 control plane).
func BenchmarkExtRightsizing(b *testing.B) { benchExperiment(b, "ext-rightsizing") }

// BenchmarkExtProjection runs the §5.3 projection (4 devices on 100GbE).
func BenchmarkExtProjection(b *testing.B) { benchExperiment(b, "ext-100gbe") }
