// Package reflex is the root of ReFlex-Go, a from-scratch Go reproduction
// of "ReFlex: Remote Flash ≈ Local Flash" (Klimovic, Litz, Kozyrakis —
// ASPLOS 2017).
//
// The repository contains two complete implementations of the paper's
// design sharing one QoS scheduler (internal/core): a real TCP/UDP server
// and client library (internal/server, internal/client), and a
// discrete-event simulated cluster (internal/sim and friends) that
// regenerates every table and figure of the paper's evaluation. See
// README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results.
//
// The root package holds only the benchmark suite (bench_test.go): one
// testing.B benchmark per table and figure, dispatched through
// internal/experiments.
package reflex
