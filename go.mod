module github.com/reflex-go/reflex

go 1.22
