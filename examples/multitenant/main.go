// Multitenant: the paper's headline capability — latency-critical tenants
// with SLOs sharing a flash device with best-effort tenants, the QoS
// scheduler keeping them isolated (Figure 5 in miniature, on the simulated
// dataplane).
//
// Two latency-critical tenants (A: 120K IOPS read-only, B: 70K IOPS at 80%
// reads) and two best-effort tenants (C: 95% reads, D: 25% reads) share a
// single ReFlex thread in front of device A. Run once with the scheduler
// and once without to see the difference.
package main

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/dataplane"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

func runScenario(disableQoS bool) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	dev := flashsim.New(eng, flashsim.DeviceA(), 42)

	cfg := dataplane.DefaultConfig(1, 420_000*core.TokenUnit)
	cfg.DisableQoS = disableQoS
	srv := dataplane.NewServer(eng, net, dev, cfg)

	mk := func(id int, class core.Class, slo core.SLO) *core.Tenant {
		t, err := core.NewTenant(id, fmt.Sprintf("tenant-%c", 'A'+id-1), class, slo)
		if err != nil {
			panic(err)
		}
		srv.RegisterTenant(t)
		return t
	}
	a := mk(1, core.LatencyCritical, core.SLO{IOPS: 120_000, ReadPercent: 100, LatencyP95: 500 * sim.Microsecond})
	b := mk(2, core.LatencyCritical, core.SLO{IOPS: 70_000, ReadPercent: 80, LatencyP95: 500 * sim.Microsecond})
	c := mk(3, core.BestEffort, core.SLO{})
	d := mk(4, core.BestEffort, core.SLO{})

	type row struct {
		name    string
		tenant  *core.Tenant
		iops    float64
		readPct int
		res     *workload.Result
	}
	rows := []*row{
		{"A (LC 120K@100%r)", a, 117_500, 100, nil},
		{"B (LC  70K@ 80%r)", b, 68_500, 80, nil},
		{"C (BE      95%r)", c, 80_000, 95, nil},
		{"D (BE      25%r)", d, 80_000, 25, nil},
	}
	for i, r := range rows {
		client := net.NewEndpoint("client", netsim.IXClientStack(), int64(i))
		conn := srv.Connect(client, r.tenant)
		// LC clients pace at their target rate with an even op pattern
		// (mutilate's fixed-rate mode); BE clients offer bursty Poisson
		// load they expect to be throttled.
		lc := r.tenant.Class == core.LatencyCritical
		r.res = workload.OpenLoop{
			IOPS:     r.iops,
			Mix:      workload.Mix{ReadPercent: r.readPct, Size: 4096, Blocks: 1 << 22},
			Uniform:  lc,
			EvenMix:  lc,
			Warmup:   30 * sim.Millisecond,
			Duration: 300 * sim.Millisecond,
			Seed:     int64(100 + i),
		}.Start(eng, conn)
	}
	// Bound the horizon: saturated BE queues would otherwise keep the
	// scheduler ticking long after the measurement window.
	eng.RunUntil(350 * sim.Millisecond)

	label := "QoS scheduler ENABLED"
	if disableQoS {
		label = "QoS scheduler DISABLED"
	}
	fmt.Printf("\n--- %s ---\n", label)
	fmt.Printf("%-20s %12s %12s\n", "tenant", "p95 read", "achieved")
	for _, r := range rows {
		fmt.Printf("%-20s %10dus %9.0f/s\n", r.name,
			r.res.ReadLat.Quantile(0.95)/sim.Microsecond, r.res.IOPS())
	}
}

func main() {
	fmt.Println("Four tenants share one ReFlex thread on NVMe device A")
	fmt.Println("LC SLOs: 500us p95 read latency (device supports 420K tokens/s at that SLO)")
	runScenario(true)
	runScenario(false)
	fmt.Println("\nWithout the scheduler, write interference from tenant D destroys")
	fmt.Println("everyone's tail latency; with it, A and B meet their SLOs and C/D")
	fmt.Println("fairly share the leftover tokens (writes cost 10x reads).")
}
