// Keyvalue: an LSM key-value store (RocksDB-style) whose SSTables live on
// remote flash served by ReFlex — the §5.6 database story. The store is
// real (WAL, memtable, bloom filters, compaction); storage timing comes
// from the simulated ReFlex stack.
package main

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/apps/kv"
	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/dataplane"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

func main() {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.TenGbE())
	flash := flashsim.New(eng, flashsim.DeviceA(), 11)
	srv := dataplane.NewServer(eng, net, flash,
		dataplane.DefaultConfig(2, 1_200_000*core.TokenUnit))

	// The database gets a latency-critical tenant: 50K IOPS at 80% reads
	// with a 1ms p95 SLO; a noisy best-effort neighbor hammers writes on
	// the same device the whole time.
	dbTenant, err := core.NewTenant(1, "kvstore", core.LatencyCritical,
		core.SLO{IOPS: 50_000, ReadPercent: 80, LatencyP95: sim.Millisecond})
	if err != nil {
		panic(err)
	}
	srv.RegisterTenant(dbTenant)
	noisy, err := core.NewTenant(2, "noisy-neighbor", core.BestEffort, core.SLO{})
	if err != nil {
		panic(err)
	}
	srv.RegisterTenant(noisy)

	conns := make([]workload.Target, 4)
	for i := range conns {
		client := net.NewEndpoint("db-client", netsim.LinuxClientStack(), int64(i))
		conns[i] = srv.Connect(client, dbTenant)
	}
	dev := blockdev.NewRemote(eng, conns)

	noisyClient := net.NewEndpoint("noisy", netsim.IXClientStack(), 99)
	workload.OpenLoop{
		IOPS:     20_000,
		Mix:      workload.Mix{ReadPercent: 0, Size: 4096, Blocks: 1 << 22},
		Duration: 2 * sim.Second,
		Seed:     5,
	}.Start(eng, srv.Connect(noisyClient, noisy))

	opt := kv.DefaultOptions()
	opt.CacheBlocks = 512
	db := kv.Open(dev, opt)

	const keys = 20_000
	key := func(i int) string { return fmt.Sprintf("user%08d", i) }

	eng.Spawn("db-bench", func(p *sim.Proc) {
		// Bulk load.
		start := p.Now()
		for i := 0; i < keys; i++ {
			db.Put(p, key(i), []byte(fmt.Sprintf("profile-data-for-%08d", i)))
		}
		db.Flush(p)
		fmt.Printf("bulkload:   %d keys in %dms (%d flushes, %d compactions)\n",
			keys, (p.Now()-start)/sim.Millisecond,
			db.Stats().Flushes, db.Stats().Compactions)

		// Random reads against a cache-limited store.
		start = p.Now()
		rng := sim.NewRNG(3)
		hits := 0
		const reads = 40_000
		for i := 0; i < reads; i++ {
			if v, ok := db.Get(p, key(rng.Intn(keys))); ok && len(v) > 0 {
				hits++
			}
		}
		dur := p.Now() - start
		fmt.Printf("randomread: %d gets in %dms (%.0f ops/s, %d found)\n",
			reads, dur/sim.Millisecond,
			float64(reads)*float64(sim.Second)/float64(dur), hits)

		// Point lookups are correct even with a noisy neighbor writing.
		if v, ok := db.Get(p, key(7)); !ok || string(v) != "profile-data-for-00000007" {
			panic("data integrity violation!")
		}
		fmt.Println("integrity:  spot check passed under noisy-neighbor writes")

		st := db.Stats()
		fmt.Printf("stats:      %d tables, %d entries on flash, %d bloom skips, %d block reads\n",
			st.TablesNow, st.EntriesDisk, st.BloomSkips, st.BlocksRead)
	})
	eng.Run()
}
