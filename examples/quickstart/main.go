// Quickstart: start an in-process ReFlex server over an in-memory flash
// store, connect with the user-level client library, register a tenant,
// and do remote block I/O — the minimal end-to-end path of the system.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/storage"
)

func main() {
	// 1. Start a ReFlex server: 64 MiB in-memory "flash", 2 scheduler
	//    threads, device-A cost model, 420K tokens/s (the rate a 500us
	//    p95 SLO allows on that device).
	srv, err := server.New(server.Config{
		Addr:    "127.0.0.1:0",
		Threads: 2,
		Model: core.CostModel{
			ReadCost:         core.TokenUnit,
			ReadOnlyReadCost: core.TokenUnit / 2,
			WriteCost:        10 * core.TokenUnit,
		},
		TokenRate:      420_000 * core.TokenUnit,
		ReadOnlyWindow: 10 * time.Millisecond,
	}, storage.NewMem(64<<20))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("server listening on", srv.Addr())

	// 2. Connect and register a best-effort tenant with write permission
	//    over the whole device.
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	handle, err := cl.Register(protocol.Registration{BestEffort: true, Writable: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered tenant, handle =", handle)

	// 3. Write a block and read it back.
	payload := make([]byte, 4096)
	copy(payload, "remote flash ~= local flash")
	if err := cl.Write(handle, 0, payload); err != nil {
		log.Fatal(err)
	}
	got, err := cl.Read(handle, 0, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", string(got[:27]))

	// 4. A quick latency probe: 1000 sequential 4KB reads, QD 1.
	start := time.Now()
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := cl.Read(handle, uint32(i*8%4096), 4096); err != nil {
			log.Fatal(err)
		}
	}
	avg := time.Since(start) / n
	fmt.Printf("QD1 read round trip over loopback TCP: avg %v\n", avg.Round(time.Microsecond))

	// 5. Tenants without write permission get errors, not data loss.
	roHandle, err := cl.Register(protocol.Registration{BestEffort: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Write(roHandle, 0, payload); err != nil {
		fmt.Println("read-only tenant write rejected:", err)
	}
}
