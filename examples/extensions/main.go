// Extensions: the capabilities the paper lists as future work, working
// end-to-end on the real server — multi-device serving, ordering barriers,
// the UDP transport, and tenant stats introspection.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/reflex-go/reflex/internal/client"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/protocol"
	"github.com/reflex-go/reflex/internal/server"
	"github.com/reflex-go/reflex/internal/storage"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	// A server fronting two devices: a fast NVMe-like device and a
	// slower, write-expensive one — each with its own scheduler instance
	// and token rate (§3.2.2).
	srv, err := server.NewMulti(server.Config{
		Addr:         "127.0.0.1:0",
		UDPAddr:      "127.0.0.1:0",
		Threads:      2,
		WriteLatency: 5 * time.Millisecond, // visible device latency for the barrier demo
	}, []server.DeviceConfig{
		{
			Backend: storage.NewMem(128 << 20),
			Model: core.CostModel{
				ReadCost: core.TokenUnit, ReadOnlyReadCost: core.TokenUnit / 2,
				WriteCost: 10 * core.TokenUnit,
			},
			TokenRate:      420_000 * core.TokenUnit,
			ReadOnlyWindow: 10 * time.Millisecond,
		},
		{
			Backend: storage.NewMem(32 << 20),
			Model: core.CostModel{
				ReadCost: core.TokenUnit, ReadOnlyReadCost: core.TokenUnit,
				WriteCost: 20 * core.TokenUnit,
			},
			TokenRate: 150_000 * core.TokenUnit,
		},
	})
	must(err)
	defer srv.Close()
	fmt.Printf("server: tcp %s / udp %s, %d devices\n", srv.Addr(), srv.UDPAddr(), srv.Devices())

	tcp, err := client.Dial(srv.Addr())
	must(err)
	defer tcp.Close()

	// --- multi-device: same LBA, two devices, two values ---
	h0, err := tcp.Register(protocol.Registration{BestEffort: true, Writable: true, Device: 0})
	must(err)
	h1, err := tcp.Register(protocol.Registration{BestEffort: true, Writable: true, Device: 1})
	must(err)
	blk := make([]byte, 512)
	copy(blk, "device zero data")
	must(tcp.Write(h0, 0, blk))
	copy(blk, "device one data!")
	must(tcp.Write(h1, 0, blk))
	g0, _ := tcp.Read(h0, 0, 16)
	g1, _ := tcp.Read(h1, 0, 16)
	fmt.Printf("multi-device: lba0 dev0=%q dev1=%q\n", g0, g1)

	// --- barriers: order a read behind a slow write ---
	payload := make([]byte, 512)
	copy(payload, "after the barrier")
	_, err = tcp.GoWrite(h0, 8, payload) // takes ~5ms at the "device"
	must(err)
	stale, _ := tcp.Read(h0, 8, 17) // overtakes the write
	must(tcp.Barrier(h0))           // waits for the write
	fresh, _ := tcp.Read(h0, 8, 17)
	fmt.Printf("barrier: unordered read saw %q, post-barrier read saw %q\n", stale, fresh)

	// --- UDP transport: same tenants, datagram framing ---
	udp, err := client.DialUDP(srv.UDPAddr())
	must(err)
	defer udp.Close()
	viaUDP, err := udp.Read(h0, 8, 17)
	must(err)
	fmt.Printf("udp: read over datagrams: %q\n", viaUDP)

	// --- stats: the accounting the control plane watches ---
	for i := 0; i < 200; i++ {
		must(tcp.Write(h1, uint32(16+i), make([]byte, 512)))
	}
	st, err := tcp.Stats(h1)
	must(err)
	fmt.Printf("stats dev1 tenant: %d ops admitted, %.0f tokens spent (writes cost 20x here)\n",
		st.Submitted, float64(st.SubmittedTokens)/1000)
}
