// Graphanalytics: run the FlashX-style out-of-core graph engine on a
// remote flash block device and compare against local flash — the §5.6
// legacy-application story. BFS, PageRank, WCC and SCC run as real
// algorithms over a paged CSR graph; only I/O timing is simulated.
package main

import (
	"fmt"

	"github.com/reflex-go/reflex/internal/apps/flashx"
	"github.com/reflex-go/reflex/internal/blockdev"
	"github.com/reflex-go/reflex/internal/core"
	"github.com/reflex-go/reflex/internal/dataplane"
	"github.com/reflex-go/reflex/internal/flashsim"
	"github.com/reflex-go/reflex/internal/netsim"
	"github.com/reflex-go/reflex/internal/sim"
	"github.com/reflex-go/reflex/internal/workload"
)

func main() {
	const (
		vertices = 50_000
		avgDeg   = 12
	)
	g := flashx.GenPowerLaw(vertices, avgDeg, 7)
	fmt.Printf("synthetic power-law graph: %d vertices, %d edges, %d flash pages\n",
		g.N, g.NumEdges(), g.TotalPages())
	cachePages := int(g.TotalPages() / 4)
	fmt.Printf("page cache: %d pages (25%% of the graph)\n\n", cachePages)

	mkLocal := func(eng *sim.Engine) blockdev.Device {
		dev := flashsim.New(eng, flashsim.DeviceA(), 1)
		return blockdev.NewLocal(eng, workload.DeviceTarget(eng, dev))
	}
	mkRemote := func(eng *sim.Engine) blockdev.Device {
		net := netsim.New(eng, netsim.TenGbE())
		dev := flashsim.New(eng, flashsim.DeviceA(), 1)
		srv := dataplane.NewServer(eng, net, dev,
			dataplane.DefaultConfig(2, 1_200_000*core.TokenUnit))
		conns := make([]workload.Target, 6)
		for i := range conns {
			tn, err := core.NewTenant(i+1, "graph", core.BestEffort, core.SLO{})
			if err != nil {
				panic(err)
			}
			srv.RegisterTenant(tn)
			client := net.NewEndpoint("client", netsim.LinuxClientStack(), int64(i))
			conns[i] = srv.Connect(client, tn)
		}
		return blockdev.NewRemote(eng, conns)
	}

	fmt.Printf("%-10s %14s %14s %10s\n", "algorithm", "local flash", "ReFlex remote", "slowdown")
	for _, algo := range []flashx.Algo{flashx.AlgoBFS, flashx.AlgoPR, flashx.AlgoWCC, flashx.AlgoSCC} {
		engL := sim.NewEngine()
		localTime, sumL := flashx.Run(engL, flashx.NewPaged(g, mkLocal(engL), cachePages), algo)

		engR := sim.NewEngine()
		remoteTime, sumR := flashx.Run(engR, flashx.NewPaged(g, mkRemote(engR), cachePages), algo)

		if sumL != sumR {
			panic(fmt.Sprintf("%s: results differ between local and remote!", algo))
		}
		fmt.Printf("%-10s %12dms %12dms %9.2fx\n", algo,
			localTime/sim.Millisecond, remoteTime/sim.Millisecond,
			float64(remoteTime)/float64(localTime))
	}
	fmt.Println("\nRemote flash through ReFlex costs only a few percent — the paper's")
	fmt.Println("'remote flash ~= local flash' claim for legacy applications.")
}
